"""Command-line interface for the toolflow.

Usage (also available as ``python -m repro``)::

    python -m repro list
    python -m repro estimate GSE
    python -m repro compile GSE -k 4 --scheduler lpfs --local-mem inf
    python -m repro compile program.qasm -k 2 --timeline
    python -m repro emit Grovers -o grovers.qasm
    python -m repro lint Grovers
    python -m repro lint program.scd --format json
    python -m repro lint all --fail-on warning
    python -m repro lint all --deep --format json
    python -m repro lint program.scd --deep --fail-on QL4
    python -m repro lint all --deep --topology mesh --cores 4
    python -m repro bench GSE,TFP --schedulers rcp,lpfs -k 2,4
    python -m repro bench all -o BENCH_sweep.json
    python -m repro bench BF,CN --topology none,line,mesh --cores 2,4
    python -m repro perf --repeats 2 -o BENCH_perf.json
    python -m repro perf --baseline BENCH_perf.json -o ''
    python -m repro perf --scale-gates 1000000 --no-reference
    python -m repro compile BF --stream --window 1024
    python -m repro compile scale:adder:1e7 --stream --entry-width-only
    python -m repro compile BF --stream --export-stream bf.jsonl.gz
    python -m repro execute --stream bf.jsonl.gz -k 4 --epr-rate 0.5
    python -m repro execute Grovers -k 4 --epr-rate 0.5 --trace g.trace
    python -m repro execute BF --fault-epr 0.1 --seed 7 --json
    python -m repro execute BF --topology line --cores 4 --link-bw 2
    python -m repro partition GSE --topology mesh --cores 4 -d 16
    python -m repro serve --port 8787 --workers 2 --rate 50
    python -m repro loadtest --spawn --storm 32 --distinct 8
    python -m repro cache-stats --format json

Exit codes form a stable contract (tested in ``tests/test_cli.py``):

* ``0`` — success;
* ``1`` — lint findings at or above the ``--fail-on`` threshold, a
  strict-mode analysis failure, or a failed/timed-out sweep job not
  attributable to a more specific class below;
* ``2`` — usage / input errors (unknown benchmark, unreadable file,
  bad option values);
* ``3`` — parse or program-validation errors in a source file;
* ``4`` — schedule or replay invariant violations (including engine
  preflight refusals).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .analysis import SummaryCache
    from .service import CompileService

from .analysis import (
    AnalysisError,
    DiagnosticSet,
    Severity,
    analyze_program,
    lint_qasm_source,
    lint_scaffold_source,
)
from .arch.machine import MultiSIMD, parse_capacity
from .benchmarks import BENCHMARKS, benchmark_names
from .core.module import Program, ProgramValidationError
from .core.qubits import Qubit
from .core.qasm import QasmSyntaxError, emit_qasm, parse_qasm
from .core.scaffold import ScaffoldSyntaxError, parse_scaffold
from .passes.qubit_count import minimum_qubits
from .passes.resource import estimate_resources, gate_count_histogram
from .sched.replay import ReplayError
from .sched.report import (
    compile_result_to_dict,
    profile_table,
    render_timeline,
)
from .sched.types import ScheduleError
from .toolflow import SchedulerConfig, compile_and_schedule

__all__ = ["main", "CLIError"]

#: Exit code for lint findings / strict-analysis failures.
EXIT_LINT = 1
#: Exit code for usage and input errors.
EXIT_USAGE = 2
#: Exit code for parse / validation errors.
EXIT_PARSE = 3
#: Exit code for schedule / replay invariant violations.
EXIT_SCHEDULE = 4


class CLIError(Exception):
    """A usage or input error (unknown source, bad option value)."""

    exit_code = EXIT_USAGE


def _is_scaffold_path(source: str) -> bool:
    return source.endswith((".scaffold", ".scd"))


#: Default gate count for ``scale:`` sources without an explicit size.
_SCALE_DEFAULT_GATES = 1_000_000


def _parse_scale_source(
    source: str,
) -> Optional[Tuple[str, int, Dict[str, int]]]:
    """Decode a ``scale:<kind>[:<gates>][:wN|:qN]`` synthetic source.

    Returns ``(kind, target_gates, params)``, or ``None`` when
    ``source`` is not a scale spec at all. The gate count accepts
    scientific notation (``scale:adder:1e7``); the optional trailing
    segment overrides the generator's shape parameter — ``w8`` sets the
    adder width, ``q12`` the rotations qubit count — so verification
    runs can pin an exhaustively-checkable register size
    (``scale:adder:1e5:w8``).
    """
    if not source.startswith("scale:"):
        return None
    from .benchmarks import SCALE_KINDS

    kind, _, rest = source[len("scale:"):].partition(":")
    if kind not in SCALE_KINDS:
        raise CLIError(
            f"unknown scale kind {kind!r} "
            f"(choose from {', '.join(SCALE_KINDS)})"
        )
    gates_text, _, param_text = rest.partition(":")
    params: Dict[str, int] = {}
    if param_text:
        names = {"w": "width", "q": "qubits"}
        name = names.get(param_text[:1])
        try:
            value = int(param_text[1:])
        except ValueError:
            value = 0
        if name is None or value < 1:
            raise CLIError(
                f"invalid scale parameter {param_text!r} in {source!r} "
                "(expected wN for adder width or qN for rotations "
                "qubits)"
            )
        expected = {"adder": "width", "rotations": "qubits"}.get(kind)
        if name != expected:
            raise CLIError(
                f"scale parameter {param_text!r} does not apply to "
                f"{kind!r} (its shape parameter is {expected})"
            )
        params[name] = value
    gates = _SCALE_DEFAULT_GATES
    if gates_text:
        try:
            gates = int(float(gates_text))
        except ValueError:
            raise CLIError(
                f"invalid gate count {gates_text!r} in {source!r}"
            ) from None
        if gates < 1:
            raise CLIError("scale gate count must be >= 1")
    return kind, gates, params


def _default_fth(source: str) -> int:
    """Per-source flattening-threshold default: the benchmark's pinned
    value, everything for synthetic scale sources (their whole point is
    one huge leaf), 4096 otherwise."""
    if source in BENCHMARKS:
        return BENCHMARKS[source].fth
    if source.startswith("scale:"):
        return sys.maxsize
    return 4096


def _fth_text(fth: int) -> str:
    return "all" if fth >= sys.maxsize else f"{fth:,}"


def _load_program(source: str) -> Program:
    """A benchmark key, a ``scale:<kind>[:<gates>]`` synthetic spec, or
    a path to a QASM / Scaffold source file (``.scaffold``/``.scd``
    parse as Scaffold, anything else as QASM)."""
    if source in BENCHMARKS:
        return BENCHMARKS[source].build()
    scale = _parse_scale_source(source)
    if scale is not None:
        from .benchmarks import build_scale

        kind, gates, params = scale
        return build_scale(kind, gates, **params)[0]
    try:
        with open(source) as fh:
            text = fh.read()
    except (FileNotFoundError, IsADirectoryError):
        raise CLIError(
            f"{source!r} is neither a benchmark "
            f"({', '.join(benchmark_names())}) nor a readable file"
        )
    if _is_scaffold_path(source):
        return parse_scaffold(text, filename=source)
    return parse_qasm(text)


def _parse_capacity(text: Optional[str]) -> Optional[float]:
    try:
        return parse_capacity(text)
    except ValueError as exc:
        raise CLIError(str(exc)) from None


def _cmd_list(_args: argparse.Namespace) -> int:
    print(f"{'key':<8} {'paper instance':<22} description")
    print("-" * 72)
    for key in benchmark_names():
        spec = BENCHMARKS[key]
        print(f"{key:<8} {spec.title:<22} {spec.description}")
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    prog = _load_program(args.source)
    est = estimate_resources(prog)
    q = minimum_qubits(prog)
    print(f"modules:        {len(est.module_totals)}")
    print(f"total gates:    {est.total_gates:,}")
    print(f"minimum qubits: {q}")
    print("gate mix:")
    for gate, count in sorted(
        est.gate_mix.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {gate:<8} {count:,}")
    print("module gate-count histogram (% of modules):")
    for label, pct in gate_count_histogram(prog).items():
        if pct:
            print(f"  {label:<12} {pct:5.1f}%")
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    prog = _load_program(args.source)
    fth = args.fth
    if fth is None:
        fth = _default_fth(args.source)
    machine = MultiSIMD(
        k=args.k,
        d=args.d,
        local_memory=_parse_capacity(args.local_mem),
    )
    if args.stream or args.window is not None or args.export_stream:
        return _compile_streamed(args, prog, machine, fth)
    result = compile_and_schedule(
        prog,
        machine,
        SchedulerConfig(args.scheduler),
        fth=fth,
        decompose=not args.no_decompose,
        optimize=args.optimize,
        strict=args.strict,
    )
    if args.json:
        print(json.dumps(compile_result_to_dict(result), indent=2))
        return 0
    print(f"machine:            {machine}")
    print(f"scheduler:          {args.scheduler} (FTh={_fth_text(fth)})")
    print(f"total gates:        {result.total_gates:,}")
    print(f"critical path:      {result.critical_path:,} cycles")
    print(f"schedule length:    {result.schedule_length:,} cycles")
    print(f"comm-aware runtime: {result.runtime:,} cycles")
    print(f"parallel speedup:   {result.parallel_speedup:.2f}x")
    print(f"comm-aware speedup: {result.comm_aware_speedup:.2f}x "
          f"(vs naive {result.naive_runtime:,})")
    print(f"modules flattened:  {result.flattened_percent:.0f}%")
    if args.strict and result.diagnostics:
        print(f"strict diagnostics: {len(result.diagnostics)} "
              "(warnings/info only)")
    if args.profile:
        print("\nblackbox dimensions (comm-aware runtime):")
        print(profile_table(result, metric="runtime"))
    if args.timeline:
        entry = result.program.entry
        sched = result.schedules.get(entry)
        if sched is None:
            leaves = [
                n for n, p in result.profiles.items() if p.is_leaf
            ]
            print(
                f"\n(entry {entry!r} is hierarchical; showing leaf "
                f"{leaves[0]!r})"
            )
            sched = result.schedules[leaves[0]]
        print()
        print(render_timeline(sched, max_timesteps=args.timeline))
    return 0


def _compile_streamed(
    args: argparse.Namespace, prog: Program, machine: MultiSIMD, fth: int
) -> int:
    """The ``compile --stream`` path: bounded-memory columnar pipeline.

    Metric output matches the materialized path bit-for-bit (that is
    the streaming pipeline's contract); ``--export-stream`` addition-
    ally writes the entry leaf's schedule as a ``repro.schedule-stream``
    JSONL file without ever materializing it.
    """
    from .toolflow import compile_and_schedule_streamed

    if args.strict:
        raise CLIError(
            "--strict is not supported with --stream (the analyzer "
            "needs materialized leaf bodies)"
        )
    if args.entry_width_only and args.json:
        raise CLIError(
            "--entry-width-only is incompatible with --json (the JSON "
            "export reports all-width speedups)"
        )
    kwargs = {}
    if args.window is not None:
        if args.window < 0:
            raise CLIError(f"--window must be >= 0, got {args.window}")
        kwargs["window"] = args.window or None
    widths = "entry" if args.entry_width_only else "all"
    result = compile_and_schedule_streamed(
        prog,
        machine,
        SchedulerConfig(args.scheduler),
        fth=fth,
        decompose=not args.no_decompose,
        optimize=args.optimize,
        widths=widths,
        **kwargs,
    )
    exported = None
    if args.export_stream:
        from .service import write_schedule_stream

        entry = result.program.entry
        name = entry if entry in result.stream_schedules else None
        if name is None:
            leaves = sorted(result.stream_schedules)
            if not leaves:
                raise CLIError(
                    "nothing to export: no leaf schedules were "
                    "retained (is the program all-coarse at this "
                    "--fth?)"
                )
            name = leaves[0]
        write_schedule_stream(
            args.export_stream,
            result.columns[name],
            result.stream_schedules[name],
            machine,
            module=name,
        )
        exported = name
    if args.json:
        doc = compile_result_to_dict(result)
        doc["pipeline"] = "streamed"
        doc["window"] = result.window
        print(json.dumps(doc, indent=2))
        return 0
    window_text = (
        "unbounded" if result.window is None else f"{result.window:,}"
    )
    print(f"machine:            {machine}")
    print(f"scheduler:          {args.scheduler} (FTh={_fth_text(fth)})")
    print(f"pipeline:           streamed (window={window_text} ops, "
          f"widths={widths})")
    print(f"total gates:        {result.total_gates:,}")
    print(f"critical path:      {result.critical_path:,} cycles")
    print(f"schedule length:    {result.schedule_length:,} cycles")
    print(f"comm-aware runtime: {result.runtime:,} cycles")
    if widths == "all":
        print(f"parallel speedup:   {result.parallel_speedup:.2f}x")
        print(f"comm-aware speedup: {result.comm_aware_speedup:.2f}x "
              f"(vs naive {result.naive_runtime:,})")
    print(f"modules flattened:  {result.flattened_percent:.0f}%")
    if exported is not None:
        print(f"exported leaf {exported!r} schedule stream to "
              f"{args.export_stream}")
    if args.profile:
        print("\nblackbox dimensions (comm-aware runtime):")
        print(profile_table(result, metric="runtime"))
    if args.timeline and result.stream_schedules:
        from .sched.stream import to_schedule

        leaves = sorted(result.stream_schedules)
        entry = result.program.entry
        name = entry if entry in result.stream_schedules else leaves[0]
        if name != entry:
            print(f"\n(entry {entry!r} is hierarchical; showing leaf "
                  f"{name!r})")
        sched = to_schedule(result.columns[name],
                            result.stream_schedules[name])
        print()
        print(render_timeline(sched, max_timesteps=args.timeline))
    return 0


def _cmd_emit(args: argparse.Namespace) -> int:
    prog = _load_program(args.source)
    text = emit_qasm(prog)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {len(text.splitlines())} lines to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _lint_one(source: str) -> Tuple[DiagnosticSet, Optional[Program]]:
    """Lint one source (benchmark key or file path) into diagnostics.

    File sources go through the front-end linter (parse errors become
    ``QL1xx`` diagnostics rather than exceptions); any program that
    parses — and every benchmark — is run through the full rule
    battery (``QL0xx``). The parsed/built program rides along for the
    ``--deep`` path (``None`` when the source didn't parse).
    """
    if source in BENCHMARKS:
        program = BENCHMARKS[source].build()
        return analyze_program(program), program
    try:
        with open(source) as fh:
            text = fh.read()
    except (FileNotFoundError, IsADirectoryError):
        raise CLIError(
            f"{source!r} is neither a benchmark "
            f"({', '.join(benchmark_names())}), 'all', nor a readable "
            "file"
        )
    if _is_scaffold_path(source):
        lint = lint_scaffold_source(text, filename=source)
    else:
        lint = lint_qasm_source(text, filename=source)
    diags = lint.diagnostics
    if lint.program is not None:
        diags.extend(analyze_program(lint.program))
    return diags, lint.program


def _deep_lint_one(
    source: str,
    program: Program,
    machine: MultiSIMD,
    service: "CompileService",
    summary_cache: Optional["SummaryCache"],
    info_sink: dict,
    graph=None,
) -> DiagnosticSet:
    """The ``--deep`` battery for one program.

    Runs the interprocedural analyses (``QL4xx`` lifetime rules and
    the ``QL501`` machine-fit check, summaries memoized through
    ``summary_cache``), then compiles the program through the
    content-addressed service and sanitizes the realized artifacts
    against the static bounds: retained full-width schedules through
    :func:`~repro.analysis.audit_schedule` (``deep=True``), and every
    module's blackbox profile through
    :func:`~repro.analysis.audit_profile_bounds`. Disk-cached compiles
    carry no schedule bodies, so warm runs audit profiles only — the
    bounds they are checked against are recomputed either way.
    """
    from .analysis import (
        ResourceAnalysis,
        analyze_deep,
        audit_profile_bounds,
        audit_schedule,
        solve_bottom_up,
    )
    from .passes.decompose import decompose_program
    from .passes.flatten import DEFAULT_FTH, flatten_program

    out = DiagnosticSet()
    deep = analyze_deep(program, machine=machine, cache=summary_cache)
    out.extend(deep.diagnostics)

    fth = BENCHMARKS[source].fth if source in BENCHMARKS else DEFAULT_FTH
    entry = service.lookup(program, machine, fth=fth)
    result = entry.result
    for name, sched in result.schedules.items():
        profile = result.profiles.get(name)
        comm = profile.comm.get(machine.k) if profile is not None else None
        out.extend(
            audit_schedule(sched, module=name, deep=True, comm=comm)
        )
    # Profile bounds must be computed on the *scheduled* program (the
    # front-end passes can rewrite module bodies — e.g. rotation
    # synthesis may drop a near-identity rotation entirely), and a
    # disk-cached result only carries a gate-less program skeleton.
    # Re-running the deterministic front-end locally is cheap, and the
    # per-module summaries memoize through the same cache.
    flat = flatten_program(decompose_program(program), fth=fth).program
    bounds = solve_bottom_up(
        flat, ResourceAnalysis(), cache=summary_cache
    ).summaries
    profiles_audited = 0
    for name, profile in result.profiles.items():
        summary = bounds.get(name)
        if summary is None:
            continue
        profiles_audited += 1
        out.extend(
            audit_profile_bounds(
                profile.length, profile.runtime, summary, module=name
            )
        )
    info_sink[source] = {
        "fingerprint": entry.fingerprint,
        "compile_cached": entry.cached,
        "modules": len(deep.lifetime_result.order),
        "summary_cache": deep.cache_stats(),
        "schedules_audited": len(result.schedules),
        "profiles_audited": profiles_audited,
    }
    if graph is not None:
        from .multicore import (
            MulticoreConfig,
            compile_and_schedule_multicore,
        )
        from .multicore.audit import audit_multicore_bounds

        mc = compile_and_schedule_multicore(
            program, machine, MulticoreConfig(graph), fth=fth
        )
        for name, msched in mc.leaf_schedules.items():
            out.extend(audit_multicore_bounds(msched, module=name))
        info_sink[source]["multicore"] = {
            "topology": graph.name,
            "cores": graph.cores,
            "leaves_audited": len(mc.leaf_schedules),
            "intercore_teleports": mc.intercore_teleports,
        }
    return out


def _cmd_verify(args: argparse.Namespace) -> int:
    """Semantic verification through the reversible simulator.

    Three modes, all on the 0/1/2/3/4 exit contract — 1 on a semantic
    mismatch (with the minimal counterexample input printed), 4 when an
    op outside the classical-permutation subset is located:

    * default — compile the program with the streaming pipeline
      (``decompose=False``: verification runs on the Scaffold-level
      reversible subset) and prove every retained leaf schedule
      replay bit-identical to the leaf body in program order;
    * ``--spec`` — bind a registered arithmetic spec (adder, compare,
      multiply) to its kernel module and check the kernel, applied its
      call-site iteration count, against the spec's reference function
      — then prove a windowed schedule of the full iterated stream
      replay-equivalent too (unless ``--no-schedule``);
    * ``--stream FILE`` — replay an exported ``repro.schedule-stream``
      JSONL file op-by-op and require bit-identical output to the
      unscheduled program.
    """
    from .passes.stream import leaf_stream
    from .sim.reversible import (
        DEFAULT_EXHAUSTIVE_LIMIT,
        DEFAULT_SAMPLES,
        NonReversibleOpError,
        compile_ops,
        streamed_schedule_ops,
        verify_equivalent,
        verify_reference,
    )
    from .sim.specs import SpecError, bind_spec
    from .toolflow import DEFAULT_WINDOW, compile_and_schedule_streamed

    prog = _load_program(args.source)
    if args.exhaustive and args.samples is not None:
        raise CLIError("--exhaustive and --samples are mutually exclusive")
    mode = "auto"
    samples = DEFAULT_SAMPLES
    if args.exhaustive:
        mode = "exhaustive"
    elif args.samples is not None:
        if args.samples < 1:
            raise CLIError("--samples must be >= 1")
        mode = "sampled"
        samples = args.samples
    limit = (
        args.exhaustive_limit
        if args.exhaustive_limit is not None
        else DEFAULT_EXHAUSTIVE_LIMIT
    )
    sweep = dict(
        mode=mode, exhaustive_limit=limit, samples=samples, seed=args.seed
    )
    window = None if args.window == 0 else (args.window or DEFAULT_WINDOW)
    scheduler = SchedulerConfig(args.scheduler)

    def report_line(report) -> bool:
        print(report.summary())
        if not report.ok:
            print(
                f"counterexample input: {report.counterexample.input_value}"
            )
        return report.ok

    try:
        if args.stream is not None:
            return _verify_stream_file(args, prog, sweep, report_line)
        if args.spec is not None:
            try:
                binding = bind_spec(
                    args.spec,
                    prog,
                    module=args.module,
                    iterations=args.iterations,
                )
            except SpecError as exc:
                raise CLIError(str(exc)) from None
            print(f"spec: {binding.description}")
            index = {q: i for i, q in enumerate(binding.qubits)}
            instrs = compile_ops(
                leaf_stream(prog, binding.module, decompose=False), index
            )

            def run_kernel(state) -> int:
                for _ in range(binding.iterations):
                    state.apply_compiled(instrs)
                return len(instrs) * binding.iterations

            report = verify_reference(
                run_kernel,
                binding.qubits,
                binding.inputs,
                binding.outputs,
                binding.reference,
                clean=binding.clean,
                label=f"{binding.module} vs {binding.name} spec",
                **sweep,
            )
            ok = report_line(report)
            if ok and not args.no_schedule:
                ok = _verify_spec_schedule(
                    args, prog, binding, instrs, window, scheduler,
                    sweep, report_line,
                )
            return 0 if ok else EXIT_LINT

        # Locate any op outside the classical-permutation subset
        # *before* paying for scheduling — the hierarchical scan costs
        # O(source statements), not O(expanded gates).
        from .sim.reversible import classify_gate

        for name in prog.topological_order():
            for i, op in enumerate(prog.module(name).operations()):
                if classify_gate(op.gate) != "reversible":
                    operands = ", ".join(repr(q) for q in op.qubits)
                    print(
                        f"error: module {name!r} op {i}: "
                        f"{op.gate}({operands}) is not classically "
                        "reversible; the verifier covers the "
                        "X/CNOT/Toffoli/SWAP/Fredkin subset (bind an "
                        "arithmetic kernel with --spec instead)",
                        file=sys.stderr,
                    )
                    return EXIT_SCHEDULE

        fth = args.fth if args.fth is not None else _default_fth(args.source)
        machine = MultiSIMD(k=args.k, d=args.d)
        result = compile_and_schedule_streamed(
            prog,
            machine,
            scheduler,
            fth=fth,
            decompose=False,
            window=window,
            widths="entry",
            keep_schedules=True,
        )
        ok = True
        for name in sorted(result.stream_schedules):
            cols = result.columns[name]
            report = verify_equivalent(
                iter(leaf_stream(prog, name, decompose=False)),
                streamed_schedule_ops(cols, result.stream_schedules[name]),
                cols.qubits,
                label=f"{name} ({scheduler.algorithm} k={machine.k})",
                **sweep,
            )
            ok = report_line(report) and ok
        if not result.stream_schedules:
            raise CLIError("no leaf schedules to verify")
        return 0 if ok else EXIT_LINT
    except NonReversibleOpError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_SCHEDULE


def _verify_stream_file(
    args: argparse.Namespace, prog: Program, sweep: dict, report_line
) -> int:
    """``verify --stream FILE``: exported replay vs. direct execution."""
    from .passes.stream import leaf_stream
    from .service.stream_io import stream_ops
    from .sim.reversible import verify_equivalent

    try:
        header, replay = stream_ops(args.stream)
    except FileNotFoundError:
        raise CLIError(f"stream file {args.stream!r} not found") from None
    except ValueError as exc:
        raise CLIError(str(exc)) from None
    module = args.module or header.get("module") or prog.entry
    if module not in prog:
        raise CLIError(
            f"stream header names module {module!r}, which the program "
            "does not contain (pass --module)"
        )
    from .sched.report import _parse_qubit

    universe: Dict[Qubit, None] = {}
    for q in prog.module(module).qubits():
        universe.setdefault(q)
    for name in header.get("qubits", ()):
        universe.setdefault(_parse_qubit(name))
    try:
        report = verify_equivalent(
            iter(leaf_stream(prog, module, decompose=False)),
            replay,
            list(universe),
            label=f"{module} vs {args.stream}",
            **sweep,
        )
    except KeyError as exc:
        raise CLIError(
            f"stream export and program disagree on qubit {exc}"
        ) from None
    return 0 if report_line(report) else EXIT_LINT


def _verify_spec_schedule(
    args: argparse.Namespace,
    prog: Program,
    binding,
    instrs,
    window: Optional[int],
    scheduler: SchedulerConfig,
    sweep: dict,
    report_line,
) -> bool:
    """Spec mode's second proof: schedule the full iterated kernel
    stream through the windowed columnar scheduler and replay it."""
    from .core.opstream import GeneratorStream
    from .passes.stream import leaf_stream
    from .sched.stream import build_columns, schedule_columns
    from .sim.reversible import streamed_schedule_ops, verify_equivalent

    kernel_ops = list(leaf_stream(prog, binding.module, decompose=False))
    iterations = binding.iterations
    stream = GeneratorStream(
        lambda: (
            op for _ in range(iterations) for op in kernel_ops
        ),
        length_hint=len(kernel_ops) * iterations,
    )
    cols = build_columns(stream, window=window)
    ssched = schedule_columns(
        cols,
        scheduler.algorithm,
        args.k,
        args.d,
        lpfs_l=scheduler.lpfs_l,
        lpfs_simd=scheduler.lpfs_simd,
        lpfs_refill=scheduler.lpfs_refill,
    )
    report = verify_equivalent(
        iter(stream),
        streamed_schedule_ops(cols, ssched),
        cols.qubits,
        label=(
            f"{binding.module} x{iterations} schedule replay "
            f"({scheduler.algorithm} k={args.k}, {len(cols):,} ops, "
            f"{ssched.length:,} timesteps)"
        ),
        **sweep,
    )
    return report_line(report)


#: ``--fail-on`` values that name a severity threshold (or disable
#: failing); anything else must be a diagnostic-code prefix.
_FAIL_ON_CODE_RE = re.compile(r"QL\d{0,3}\Z")


def _cmd_lint(args: argparse.Namespace) -> int:
    fail_on = args.fail_on
    if fail_on not in ("error", "warning", "info", "never") and not (
        _FAIL_ON_CODE_RE.match(fail_on)
    ):
        raise CLIError(
            f"--fail-on expects a severity (error, warning, info), "
            f"'never', or a diagnostic-code prefix like 'QL4'; got "
            f"{fail_on!r}"
        )
    sources = (
        list(benchmark_names()) if args.source == "all"
        else [args.source]
    )

    summary_cache = None
    service = None
    machine = None
    graph = None
    deep_info: dict = {}
    if args.topology is not None and not args.deep:
        raise CLIError("--topology requires --deep")
    if args.deep:
        from .analysis import SummaryCache
        from .service import CompileService, default_cache_dir

        machine = MultiSIMD(k=args.k, d=args.d)
        if args.topology is not None:
            graph = _multicore_graph(args)
        cache_dir = (
            None
            if args.no_cache
            else (args.cache_dir or str(default_cache_dir()))
        )
        summary_cache = (
            SummaryCache(cache_dir) if cache_dir is not None else None
        )
        service = CompileService(cache_dir=cache_dir)

    diags = DiagnosticSet()
    for source in sources:
        found, program = _lint_one(source)
        if args.deep and program is not None:
            found.extend(
                _deep_lint_one(
                    source,
                    program,
                    machine,
                    service,
                    summary_cache,
                    deep_info,
                    graph=graph,
                )
            )
        if args.source == "all":
            # Anchor benchmark findings to their benchmark key so an
            # aggregated report stays attributable.
            for d in found:
                diags.add(
                    d if d.module else replace(d, module=source)
                )
        else:
            diags.extend(found)
    if args.format == "json":
        doc = json.loads(diags.to_json())
        if args.deep:
            doc["deep"] = {
                "machine": {"k": machine.k, "d": machine.d},
                "sources": deep_info,
                "summary_cache": (
                    summary_cache.stats.to_dict()
                    if summary_cache is not None
                    else None
                ),
                "compile_cache": service.stats_dict(),
            }
        print(json.dumps(doc, indent=2))
    else:
        print(diags.render())
        if args.deep and summary_cache is not None:
            stats = summary_cache.stats
            print(
                f"[deep] summary cache: {stats.hits} hit(s), "
                f"{stats.misses} miss(es); compile cache: "
                f"{service.stats.hits} hit(s), "
                f"{service.stats.misses} miss(es)"
            )
    if fail_on == "never":
        return 0
    if _FAIL_ON_CODE_RE.match(fail_on):
        hit = any(d.code.startswith(fail_on) for d in diags)
        return EXIT_LINT if hit else 0
    threshold = Severity.from_name(fail_on)
    return EXIT_LINT if diags.at_least(threshold) else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .service import (
        SweepGrid,
        build_sweep_payload,
        default_cache_dir,
        run_sweep,
        validate_sweep_payload,
    )

    try:
        grid = SweepGrid.parse(
            benchmarks=args.source,
            schedulers=args.schedulers,
            ks=args.k,
            ds=args.d,
            local_memories=args.local_mem,
            fth=args.fth,
            engine=args.engine,
            epr_rate=args.epr_rate,
            topologies=args.topology,
            cores=args.cores,
            link_bw=args.link_bw,
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from None
    jobs = grid.expand()
    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir or str(default_cache_dir())
    run = run_sweep(
        jobs,
        cache_dir=cache_dir,
        parallel=not args.serial,
        max_workers=args.jobs,
        timeout=args.timeout,
        use_cache=not args.no_cache,
    )
    payload = build_sweep_payload(run, grid)
    problems = validate_sweep_payload(payload)
    for problem in problems:  # defensive; the runner emits valid docs
        print(f"warning: invalid sweep payload: {problem}",
              file=sys.stderr)
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2)
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        header = (
            f"{'benchmark':<10} {'sched':<5} {'k':>2} {'d':>4} "
            f"{'local':>6} {'status':<8} {'cache':<7} "
            f"{'runtime':>10} {'comm x':>7} {'time':>8}"
        )
        print(header)
        print("-" * len(header))
        for outcome in run.outcomes:
            job = outcome["job"]
            metrics = outcome.get("metrics") or {}
            runtime = metrics.get("runtime")
            speedup = metrics.get("comm_aware_speedup")
            print(
                f"{job['benchmark']:<10} {job['algorithm']:<5} "
                f"{job['k']:>2} "
                f"{job['d'] if job['d'] is not None else 'inf':>4} "
                f"{job['local_memory']:>6} "
                f"{outcome['status']:<8} "
                f"{outcome.get('cached') or 'miss':<7} "
                f"{runtime if runtime is not None else '-':>10} "
                f"{f'{speedup:.2f}' if speedup is not None else '-':>7} "
                f"{outcome['elapsed_s']:>7.2f}s"
            )
        print(
            f"\n{len(run.ok)}/{len(run.outcomes)} jobs ok, "
            f"{run.cache_hits} served from cache "
            f"({100 * run.hit_rate:.0f}%), wall {run.wall_s:.2f}s"
            + (", degraded to serial" if run.degraded_to_serial else "")
        )
        if args.output:
            print(f"wrote {args.output}")
    if not run.failed:
        return 0
    kinds = {
        (outcome.get("error") or {}).get("kind")
        for outcome in run.failed
    }
    if "schedule" in kinds:
        return EXIT_SCHEDULE
    if "parse" in kinds:
        return EXIT_PARSE
    return EXIT_LINT


def _cmd_perf(args: argparse.Namespace) -> int:
    from .service import (
        compare_perf_payloads,
        run_perf,
        validate_perf_payload,
    )

    if args.repeats < 1:
        raise CLIError(f"--repeats must be >= 1, got {args.repeats}")
    baseline = None
    if args.baseline:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except (FileNotFoundError, IsADirectoryError):
            raise CLIError(f"baseline {args.baseline!r} is not readable")
        except json.JSONDecodeError as exc:
            raise CLIError(
                f"baseline {args.baseline!r} is not JSON: {exc}"
            )
        problems = validate_perf_payload(baseline)
        if problems:
            raise CLIError(
                f"baseline {args.baseline!r} is not a valid perf "
                f"document: {'; '.join(problems[:3])}"
            )
    scale_jobs = None
    if args.scale_gates is not None:
        if args.no_scale:
            raise CLIError("--scale-gates conflicts with --no-scale")
        if args.scale_gates < 1:
            raise CLIError(
                f"--scale-gates must be >= 1, got {args.scale_gates}"
            )
        from .service import scale_perf_jobs

        scale_jobs = scale_perf_jobs(target_gates=args.scale_gates)
    payload = run_perf(
        repeats=args.repeats,
        include_reference=not args.no_reference,
        include_scale=not args.no_scale,
        scale_jobs=scale_jobs,
        scale_fresh_process=not args.scale_in_process,
    )
    problems = validate_perf_payload(payload)
    for problem in problems:  # defensive; run_perf emits valid docs
        print(f"warning: invalid perf payload: {problem}",
              file=sys.stderr)
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2)
    fast = payload["fast"]
    reference = payload["reference"]
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"pinned grid: {len(fast['per_job'])} jobs x "
            f"{payload['repeats']} repeat(s), serial, uncached"
        )
        print(f"{'stage':<28} {'calls':>7} {'fast':>9} {'reference':>10}")
        print("-" * 57)
        ref_stages = (reference or {}).get("stages", {})
        for name, stat in sorted(
            fast["stages"].items(), key=lambda kv: -kv[1]["seconds"]
        ):
            ref = ref_stages.get(name)
            ref_s = f"{ref['seconds']:>9.3f}s" if ref else "         -"
            print(
                f"{name:<28} {stat['calls']:>7} "
                f"{stat['seconds']:>8.3f}s {ref_s}"
            )
        print("-" * 57)
        ref_total = (
            f"{reference['total_compute_s']:>9.3f}s" if reference
            else "         -"
        )
        print(
            f"{'total compute':<28} {'':>7} "
            f"{fast['total_compute_s']:>8.3f}s {ref_total}"
        )
        if fast["peak_rss_kb"] is not None:
            print(f"peak RSS: {fast['peak_rss_kb'] / 1024:.0f} MiB")
        if payload["speedup"] is not None:
            print(f"fast-path speedup: {payload['speedup']:.2f}x")
        scale = payload.get("scale")
        if scale and scale.get("jobs"):
            iso = (
                "" if scale.get("process_isolated") else " (in-process)"
            )
            print(f"\nscale benchmarks{iso}:")
            print(f"{'job':<48} {'gates':>11} {'elapsed':>9} "
                  f"{'peak RSS':>9}")
            print("-" * 80)
            for row in scale["jobs"]:
                if row.get("status") != "ok":
                    print(f"{row.get('label', '?'):<48} "
                          f"{row.get('status')}: "
                          f"{row.get('error', 'unknown')}")
                    continue
                print(
                    f"{row['label']:<48} {row['total_gates']:>11,} "
                    f"{row['elapsed_s']:>8.2f}s "
                    f"{row['peak_rss_kb'] / 1024:>7.0f}MB"
                )
            if payload.get("streamed_overhead") is not None:
                print("streamed/materialized overhead: "
                      f"{payload['streamed_overhead']:.2f}x")
        if args.output:
            print(f"wrote {args.output}")
    failed = set(fast["failed_jobs"])
    if reference:
        failed |= set(reference["failed_jobs"])
    for row in (payload.get("scale") or {}).get("jobs", []):
        if row.get("status") != "ok":
            failed.add(row.get("label", "scale:?"))
    if failed:
        print(
            f"error: {len(failed)} job(s) failed: "
            + ", ".join(sorted(failed)[:5]),
            file=sys.stderr,
        )
        return EXIT_LINT
    if baseline is not None:
        regressions = compare_perf_payloads(
            payload,
            baseline,
            tolerance=args.tolerance,
            memory_tolerance=args.memory_tolerance,
        )
        for regression in regressions:
            print(f"regression: {regression}", file=sys.stderr)
        if regressions:
            return EXIT_LINT
        print(f"no regressions vs {args.baseline}")
    return 0


def _parse_rate(text: str) -> float:
    if text in ("inf", "infinite"):
        return float("inf")
    try:
        rate = float(text)
    except ValueError:
        raise CLIError(
            f"invalid rate {text!r} (expected a number or 'inf')"
        ) from None
    if rate <= 0:
        raise CLIError(f"rate must be positive, got {text!r}")
    return rate


def _engine_config(args: argparse.Namespace):
    """Build an :class:`~repro.engine.EngineConfig` from CLI flags."""
    import math

    from .arch.numa import NUMAConfig
    from .engine import EngineConfig, FaultConfig

    numa = None
    if (
        args.banks is not None
        or args.channel_bw is not None
        or args.bank_egress is not None
    ):
        try:
            numa = NUMAConfig(
                banks=args.banks if args.banks is not None else 1,
                channel_bandwidth=(
                    _parse_rate(args.channel_bw)
                    if args.channel_bw is not None
                    else math.inf
                ),
                bank_egress=(
                    _parse_rate(args.bank_egress)
                    if args.bank_egress is not None
                    else math.inf
                ),
            )
        except ValueError as exc:
            raise CLIError(str(exc)) from None
    faults = None
    if args.qecc_level is not None:
        try:
            faults = FaultConfig.from_qecc(
                args.qecc_level,
                epr_failure_prob=args.fault_epr,
                region_failure_prob=args.fault_region,
                region_downtime=args.fault_downtime,
            )
        except ValueError as exc:
            raise CLIError(str(exc)) from None
    elif args.fault_epr or args.fault_region or args.gate_error_rate:
        try:
            faults = FaultConfig(
                epr_failure_prob=args.fault_epr,
                region_failure_prob=args.fault_region,
                region_downtime=args.fault_downtime,
                gate_error_rate=args.gate_error_rate,
            )
        except ValueError as exc:
            raise CLIError(str(exc)) from None
    return EngineConfig(
        epr_rate=_parse_rate(args.epr_rate),
        numa=numa,
        faults=faults,
        seed=args.seed,
        collect_trace=args.trace is not None,
    )


def _execute_stream(args: argparse.Namespace) -> int:
    """The ``execute --stream`` path: run the engine epoch-at-a-time
    over a ``repro.schedule-stream`` export without inflating it.

    Traces are sampled (``--sample-every``) so even a 10^7-gate export
    can be traced; stall and fault events are always recorded.
    """
    from .engine import EngineError, validate_trace_payload, write_chrome_trace
    from .engine.trace import build_payload
    from .service import execute_schedule_stream

    if args.source is not None:
        raise CLIError(
            "--stream replaces the source argument (got both "
            f"{args.stream!r} and {args.source!r})"
        )
    if args.topology is not None:
        raise CLIError("--stream cannot be combined with --topology")
    if args.sample_every < 1:
        raise CLIError(
            f"--sample-every must be >= 1, got {args.sample_every}"
        )
    config = _engine_config(args)
    machine = MultiSIMD(
        k=args.k,
        d=args.d,
        local_memory=_parse_capacity(args.local_mem),
    )
    try:
        header, result, comm = execute_schedule_stream(
            args.stream,
            machine,
            config,
            sample_every=args.sample_every,
        )
    except (FileNotFoundError, IsADirectoryError):
        raise CLIError(f"{args.stream!r} is not a readable file")
    except EngineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except (ValueError, KeyError, json.JSONDecodeError) as exc:
        print(
            f"error: invalid schedule stream {args.stream!r}: {exc}",
            file=sys.stderr,
        )
        return EXIT_SCHEDULE

    trace_events = None
    if args.trace and result.trace is not None:
        payload = build_payload(
            [(result.module, result.trace)],
            runtime=result.realized_runtime,
            machine={
                "k": machine.k,
                "d": machine.d,
                "local_memory": machine.local_memory,
            },
            stats={
                "entry": result.module,
                "realized_runtime": result.realized_runtime,
                "analytic_runtime": result.analytic_runtime,
                "modules": 1,
                "engine_config": config.to_dict(),
                "faults": result.fault_log.total_events,
                "sample_every": args.sample_every,
            },
        )
        problems = validate_trace_payload(payload)
        for problem in problems:  # defensive; the engine emits valid docs
            print(
                f"warning: invalid trace payload: {problem}",
                file=sys.stderr,
            )
        trace_events = write_chrome_trace(args.trace, payload)
    if args.json:
        doc = result.to_dict()
        doc["stream"] = {
            "path": args.stream,
            "schema": header["schema"],
            "module": header.get("module"),
            "algorithm": header.get("algorithm"),
            "op_count": header.get("op_count"),
            "timesteps": header.get("length"),
            "sample_every": args.sample_every,
        }
        if comm is not None:
            doc["stream"]["compile_runtime"] = comm.runtime
        doc["machine"] = {
            "k": machine.k,
            "d": machine.d,
            "local_memory": machine.local_memory,
        }
        print(json.dumps(doc, indent=2))
        return 0
    stalls = result.stalls
    util = result.utilization
    avg_util = sum(util.values()) / len(util) if util else 0.0
    ideal = result.realized_runtime == result.analytic_runtime
    print(f"machine:           {machine}")
    print(f"stream:            {args.stream} "
          f"({header.get('algorithm')}, module "
          f"{header.get('module') or '?'!r})")
    print(f"ops executed:      {result.ops_executed:,} over "
          f"{header.get('length', 0):,} timesteps")
    print(f"analytic runtime:  {result.analytic_runtime:,} cycles")
    print(f"realized runtime:  {result.realized_runtime:,} cycles"
          + ("  (= analytic)" if ideal else ""))
    print(f"stall cycles:      {stalls.total:,} "
          f"(epr {stalls.epr:,}, bandwidth {stalls.bandwidth:,}, "
          f"fault {stalls.fault:,})")
    print(f"utilization:       {100 * avg_util:.1f}%")
    print(f"teleport rounds:   {result.teleport_rounds:,}")
    log = result.fault_log
    if log.total_events:
        print(f"faults injected:   {log.total_events:,} "
              f"(epr regen {log.epr_regenerations:,}, region down "
              f"{log.region_down_events:,}, gate errors "
              f"{log.gate_errors:,})")
    if comm is not None and comm.runtime != result.analytic_runtime:
        print(f"compile-time est.: {comm.runtime:,} cycles "
              "(footer CommStats)")
    print("preflight:         unavailable (streamed execution)")
    if args.trace:
        if trace_events is None:
            print("trace:             not collected", file=sys.stderr)
        else:
            print(f"wrote {trace_events} trace events to {args.trace} "
                  "(load in chrome://tracing or ui.perfetto.dev)")
    return 0


def _cmd_execute(args: argparse.Namespace) -> int:
    from .engine import (
        EngineError,
        PreflightError,
        execute_result,
        validate_trace_payload,
        write_chrome_trace,
    )

    if args.stream is not None:
        return _execute_stream(args)
    if args.source is None:
        raise CLIError(
            "execute needs a source (benchmark key / file) or "
            "--stream FILE"
        )
    config = _engine_config(args)
    prog = _load_program(args.source)
    fth = args.fth
    if fth is None:
        fth = _default_fth(args.source)
    machine = MultiSIMD(
        k=args.k,
        d=args.d,
        local_memory=_parse_capacity(args.local_mem),
    )
    if args.topology is not None:
        return _execute_multicore(args, config, prog, machine, fth)
    result = compile_and_schedule(
        prog, machine, SchedulerConfig(args.scheduler), fth=fth
    )
    try:
        execution = execute_result(
            result, config, preflight=not args.no_preflight
        )
    except PreflightError as exc:
        print(f"error: {exc}", file=sys.stderr)
        for code, message, _t in exc.violations[:10]:
            print(f"  {code}: {message}", file=sys.stderr)
        if len(exc.violations) > 10:
            print(
                f"  ... {len(exc.violations) - 10} more",
                file=sys.stderr,
            )
        return EXIT_SCHEDULE
    except EngineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    trace_events = None
    if args.trace:
        payload = execution.to_trace_payload()
        problems = validate_trace_payload(payload)
        for problem in problems:  # defensive; the engine emits valid docs
            print(
                f"warning: invalid trace payload: {problem}",
                file=sys.stderr,
            )
        trace_events = write_chrome_trace(args.trace, payload)
    if args.json:
        doc = execution.to_dict()
        doc["scheduler"] = args.scheduler
        doc["machine"] = {
            "k": machine.k,
            "d": machine.d,
            "local_memory": machine.local_memory,
        }
        doc["metrics"] = execution.metrics()
        print(json.dumps(doc, indent=2))
        return 0
    stalls = execution.stalls
    print(f"machine:           {machine}")
    print(f"scheduler:         {args.scheduler}")
    print(f"entry module:      {execution.entry} "
          f"({len(execution.leaves)} leaf, "
          f"{len(execution.coarse)} coarse)")
    print(f"analytic runtime:  {execution.analytic_runtime:,} cycles")
    print(f"realized runtime:  {execution.realized_runtime:,} cycles"
          + ("  (= analytic)" if execution.ideal_match else ""))
    print(f"stall cycles:      {stalls.total:,} "
          f"(epr {stalls.epr:,}, bandwidth {stalls.bandwidth:,}, "
          f"fault {stalls.fault:,})")
    print(f"utilization:       {100 * execution.utilization:.1f}%")
    print(f"teleport rounds:   {execution.teleport_rounds:,}")
    log = execution.fault_log
    if log.total_events:
        print(f"faults injected:   {log.total_events:,} "
              f"(epr regen {log.epr_regenerations:,}, region down "
              f"{log.region_down_events:,}, gate errors "
              f"{log.gate_errors:,})")
    if execution.leaves and any(
        r.preflight_violations is not None
        for r in execution.leaves.values()
    ):
        print("preflight:         passed (0 violations)")
    elif args.no_preflight:
        print("preflight:         skipped (--no-preflight)")
    if args.trace:
        print(f"wrote {trace_events} trace events to {args.trace} "
              "(load in chrome://tracing or ui.perfetto.dev)")
    return 0


def _multicore_graph(args: argparse.Namespace):
    """Build the :class:`~repro.multicore.CoreGraph` named by CLI
    flags, mapping topology spelling errors to the usage contract."""
    from .multicore import TopologyError, parse_topology

    try:
        return parse_topology(args.topology, args.cores, args.link_bw)
    except TopologyError as exc:
        raise CLIError(str(exc)) from None


def _execute_multicore(
    args: argparse.Namespace,
    config,
    prog,
    machine: MultiSIMD,
    fth: int,
) -> int:
    """The ``execute --topology`` path: multi-core compile + engine.

    ``-k``/``-d`` describe each *core* (the machine has ``--cores`` of
    them); ``--epr-rate`` throttles the per-core intra pools and
    ``--link-epr-rate`` the interconnect links (defaulting to the
    intra rate, the sweep runner's one-knob semantic).
    """
    from .engine import (
        EngineError,
        PreflightError,
        validate_trace_payload,
        write_chrome_trace,
    )
    from .multicore import (
        MulticoreConfig,
        PartitionError,
        compile_and_schedule_multicore,
        execute_multicore_result,
    )

    graph = _multicore_graph(args)
    link_rate = (
        _parse_rate(args.link_epr_rate)
        if args.link_epr_rate is not None
        else config.epr_rate
    )
    mc_config = MulticoreConfig(graph, link_epr_rate=link_rate)
    try:
        result = compile_and_schedule_multicore(
            prog,
            machine,
            mc_config,
            SchedulerConfig(args.scheduler),
            fth=fth,
        )
    except PartitionError as exc:
        raise CLIError(str(exc)) from None
    try:
        execution = execute_multicore_result(
            result, config, preflight=not args.no_preflight
        )
    except PreflightError as exc:
        print(f"error: {exc}", file=sys.stderr)
        for code, message, _t in exc.violations[:10]:
            print(f"  {code}: {message}", file=sys.stderr)
        if len(exc.violations) > 10:
            print(
                f"  ... {len(exc.violations) - 10} more",
                file=sys.stderr,
            )
        return EXIT_SCHEDULE
    except EngineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    trace_events = None
    if args.trace:
        payload = execution.to_trace_payload()
        problems = validate_trace_payload(payload)
        for problem in problems:  # defensive; the engine emits valid docs
            print(
                f"warning: invalid trace payload: {problem}",
                file=sys.stderr,
            )
        trace_events = write_chrome_trace(args.trace, payload)
    if args.json:
        doc = execution.to_dict()
        doc["scheduler"] = args.scheduler
        doc["machine"] = {
            "k": machine.k,
            "d": machine.d,
            "local_memory": machine.local_memory,
            "cores": graph.cores,
            "topology": graph.name,
            "link_bw": args.link_bw,
        }
        doc["metrics"] = {**result.metrics(), **execution.metrics()}
        print(json.dumps(doc, indent=2))
        return 0
    stalls = execution.stalls
    print(f"machine:            {graph.cores} x {machine} "
          f"[{graph.name}, link bw {args.link_bw:g}]")
    print(f"scheduler:          {args.scheduler}")
    print(f"entry module:       {execution.entry} "
          f"({len(execution.leaves)} leaf, "
          f"{len(execution.coarse)} coarse)")
    print(f"analytic makespan:  {execution.analytic_runtime:,} cycles")
    print(f"realized makespan:  {execution.realized_runtime:,} cycles"
          + ("  (= analytic)" if execution.ideal_match else ""))
    print(f"stall cycles:       {stalls.total:,} "
          f"(intra-core {stalls.intra:,}, "
          f"inter-core {stalls.intercore:,})")
    print(f"inter-core comm:    {result.intercore_teleports:,} "
          f"teleport(s), {result.intercore_pairs:,} EPR pair(s), "
          f"cut weight {result.cut_weight:,}, "
          f"max {result.max_hops} hop(s)")
    print(f"decomposition:      "
          + ("ok (realized == analytic + stalls per leaf)"
             if execution.decomposition_ok else "VIOLATED"))
    print(f"utilization:        {100 * execution.utilization:.1f}%")
    log = execution.fault_log
    if log.total_events:
        print(f"faults injected:    {log.total_events:,} "
              f"(epr regen {log.epr_regenerations:,}, region down "
              f"{log.region_down_events:,}, gate errors "
              f"{log.gate_errors:,})")
    if args.no_preflight:
        print("preflight:          skipped (--no-preflight)")
    if args.trace:
        print(f"wrote {trace_events} trace events to {args.trace} "
              "(one lane per core; load in chrome://tracing or "
              "ui.perfetto.dev)")
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    from .multicore import (
        MulticoreConfig,
        PartitionError,
        compile_and_schedule_multicore,
    )

    prog = _load_program(args.source)
    fth = args.fth
    if fth is None:
        fth = (
            BENCHMARKS[args.source].fth
            if args.source in BENCHMARKS
            else 4096
        )
    graph = _multicore_graph(args)
    machine = MultiSIMD(k=args.k, d=args.d)
    config = MulticoreConfig(
        graph, seed=args.seed, refine=not args.no_refine
    )
    try:
        result = compile_and_schedule_multicore(
            prog,
            machine,
            config,
            SchedulerConfig(args.scheduler),
            fth=fth,
        )
    except PartitionError as exc:
        raise CLIError(str(exc)) from None
    if args.format == "json":
        doc = {
            "source": args.source,
            "topology": graph.to_dict(),
            "machine": {"k": machine.k, "d": machine.d},
            "seed": args.seed,
            "refine": not args.no_refine,
            "partitions": {
                name: report.to_dict()
                for name, report in sorted(result.partitions.items())
            },
            "leaves": {
                name: {
                    "makespan": msched.makespan,
                    "intra_runtime": msched.intra_runtime,
                    "intercore_cycles": msched.intercore_cycles,
                    "intercore_teleports": msched.intercore_teleports,
                    "max_hops": msched.max_hops,
                }
                for name, msched in sorted(result.leaf_schedules.items())
            },
        }
        print(json.dumps(doc, indent=2))
        return 0
    print(f"machine:  {graph.cores} x {machine} "
          f"[{graph.name}, link bw {args.link_bw:g}]")
    cap = machine.k if machine.d is None else machine.k * machine.d
    print(f"capacity: "
          + ("unbounded" if machine.d is None
             else f"{cap} qubit(s) per core")
          + f", seed {args.seed}"
          + ("" if not args.no_refine else ", refinement off"))
    header = (
        f"{'leaf':<24} {'qubits':>6} {'cut':>5} {'total':>6} "
        f"{'cut %':>6} {'balance':>7} {'moves':>5} {'occupancy'}"
    )
    print(header)
    print("-" * len(header))
    for name, report in sorted(result.partitions.items()):
        occupancy = "/".join(str(n) for n in report.occupancy)
        print(
            f"{name:<24} {report.qubits:>6} {report.cut_weight:>5} "
            f"{report.total_weight:>6} "
            f"{100 * report.cut_fraction:>5.1f}% "
            f"{report.balance:>7.2f} {report.moves:>5} {occupancy}"
        )
        msched = result.leaf_schedules.get(name)
        if msched is not None and msched.intercore_teleports:
            print(
                f"{'':<24} -> makespan {msched.makespan:,} = intra "
                f"{msched.intra_runtime:,} + inter-core "
                f"{msched.intercore_cycles:,} "
                f"({msched.intercore_teleports} teleport(s), max "
                f"{msched.max_hops} hop(s))"
            )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .server import ReproServer, ServerConfig
    from .service import default_cache_dir

    if args.workers < 1:
        raise CLIError(f"--workers must be >= 1, got {args.workers}")
    if args.queue_depth < 1:
        raise CLIError(
            f"--queue-depth must be >= 1, got {args.queue_depth}"
        )
    if args.rate is not None and args.rate <= 0:
        raise CLIError(f"--rate must be positive, got {args.rate}")
    if args.job_timeout is not None and args.job_timeout <= 0:
        raise CLIError(
            f"--job-timeout must be positive, got {args.job_timeout}"
        )
    cache_dir = (
        None
        if args.no_cache
        else (args.cache_dir or str(default_cache_dir()))
    )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        rate=args.rate,
        burst=args.burst,
        job_timeout=args.job_timeout,
        cache_dir=cache_dir,
        use_cache=not args.no_cache,
        drain_grace=args.drain_grace,
        allow_delay=args.allow_delay,
        stats_file=args.stats_file,
    )

    async def run() -> None:
        server = ReproServer(config)
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, server.request_drain)
        print(
            f"repro-server listening on "
            f"http://{server.host}:{server.port}",
            flush=True,
        )
        print(
            f"  workers={config.workers} "
            f"queue_depth={config.queue_depth} "
            f"cache={'off' if cache_dir is None else cache_dir}",
            flush=True,
        )
        await server.wait_done()

    asyncio.run(run())
    print("repro-server drained cleanly", flush=True)
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    from .server.loadtest import (
        LoadTestConfig,
        loadtest_with_spawn,
        render_service_report,
        run_loadtest,
        validate_service_payload,
    )

    if args.benchmark not in BENCHMARKS:
        raise CLIError(
            f"unknown benchmark {args.benchmark!r} "
            f"(have {', '.join(benchmark_names())})"
        )
    for name, value in (
        ("--clients", args.clients),
        ("--storm", args.storm),
        ("--rounds", args.rounds),
    ):
        if value < 1:
            raise CLIError(f"{name} must be >= 1, got {value}")
    if args.distinct < 0:
        raise CLIError(f"--distinct must be >= 0, got {args.distinct}")
    config = LoadTestConfig(
        host=args.host,
        port=args.port,
        clients=args.clients,
        storm=args.storm,
        distinct=args.distinct,
        rounds=args.rounds,
        storm_request={
            "source": args.benchmark,
            "k": args.k,
            "scheduler": args.scheduler,
        },
        tenant=args.tenant,
        timeout=args.timeout,
    )
    if args.spawn or args.term_during_load:
        serve_argv = ["--workers", str(args.workers)]
        if args.cache_dir:
            serve_argv += ["--cache-dir", args.cache_dir]
        if args.no_cache:
            serve_argv.append("--no-cache")
        payload = loadtest_with_spawn(
            config,
            serve_argv,
            term_during_load=args.term_during_load,
        )
    else:
        payload = run_loadtest(config)
    problems = validate_service_payload(payload)
    for problem in problems:  # defensive; the harness emits valid docs
        print(
            f"warning: invalid service payload: {problem}",
            file=sys.stderr,
        )
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2)
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        print(render_service_report(payload))
        if args.output:
            print(f"wrote {args.output}")
    drain = payload.get("drain") or {}
    if payload["requests"]["errors"]:
        return EXIT_LINT
    if drain and (drain.get("exit_code") != 0 or drain.get("dropped")):
        return EXIT_LINT
    return 0


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    from .service import default_cache_dir, inspect_store

    cache_dir = args.cache_dir or str(default_cache_dir())
    report = inspect_store(cache_dir)
    if args.format == "json":
        print(json.dumps(report, indent=2))
        return 0
    print(f"store:             {report['root']}"
          + ("" if report["exists"] else "  (missing)"))
    print(f"pipeline version:  {report['pipeline_version']}")
    print(f"artifacts:         {report['artifacts']:,} "
          f"({report['shards']} shard(s), "
          f"{report['total_bytes'] / 1024:.1f} KiB)")
    if report["stale_artifacts"]:
        print(f"stale artifacts:   {report['stale_artifacts']:,} "
              f"({report['unreadable_artifacts']} unreadable)")
    for version, count in report["by_pipeline_version"].items():
        marker = (
            "" if version == report["pipeline_version"] else "  (stale)"
        )
        print(f"  {version:<24} {count:,}{marker}")
    snapshot = report["snapshot"]
    if snapshot is None:
        print("counters:          no snapshot "
              "(written on server drain)")
        return 0
    stats = snapshot["stats"]
    print(f"counters (snapshot from unix {snapshot['written_unix']:.0f}):")
    print(f"  memory hits      {stats['memory_hits']:,}")
    print(f"  disk hits        {stats['disk_hits']:,}")
    print(f"  misses           {stats['misses']:,}")
    print(f"  evictions        {stats['evictions']:,}")
    print(f"  stores           {stats['stores']:,}")
    print(f"  hit rate         {stats['hit_rate']:.1%}")
    server = (snapshot.get("extra") or {}).get("server")
    if server:
        jobs = server.get("jobs", {})
        coalesce = server.get("coalesce", {})
        print("last server run:")
        print(f"  jobs submitted   {jobs.get('submitted', 0):,}")
        print(f"  coalesced        {coalesce.get('coalesced', 0):,}")
        print(f"  cache served     {coalesce.get('cache_served', 0):,}")
        print(
            f"  amortized rate   "
            f"{coalesce.get('amortized_rate', 0.0):.1%}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Multi-SIMD quantum scheduling toolflow (ASPLOS'15 "
            "reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark suite").set_defaults(
        fn=_cmd_list
    )

    p_est = sub.add_parser(
        "estimate", help="hierarchical resource estimation"
    )
    p_est.add_argument("source", help="benchmark key or QASM file")
    p_est.set_defaults(fn=_cmd_estimate)

    p_c = sub.add_parser("compile", help="compile and schedule")
    p_c.add_argument(
        "source",
        help=(
            "benchmark key, QASM/Scaffold file, or synthetic "
            "scale:<kind>[:<gates>] (e.g. scale:adder:1e7)"
        ),
    )
    p_c.add_argument("-k", type=int, default=4, help="SIMD regions")
    p_c.add_argument(
        "-d", type=int, default=None,
        help="qubits per region (default unbounded)",
    )
    p_c.add_argument(
        "--scheduler", choices=("sequential", "rcp", "lpfs"),
        default="lpfs",
    )
    p_c.add_argument(
        "--local-mem", default=None,
        help="scratchpad capacity per region: none, a number, or inf",
    )
    p_c.add_argument(
        "--fth", type=int, default=None,
        help="flattening threshold in ops (default: per-benchmark)",
    )
    p_c.add_argument(
        "--optimize", action="store_true",
        help="run peephole cancellation/merging before decomposition",
    )
    p_c.add_argument(
        "--no-decompose", action="store_true",
        help=(
            "schedule Scaffold-level gates without lowering to the "
            "QASM subset (keeps Toffoli/SWAP intact, so exported "
            "streams stay inside the reversible verifier's subset)"
        ),
    )
    p_c.add_argument(
        "--strict", action="store_true",
        help="run the static analyzer between passes; fail on errors",
    )
    p_c.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_c.add_argument(
        "--profile", action="store_true",
        help="print per-module blackbox dimensions",
    )
    p_c.add_argument(
        "--timeline", type=int, nargs="?", const=30, default=None,
        metavar="N", help="print the first N schedule timesteps",
    )
    p_c.add_argument(
        "--stream", action="store_true",
        help=(
            "use the streaming pipeline: bounded-memory columnar "
            "scheduling with bit-identical metrics"
        ),
    )
    p_c.add_argument(
        "--window", type=int, default=None, metavar="N",
        help=(
            "streaming ingestion window in ops (implies --stream; "
            "0 = unbounded; default 65536). Schedules are identical "
            "for every window"
        ),
    )
    p_c.add_argument(
        "--export-stream", default=None, metavar="FILE",
        help=(
            "write the entry leaf's schedule as a repro.schedule-"
            "stream JSONL file, epoch-at-a-time ('.gz' compresses; "
            "implies --stream)"
        ),
    )
    p_c.add_argument(
        "--entry-width-only", action="store_true",
        help=(
            "with --stream: profile only the full machine width "
            "(paper-scale mode; skips the 1..k width sweep)"
        ),
    )
    p_c.set_defaults(fn=_cmd_compile)

    p_v = sub.add_parser(
        "verify",
        help=(
            "prove schedules and rewrites semantics-preserving with "
            "the reversible simulator"
        ),
    )
    p_v.add_argument(
        "source",
        help=(
            "benchmark key, QASM/Scaffold file, or synthetic "
            "scale:<kind>[:<gates>][:wN] (e.g. scale:adder:1e5:w8)"
        ),
    )
    p_v.add_argument(
        "--spec", default=None, metavar="NAME",
        help=(
            "check a registered arithmetic spec (adder, compare, "
            "multiply) against its kernel module's semantics"
        ),
    )
    p_v.add_argument(
        "--module", default=None, metavar="NAME",
        help="kernel module to bind (default: by spec register shape)",
    )
    p_v.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help=(
            "how many times the kernel applies (default: the entry "
            "point's call multiplicity)"
        ),
    )
    p_v.add_argument(
        "--stream", default=None, metavar="FILE",
        help=(
            "replay an exported repro.schedule-stream JSONL file "
            "op-by-op against the unscheduled program"
        ),
    )
    p_v.add_argument(
        "--exhaustive", action="store_true",
        help="sweep every input regardless of register size",
    )
    p_v.add_argument(
        "--samples", type=int, default=None, metavar="N",
        help="force a sampled sweep with N seeded inputs",
    )
    p_v.add_argument(
        "--seed", type=int, default=0, help="sample seed (default 0)"
    )
    p_v.add_argument(
        "--exhaustive-limit", type=int, default=None, metavar="BITS",
        help=(
            "auto mode sweeps all inputs up to this many input bits "
            "and samples above it (default 18)"
        ),
    )
    p_v.add_argument(
        "--no-schedule", action="store_true",
        help="spec mode: skip the scheduled-replay proof",
    )
    p_v.add_argument("-k", type=int, default=4, help="SIMD regions")
    p_v.add_argument(
        "-d", type=int, default=None,
        help="qubits per region (default unbounded)",
    )
    p_v.add_argument(
        "--scheduler", choices=("sequential", "rcp", "lpfs"),
        default="lpfs",
    )
    p_v.add_argument(
        "--window", type=int, default=None, metavar="N",
        help="streaming ingestion window in ops (0 = unbounded)",
    )
    p_v.add_argument(
        "--fth", type=int, default=None,
        help="flattening threshold in ops (default: per-benchmark)",
    )
    p_v.set_defaults(fn=_cmd_verify)

    p_e = sub.add_parser("emit", help="emit hierarchical QASM")
    p_e.add_argument("source", help="benchmark key or QASM file")
    p_e.add_argument("-o", "--output", default=None)
    p_e.set_defaults(fn=_cmd_emit)

    p_l = sub.add_parser(
        "lint", help="run the static analyzer (qlint)"
    )
    p_l.add_argument(
        "source",
        help=(
            "benchmark key, 'all' for the whole registry, or a "
            "Scaffold/QASM file"
        ),
    )
    p_l.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default text)",
    )
    p_l.add_argument(
        "--fail-on", default="error", metavar="WHEN",
        help=(
            "what makes the exit code non-zero: a severity name "
            "(error, warning, info — lowest severity that fails), "
            "'never', or a diagnostic-code prefix such as QL4 or "
            "QL502 (default error)"
        ),
    )
    p_l.add_argument(
        "--deep", action="store_true",
        help=(
            "additionally run the interprocedural battery (QL4xx "
            "qubit-lifetime rules, QL501 machine fit) and sanitize "
            "compiled schedules/profiles against the static "
            "resource/communication bounds (QL502-QL504)"
        ),
    )
    p_l.add_argument(
        "-k", type=int, default=4,
        help="SIMD regions assumed by --deep (default 4)",
    )
    p_l.add_argument(
        "-d", type=int, default=4,
        help="ops per region assumed by --deep (default 4)",
    )
    p_l.add_argument(
        "--cache-dir", default=None,
        help=(
            "cache directory for --deep compile artifacts and "
            "analysis summaries (default $REPRO_CACHE_DIR or "
            "./.repro-cache)"
        ),
    )
    p_l.add_argument(
        "--no-cache", action="store_true",
        help="disable the --deep caches (fresh compute)",
    )
    p_l.add_argument(
        "--topology", default=None, metavar="NAME",
        help=(
            "with --deep: additionally audit the multi-core pipeline "
            "on this interconnect (line, ring, mesh, all-to-all) — "
            "per-core schedule bounds plus the topology-aware QL503 "
            "inter-core communication floor"
        ),
    )
    p_l.add_argument(
        "--cores", type=int, default=2,
        help="core count for --topology (default 2)",
    )
    p_l.add_argument(
        "--link-bw", type=float, default=1.0, dest="link_bw",
        metavar="B",
        help="EPR pairs per teleport round per link (default 1)",
    )
    p_l.set_defaults(fn=_cmd_lint)

    p_b = sub.add_parser(
        "bench",
        help="run a cached, parallel benchmark sweep",
    )
    p_b.add_argument(
        "source", nargs="?", default="all",
        help=(
            "comma-separated benchmark keys, or 'all' for the whole "
            "suite (default all)"
        ),
    )
    p_b.add_argument(
        "--schedulers", default="lpfs",
        help=(
            "comma-separated schedulers: sequential, rcp, lpfs "
            "(default lpfs)"
        ),
    )
    p_b.add_argument(
        "-k", default="4",
        help="comma-separated SIMD region counts (default 4)",
    )
    p_b.add_argument(
        "-d", default="inf",
        help="comma-separated region capacities, or inf (default inf)",
    )
    p_b.add_argument(
        "--local-mem", default="none", dest="local_mem",
        help=(
            "comma-separated scratchpad capacities: none, a number, "
            "or inf (default none)"
        ),
    )
    p_b.add_argument(
        "--fth", type=int, default=None,
        help="flattening threshold in ops (default: per-benchmark)",
    )
    p_b.add_argument(
        "--engine", action="store_true",
        help=(
            "also execute each job on the discrete-event engine, "
            "adding engine_* columns (schema repro.bench-sweep/3)"
        ),
    )
    p_b.add_argument(
        "--epr-rate", default=None, metavar="R",
        help=(
            "engine EPR generation rate in pairs/cycle, or 'inf' "
            "(default inf; only with --engine)"
        ),
    )
    p_b.add_argument(
        "--topology", default="none",
        help=(
            "comma-separated interconnect topologies for a multi-core "
            "axis: none, line, ring, mesh, all-to-all ('none' mixes "
            "in the single-core point; default none)"
        ),
    )
    p_b.add_argument(
        "--cores", default="1",
        help=(
            "comma-separated core counts for the multi-core axis "
            "(applied to every non-'none' topology; default 1)"
        ),
    )
    p_b.add_argument(
        "--link-bw", default="1", dest="link_bw", metavar="B",
        help=(
            "EPR pairs per teleport round per interconnect link "
            "(default 1)"
        ),
    )
    p_b.add_argument(
        "--serial", action="store_true",
        help="run jobs in-process instead of over a worker pool",
    )
    p_b.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker pool size (default: CPU count)",
    )
    p_b.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-job timeout in seconds (default: none)",
    )
    p_b.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=(
            "artifact store directory (default: $REPRO_CACHE_DIR or "
            "./.repro-cache)"
        ),
    )
    p_b.add_argument(
        "--no-cache", action="store_true",
        help="bypass the compile cache entirely",
    )
    p_b.add_argument(
        "-o", "--output", default="BENCH_sweep.json",
        help=(
            "sweep report path (default BENCH_sweep.json; '' to skip)"
        ),
    )
    p_b.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stdout format (default text)",
    )
    p_b.set_defaults(fn=_cmd_bench)

    p_p = sub.add_parser(
        "perf",
        help=(
            "benchmark the pipeline on the pinned grid "
            "(fast path vs reference)"
        ),
    )
    p_p.add_argument(
        "--repeats", type=int, default=2, metavar="N",
        help="measurement repeats; minimums are kept (default 2)",
    )
    p_p.add_argument(
        "--no-reference", action="store_true",
        help="skip the reference-pipeline measurement (faster; "
             "disables speedup and machine-scaled baseline compare)",
    )
    p_p.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=(
            "committed BENCH_perf.json to compare against; any stage "
            ">25%% over its machine-scaled budget fails with exit 1"
        ),
    )
    p_p.add_argument(
        "--tolerance", type=float, default=0.25, metavar="T",
        help="allowed fractional slowdown per stage (default 0.25)",
    )
    p_p.add_argument(
        "-o", "--output", default="BENCH_perf.json",
        help="perf report path (default BENCH_perf.json; '' to skip)",
    )
    p_p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stdout format (default text)",
    )
    p_p.add_argument(
        "--scale-gates", type=int, default=None, metavar="N",
        help=(
            "target gate count for the synthetic scale benchmarks "
            "(default 200000); streamed and materialized pipelines "
            "are measured at the same size"
        ),
    )
    p_p.add_argument(
        "--no-scale", action="store_true",
        help="skip the synthetic scale benchmarks",
    )
    p_p.add_argument(
        "--scale-in-process", action="store_true",
        help=(
            "run scale jobs in this process instead of fresh "
            "subprocesses (faster, but peak-RSS readings include "
            "whatever this process already allocated)"
        ),
    )
    p_p.add_argument(
        "--memory-tolerance", type=float, default=0.35, metavar="T",
        help=(
            "allowed fractional peak-RSS growth per scale job vs the "
            "machine-rescaled baseline (default 0.35)"
        ),
    )
    p_p.set_defaults(fn=_cmd_perf)

    p_x = sub.add_parser(
        "execute",
        help="execute a compiled schedule on the discrete-event engine",
    )
    p_x.add_argument(
        "source", nargs="?", default=None,
        help=(
            "benchmark key, QASM/Scaffold file, or synthetic "
            "scale:<kind>[:<gates>] (omit with --stream)"
        ),
    )
    p_x.add_argument("-k", type=int, default=4, help="SIMD regions")
    p_x.add_argument(
        "-d", type=int, default=None,
        help="qubits per region (default unbounded)",
    )
    p_x.add_argument(
        "--scheduler", choices=("sequential", "rcp", "lpfs"),
        default="lpfs",
    )
    p_x.add_argument(
        "--local-mem", default=None,
        help="scratchpad capacity per region: none, a number, or inf",
    )
    p_x.add_argument(
        "--fth", type=int, default=None,
        help="flattening threshold in ops (default: per-benchmark)",
    )
    p_x.add_argument(
        "--epr-rate", default="inf", metavar="R",
        help=(
            "steady EPR generation rate in pairs/cycle, or 'inf' for "
            "fully masked pre-distribution (default inf)"
        ),
    )
    p_x.add_argument(
        "--banks", type=int, default=None, metavar="N",
        help="distributed-memory banks (enables NUMA billing)",
    )
    p_x.add_argument(
        "--channel-bw", default=None, metavar="B",
        help="per-(bank,region) channel bandwidth per teleport round",
    )
    p_x.add_argument(
        "--bank-egress", default=None, metavar="B",
        help="per-bank egress capacity per teleport round",
    )
    p_x.add_argument(
        "--fault-epr", type=float, default=0.0, metavar="P",
        help="EPR generation failure probability (retried)",
    )
    p_x.add_argument(
        "--fault-region", type=float, default=0.0, metavar="P",
        help="per-timestep transient region-failure probability",
    )
    p_x.add_argument(
        "--fault-downtime", type=int, default=8, metavar="N",
        help="cycles a failed region stays down (default 8)",
    )
    p_x.add_argument(
        "--gate-error-rate", type=float, default=0.0, metavar="P",
        help="per-gate logical error probability",
    )
    p_x.add_argument(
        "--qecc-level", type=int, default=None, metavar="L",
        help=(
            "derive the gate error rate from a level-L concatenated "
            "code instead of --gate-error-rate"
        ),
    )
    p_x.add_argument(
        "--seed", type=int, default=0,
        help="fault-injection RNG seed (default 0)",
    )
    p_x.add_argument(
        "--topology", default=None, metavar="NAME",
        help=(
            "execute on a multi-core machine: interconnect topology "
            "(line, ring, mesh, all-to-all); -k/-d then describe "
            "each core"
        ),
    )
    p_x.add_argument(
        "--cores", type=int, default=2,
        help="core count (with --topology; default 2)",
    )
    p_x.add_argument(
        "--link-bw", type=float, default=1.0, dest="link_bw",
        metavar="B",
        help=(
            "EPR pairs per teleport round per interconnect link "
            "(default 1)"
        ),
    )
    p_x.add_argument(
        "--link-epr-rate", default=None, metavar="R",
        dest="link_epr_rate",
        help=(
            "interconnect EPR generation rate per link in "
            "pairs/cycle, or 'inf' (default: the --epr-rate value)"
        ),
    )
    p_x.add_argument(
        "--no-preflight", action="store_true",
        help=(
            "skip the replay preflight (by default QL3xx violations "
            "refuse execution with exit code 4)"
        ),
    )
    p_x.add_argument(
        "--trace", default=None, metavar="FILE",
        help=(
            "write a Chrome trace-event file (chrome://tracing / "
            "Perfetto)"
        ),
    )
    p_x.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_x.add_argument(
        "--stream", default=None, metavar="FILE",
        help=(
            "execute a repro.schedule-stream export epoch-at-a-time "
            "(bounded memory; replaces the source argument)"
        ),
    )
    p_x.add_argument(
        "--sample-every", type=int, default=1, metavar="N",
        help=(
            "with --stream --trace: record every Nth gate/move trace "
            "event; stalls and faults are always recorded (default 1)"
        ),
    )
    p_x.set_defaults(fn=_cmd_execute)

    p_pt = sub.add_parser(
        "partition",
        help="partition a program's qubits over a multi-core machine",
    )
    p_pt.add_argument("source", help="benchmark key or QASM file")
    p_pt.add_argument(
        "-k", type=int, default=4, help="SIMD regions per core"
    )
    p_pt.add_argument(
        "-d", type=int, default=None,
        help="qubits per region (default unbounded)",
    )
    p_pt.add_argument(
        "--scheduler", choices=("sequential", "rcp", "lpfs"),
        default="lpfs",
    )
    p_pt.add_argument(
        "--topology", default="all-to-all", metavar="NAME",
        help=(
            "interconnect topology: line, ring, mesh, all-to-all "
            "(default all-to-all)"
        ),
    )
    p_pt.add_argument(
        "--cores", type=int, default=2,
        help="core count (default 2)",
    )
    p_pt.add_argument(
        "--link-bw", type=float, default=1.0, dest="link_bw",
        metavar="B",
        help=(
            "EPR pairs per teleport round per interconnect link "
            "(default 1)"
        ),
    )
    p_pt.add_argument(
        "--fth", type=int, default=None,
        help="flattening threshold in ops (default: per-benchmark)",
    )
    p_pt.add_argument(
        "--seed", type=int, default=0,
        help="partitioner determinism seed (default 0)",
    )
    p_pt.add_argument(
        "--no-refine", action="store_true",
        help="skip the local-search refinement pass (greedy only)",
    )
    p_pt.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default text)",
    )
    p_pt.set_defaults(fn=_cmd_partition)

    p_s = sub.add_parser(
        "serve",
        help="run the compile daemon (HTTP/JSON on asyncio)",
    )
    p_s.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    p_s.add_argument(
        "--port", type=int, default=8787,
        help="bind port; 0 picks an ephemeral port (default 8787)",
    )
    p_s.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="warm worker processes (default 2)",
    )
    p_s.add_argument(
        "--queue-depth", type=int, default=64, metavar="N",
        help=(
            "max admitted-but-unfinished jobs before new work gets "
            "429 (default 64)"
        ),
    )
    p_s.add_argument(
        "--rate", type=float, default=None, metavar="R",
        help=(
            "per-tenant admission rate in requests/second "
            "(default unlimited)"
        ),
    )
    p_s.add_argument(
        "--burst", type=float, default=None, metavar="B",
        help="per-tenant burst size (default max(1, 2*rate))",
    )
    p_s.add_argument(
        "--job-timeout", type=float, default=None, metavar="S",
        help=(
            "per-job wall-clock limit; the worker is recycled on "
            "breach (default none)"
        ),
    )
    p_s.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=(
            "artifact store directory (default $REPRO_CACHE_DIR or "
            "./.repro-cache)"
        ),
    )
    p_s.add_argument(
        "--no-cache", action="store_true",
        help="compute every request fresh (coalescing still applies)",
    )
    p_s.add_argument(
        "--drain-grace", type=float, default=30.0, metavar="S",
        help=(
            "seconds to let in-flight jobs finish on SIGTERM "
            "(default 30)"
        ),
    )
    p_s.add_argument(
        "--allow-delay", action="store_true",
        help=(
            "honor the 'delay_s' request field (testing hook; keep "
            "off in production)"
        ),
    )
    p_s.add_argument(
        "--stats-file", default=None, metavar="FILE",
        help="also write the final stats snapshot to this path",
    )
    p_s.set_defaults(fn=_cmd_serve)

    p_lt = sub.add_parser(
        "loadtest",
        help="drive concurrent clients against the compile daemon",
    )
    p_lt.add_argument(
        "--host", default="127.0.0.1", help="daemon address"
    )
    p_lt.add_argument(
        "--port", type=int, default=8787, help="daemon port"
    )
    p_lt.add_argument(
        "--spawn", action="store_true",
        help=(
            "spawn a daemon on an ephemeral port for the duration of "
            "the test (ignores --host/--port)"
        ),
    )
    p_lt.add_argument(
        "--term-during-load", action="store_true",
        help=(
            "with --spawn: SIGTERM the daemon while requests are in "
            "flight and verify the drain completes them (exit 1 on "
            "drops or a non-zero daemon exit)"
        ),
    )
    p_lt.add_argument(
        "--clients", type=int, default=8, metavar="N",
        help="concurrent client coroutines (default 8)",
    )
    p_lt.add_argument(
        "--storm", type=int, default=32, metavar="N",
        help="identical requests per round (default 32)",
    )
    p_lt.add_argument(
        "--distinct", type=int, default=8, metavar="N",
        help="distinct requests per round (default 8)",
    )
    p_lt.add_argument(
        "--rounds", type=int, default=1, metavar="N",
        help="rounds of the mix (default 1)",
    )
    p_lt.add_argument(
        "--benchmark", default="BF",
        help="storm benchmark key (default BF)",
    )
    p_lt.add_argument(
        "-k", type=int, default=4, help="storm SIMD regions"
    )
    p_lt.add_argument(
        "--scheduler", choices=("sequential", "rcp", "lpfs"),
        default="lpfs",
    )
    p_lt.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker count for the spawned daemon (default 2)",
    )
    p_lt.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory for the spawned daemon",
    )
    p_lt.add_argument(
        "--no-cache", action="store_true",
        help="spawn the daemon with caching off",
    )
    p_lt.add_argument(
        "--tenant", default=None,
        help="X-Tenant header value for every request",
    )
    p_lt.add_argument(
        "--timeout", type=float, default=120.0, metavar="S",
        help="per-request client timeout (default 120)",
    )
    p_lt.add_argument(
        "-o", "--output", default="BENCH_service.json",
        help=(
            "service report path (default BENCH_service.json; '' to "
            "skip)"
        ),
    )
    p_lt.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stdout format (default text)",
    )
    p_lt.set_defaults(fn=_cmd_loadtest)

    p_cs = sub.add_parser(
        "cache-stats",
        help="inspect the content-addressed artifact store",
    )
    p_cs.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=(
            "store directory (default $REPRO_CACHE_DIR or "
            "./.repro-cache)"
        ),
    )
    p_cs.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default text)",
    )
    p_cs.set_defaults(fn=_cmd_cache_stats)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code
    except (
        ScaffoldSyntaxError, QasmSyntaxError, ProgramValidationError
    ) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_PARSE
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_LINT
    except (ScheduleError, ReplayError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_SCHEDULE


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
