"""Fast-path / reference-pipeline switch for the compile→schedule stack.

The scheduler hot paths (DAG construction, RCP, LPFS, movement
derivation, coarse scheduling) each ship in two implementations:

* the **fast path** — the algorithmically optimized default (per-qubit
  last-writer maps, bucketed lazy-deletion ready sets, batched
  width profiling, resident-set eviction scans);
* the **reference pipeline** — the straightforward pre-optimization
  code, kept verbatim in :mod:`repro.sched._reference`.

Both produce *bit-identical* schedules; the differential battery in
``tests/test_differential.py`` enforces that, and the ``perf`` harness
(:mod:`repro.service.perf`) measures the speedup between them.

The switch is deliberately dumb: one module-level boolean, checked once
per schedule/derive call (never per node). It can be flipped three
ways:

* :func:`reference_pipeline` — a context manager, for tests and
  in-process measurement;
* :func:`set_fast_path` — a process-wide toggle;
* the ``REPRO_FASTPATH=0`` environment variable — for subprocesses
  (sweep workers inherit the environment, not the interpreter state).

This is a leaf module (no repro imports) so every pipeline stage can
import it without cycles.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "fast_path_enabled",
    "set_fast_path",
    "reference_pipeline",
]

_ENABLED: bool = os.environ.get("REPRO_FASTPATH", "1") != "0"


def fast_path_enabled() -> bool:
    """True when the optimized implementations are active."""
    return _ENABLED


def set_fast_path(enabled: bool) -> bool:
    """Set the process-wide switch; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def reference_pipeline() -> Iterator[None]:
    """Run the enclosed block on the pre-optimization reference
    implementations (restores the previous state on exit)."""
    previous = set_fast_path(False)
    try:
        yield
    finally:
        set_fast_path(previous)
