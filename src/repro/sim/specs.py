"""Registered semantic specs for reversible arithmetic kernels.

A *spec* names what a kernel is supposed to compute — the Cuccaro adder
is ``(a, b, cin) -> (a, a+b+cin mod 2^n, cin, cout ^ carry)`` — as a
pure-python reference function, plus how to find that kernel inside a
program: which module holds it, which formal registers are the
operands, and how many times the entry point applies it
(``iterations``-heavy call sites are the paper's scale mechanism, so a
10^5-gate ``scale:adder`` leaf is one ~100-op kernel applied ~10^3
times — the reference composes the iteration count in closed form
rather than looping).

Binding is structural: a spec matches a module by the *shape* of its
formal parameter registers (grouped by register name in declaration
order), so it binds equally to the synthetic ``scale:adder`` program,
to :func:`build_kernel_program`'s CTQG wrappers, and to any user QASM
that declares the same register shape. Qubits that are not operands
(ancillas) must return to 0 on every input — the binding carries them
in ``clean`` and :func:`repro.sim.reversible.verify_reference` enforces
the restoration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..core.module import Module, Program
from ..core.qubits import AncillaAllocator, Qubit, QubitRegister
from ..passes.ctqg import compare_lt, cuccaro_add, multiply
from ..passes.stream import call_multiplicity

__all__ = [
    "SPEC_NAMES",
    "SpecBinding",
    "SpecError",
    "bind_spec",
    "build_kernel_program",
]


class SpecError(ValueError):
    """No module matches the spec's shape, or the match is ambiguous."""


@dataclass(frozen=True)
class SpecBinding:
    """A spec resolved against a concrete program."""

    name: str
    module: str
    iterations: int
    inputs: Tuple[Qubit, ...]
    outputs: Tuple[Qubit, ...]
    qubits: Tuple[Qubit, ...]
    clean: Tuple[Qubit, ...]
    reference: Callable[[int], int]
    description: str


def _registers(mod: Module) -> List[Tuple[str, List[Qubit]]]:
    """Formal parameters grouped by register name, declaration order."""
    groups: Dict[str, List[Qubit]] = {}
    order: List[str] = []
    for q in mod.params:
        if q.register not in groups:
            groups[q.register] = []
            order.append(q.register)
        groups[q.register].append(q)
    return [(name, groups[name]) for name in order]


def _ancillas(mod: Module) -> Tuple[Qubit, ...]:
    """Body qubits that are not formal parameters (always start 0; must
    be restored to 0)."""
    params = set(mod.params)
    return tuple(q for q in mod.qubits() if q not in params)


# -- shape matchers ---------------------------------------------------------


def _match_adder(mod: Module) -> bool:
    regs = _registers(mod)
    if len(regs) != 3:
        return False
    (_, a), (_, b), (_, c) = regs
    return len(a) == len(b) >= 1 and len(c) in (1, 2)


def _match_compare(mod: Module) -> bool:
    regs = _registers(mod)
    if len(regs) != 4:
        return False
    (_, a), (_, b), (_, flag), (_, anc) = regs
    return len(a) == len(b) >= 1 and len(flag) == 1 and len(anc) == 1


def _match_multiply(mod: Module) -> bool:
    regs = _registers(mod)
    if len(regs) != 3:
        return False
    (_, a), (_, b), (_, p) = regs
    return len(a) >= 1 and len(b) >= 1 and len(p) >= len(b)


# -- binders ----------------------------------------------------------------


def _bind_adder(mod: Module, iterations: int) -> SpecBinding:
    (_, a), (_, b), (_, c) = _registers(mod)
    n = len(a)
    mask = (1 << n) - 1
    has_cout = len(c) == 2
    inputs = tuple(a) + tuple(b) + (c[0],)
    outputs = inputs + ((c[1],) if has_cout else ())
    m = iterations

    def reference(x: int) -> int:
        av = x & mask
        bv = (x >> n) & mask
        cin = (x >> (2 * n)) & 1
        # b evolves affinely: each application adds (a + cin) mod 2^n,
        # and the XOR-accumulated carry-out is the parity of the total
        # overflow count — both closed-form in the iteration count.
        total = bv + m * (av + cin)
        out = av | ((total & mask) << n) | (cin << (2 * n))
        if has_cout:
            out |= ((total >> n) & 1) << (2 * n + 1)
        return out

    word = "application" if m == 1 else "applications"
    return SpecBinding(
        name="adder",
        module=mod.name,
        iterations=m,
        inputs=inputs,
        outputs=outputs,
        qubits=tuple(mod.qubits()),
        clean=_ancillas(mod),
        reference=reference,
        description=(
            f"{m} {word} of a {n}-bit ripple-carry adder: "
            f"b += a + cin (mod 2^{n})"
            + (", cout ^= carry" if has_cout else "")
        ),
    )


def _bind_compare(mod: Module, iterations: int) -> SpecBinding:
    (_, a), (_, b), (_, flag), (_, anc) = _registers(mod)
    n = len(a)
    mask = (1 << n) - 1
    inputs = tuple(a) + tuple(b) + (flag[0],)
    m = iterations

    def reference(x: int) -> int:
        av = x & mask
        bv = (x >> n) & mask
        f = (x >> (2 * n)) & 1
        if (m & 1) and av < bv:
            f ^= 1
        return av | (bv << n) | (f << (2 * n))

    return SpecBinding(
        name="compare",
        module=mod.name,
        iterations=m,
        inputs=inputs,
        outputs=inputs,
        qubits=tuple(mod.qubits()),
        clean=tuple(anc) + _ancillas(mod),
        reference=reference,
        description=(
            f"{m} application(s) of a {n}-bit comparator: flag ^= (a < b)"
        ),
    )


def _bind_multiply(mod: Module, iterations: int) -> SpecBinding:
    (_, a), (_, b), (_, p) = _registers(mod)
    na, nb, np_ = len(a), len(b), len(p)
    mask_a = (1 << na) - 1
    mask_b = (1 << nb) - 1
    mask_p = (1 << np_) - 1
    inputs = tuple(a) + tuple(b) + tuple(p)
    m = iterations

    def reference(x: int) -> int:
        av = x & mask_a
        bv = (x >> na) & mask_b
        pv = (x >> (na + nb)) & mask_p
        pv = (pv + m * av * bv) & mask_p
        return av | (bv << na) | (pv << (na + nb))

    return SpecBinding(
        name="multiply",
        module=mod.name,
        iterations=m,
        inputs=inputs,
        outputs=inputs,
        qubits=tuple(mod.qubits()),
        clean=_ancillas(mod),
        reference=reference,
        description=(
            f"{m} application(s) of a {na}x{nb}-bit multiplier: "
            f"product += a*b (mod 2^{np_})"
        ),
    )


@dataclass(frozen=True)
class _SpecKind:
    name: str
    preferred: Tuple[str, ...]
    matches: Callable[[Module], bool]
    bind: Callable[[Module, int], SpecBinding]


_KINDS: Dict[str, _SpecKind] = {
    kind.name: kind
    for kind in (
        _SpecKind(
            "adder", ("add", "adder", "cuccaro"), _match_adder, _bind_adder
        ),
        _SpecKind(
            "compare",
            ("compare", "cmp", "compare_lt"),
            _match_compare,
            _bind_compare,
        ),
        _SpecKind(
            "multiply",
            ("multiply", "mul", "mult"),
            _match_multiply,
            _bind_multiply,
        ),
    )
}

SPEC_NAMES: Tuple[str, ...] = tuple(_KINDS)


def _resolve_module(
    kind: _SpecKind, program: Program, module: Optional[str]
) -> Module:
    if module is not None:
        if module not in program:
            raise SpecError(f"no module named {module!r} in program")
        mod = program.module(module)
        if not kind.matches(mod):
            regs = ", ".join(
                f"{name}({len(qs)})" for name, qs in _registers(mod)
            )
            raise SpecError(
                f"module {module!r} (registers {regs or 'none'}) does not "
                f"have the {kind.name} spec's register shape"
            )
        return mod
    candidates = [m for m in program if kind.matches(m)]
    for name in kind.preferred:
        for m in candidates:
            if m.name == name:
                return m
    if len(candidates) == 1:
        return candidates[0]
    if not candidates:
        raise SpecError(
            f"no module in the program matches the {kind.name} spec's "
            f"register shape"
        )
    names = ", ".join(sorted(m.name for m in candidates))
    raise SpecError(
        f"ambiguous {kind.name} spec: modules {names} all match; "
        f"pick one with --module"
    )


def bind_spec(
    name: str,
    program: Program,
    module: Optional[str] = None,
    iterations: Optional[int] = None,
) -> SpecBinding:
    """Resolve spec ``name`` against ``program``.

    ``module`` forces the kernel module (default: a preferred name,
    then a unique shape match). ``iterations`` overrides how many times
    the kernel is taken to apply (default: the entry point's total call
    multiplicity of that module — 1 when the module *is* the entry).
    """
    kind = _KINDS.get(name)
    if kind is None:
        raise SpecError(
            f"unknown spec {name!r} (choose from {', '.join(SPEC_NAMES)})"
        )
    mod = _resolve_module(kind, program, module)
    if iterations is None:
        iterations = call_multiplicity(program, mod.name)
        if iterations == 0:
            raise SpecError(
                f"module {mod.name!r} is not reachable from the entry "
                f"point; pass iterations explicitly"
            )
    if iterations < 1:
        raise SpecError(f"iterations must be >= 1, got {iterations}")
    return kind.bind(mod, iterations)


def build_kernel_program(kind: str, width: int) -> Program:
    """A single-leaf program wrapping one CTQG kernel at ``width`` —
    the reversible verification registry used by the stream-replay
    battery and the exhaustive arithmetic tests.

    The leaf *is* the entry (iterations = 1) and its registers carry
    the spec's canonical names, so ``bind_spec(kind, program)`` always
    resolves.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if kind == "adder":
        a = QubitRegister("a", width)
        b = QubitRegister("b", width)
        carry = QubitRegister("carry", 2)
        body = cuccaro_add(list(a), list(b), carry[0], carry[1])
        mod = Module(
            "add", params=tuple(a) + tuple(b) + tuple(carry), body=list(body)
        )
        return Program([mod], entry="add")
    if kind == "compare":
        a = QubitRegister("a", width)
        b = QubitRegister("b", width)
        flag = QubitRegister("flag", 1)
        anc = QubitRegister("anc", 1)
        body = compare_lt(list(a), list(b), flag[0], anc[0])
        mod = Module(
            "compare",
            params=tuple(a) + tuple(b) + tuple(flag) + tuple(anc),
            body=list(body),
        )
        return Program([mod], entry="compare")
    if kind == "multiply":
        a = QubitRegister("a", width)
        b = QubitRegister("b", width)
        product = QubitRegister("product", 2 * width)
        alloc = AncillaAllocator()
        body = multiply(list(a), list(b), list(product), alloc)
        mod = Module(
            "multiply",
            params=tuple(a) + tuple(b) + tuple(product),
            body=list(body),
        )
        return Program([mod], entry="multiply")
    raise ValueError(
        f"unknown kernel kind {kind!r} (choose from {', '.join(SPEC_NAMES)})"
    )
