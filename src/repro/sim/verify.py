"""Verification helpers built on the statevector simulator.

Used throughout the test suite to prove that the decomposition pass and
the CTQG arithmetic library implement exactly what they claim.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..core.operation import Operation
from ..core.qubits import Qubit
from .statevector import Simulator, circuit_unitary

__all__ = [
    "equivalent_up_to_global_phase",
    "circuits_equivalent",
    "truth_table",
    "check_permutation",
]


def equivalent_up_to_global_phase(
    u: np.ndarray, v: np.ndarray, atol: float = 1e-9
) -> bool:
    """True if ``u = exp(i*phi) * v`` for some global phase ``phi``."""
    if u.shape != v.shape:
        return False
    # Find the largest-magnitude entry of v to anchor the phase.
    idx = np.unravel_index(np.argmax(np.abs(v)), v.shape)
    if abs(v[idx]) < atol:
        return bool(np.allclose(u, v, atol=atol))
    phase = u[idx] / v[idx]
    if abs(abs(phase) - 1.0) > atol:
        return False
    return bool(np.allclose(u, phase * v, atol=atol))


def circuits_equivalent(
    ops_a: Sequence[Operation],
    ops_b: Sequence[Operation],
    qubits: Sequence[Qubit],
    atol: float = 1e-9,
) -> bool:
    """True if two circuits over the same qubits implement the same
    unitary up to global phase."""
    ua = circuit_unitary(ops_a, qubits)
    ub = circuit_unitary(ops_b, qubits)
    return equivalent_up_to_global_phase(ua, ub, atol=atol)


def _check_backend(backend: str) -> None:
    if backend not in ("statevector", "reversible"):
        raise ValueError(
            f"backend must be 'statevector' or 'reversible', "
            f"got {backend!r}"
        )


def truth_table(
    ops: Sequence[Operation],
    inputs: Sequence[Qubit],
    outputs: Sequence[Qubit],
    all_qubits: Optional[Sequence[Qubit]] = None,
    backend: str = "statevector",
) -> Dict[int, int]:
    """Classical truth table of a reversible circuit.

    For each assignment of ``inputs`` (other qubits start at 0), runs the
    circuit and reads ``outputs``; raises if any run leaves the register
    in a non-basis state (i.e. the circuit is not classical on these
    inputs).

    ``backend="reversible"`` computes the identical table through the
    bit-sliced simulator (:mod:`repro.sim.reversible`) — exact at any
    width and orders of magnitude faster, but restricted to the
    classical-permutation gate subset (phase-diagonal gates are
    tolerated; H/Rx/Ry raise
    :class:`~repro.sim.reversible.NonReversibleOpError` where the
    statevector backend would have raised on the non-basis state).

    Returns:
        mapping ``input_bits -> output_bits`` with inputs/outputs packed
        little-endian in the order given.
    """
    _check_backend(backend)
    if backend == "reversible":
        from .reversible import truth_table_reversible

        return truth_table_reversible(ops, inputs, outputs, all_qubits)
    if all_qubits is None:
        seen: Dict[Qubit, None] = {}
        for op in ops:
            for q in op.qubits:
                seen.setdefault(q)
        for q in list(inputs) + list(outputs):
            seen.setdefault(q)
        all_qubits = list(seen)
    table: Dict[int, int] = {}
    for value in range(2 ** len(inputs)):
        sim = Simulator(all_qubits)
        sim.set_bits(
            {q: (value >> i) & 1 for i, q in enumerate(inputs)}
        )
        sim.run(ops)
        state = sim.basis_state()
        out = 0
        for i, q in enumerate(outputs):
            out |= ((state >> sim.index[q]) & 1) << i
        table[value] = out
    return table


def check_permutation(
    ops: Sequence[Operation],
    qubits: Sequence[Qubit],
    perm: Callable[[int], int],
    backend: str = "statevector",
) -> bool:
    """True if the circuit maps every basis state ``|j>`` to
    ``|perm(j)>`` (up to per-state phase).

    ``backend="reversible"`` runs the same check on the bit-sliced
    simulator — identical verdicts on the reversible+phase gate subset,
    and ``False`` (rather than an exception) when the circuit leaves
    that subset, matching the statevector backend's non-basis-state
    verdict.
    """
    _check_backend(backend)
    if backend == "reversible":
        from .reversible import check_permutation_reversible

        return check_permutation_reversible(ops, qubits, perm)
    for j in range(2 ** len(qubits)):
        sim = Simulator(qubits)
        sim.reset(j)
        sim.run(ops)
        try:
            got = sim.basis_state()
        except ValueError:
            return False
        if got != perm(j):
            return False
    return True
