"""Small dense statevector simulator used to verify the toolflow's
decomposition and arithmetic substrates."""

from .compile_check import CompilationCheckError, verify_compilation
from .statevector import Simulator, circuit_unitary, gate_matrix
from .verify import (
    check_permutation,
    circuits_equivalent,
    equivalent_up_to_global_phase,
    truth_table,
)

__all__ = [
    "CompilationCheckError",
    "Simulator",
    "check_permutation",
    "circuit_unitary",
    "circuits_equivalent",
    "equivalent_up_to_global_phase",
    "gate_matrix",
    "truth_table",
    "verify_compilation",
]
