"""Simulators used to verify the toolflow: a small dense statevector
simulator (exact quantum semantics, ~10 qubits) and a bit-sliced
reversible simulator (classical permutation semantics, paper scale)."""

from .compile_check import CompilationCheckError, verify_compilation
from .reversible import (
    CounterExample,
    NonReversibleOpError,
    ReversibleSimulator,
    SlicedState,
    VerificationError,
    VerifyReport,
    check_permutation_reversible,
    classify_gate,
    truth_table_reversible,
    verify_equivalent,
    verify_reference,
)
from .specs import SPEC_NAMES, SpecBinding, SpecError, bind_spec
from .statevector import Simulator, circuit_unitary, gate_matrix
from .verify import (
    check_permutation,
    circuits_equivalent,
    equivalent_up_to_global_phase,
    truth_table,
)

__all__ = [
    "CompilationCheckError",
    "CounterExample",
    "NonReversibleOpError",
    "ReversibleSimulator",
    "SPEC_NAMES",
    "Simulator",
    "SlicedState",
    "SpecBinding",
    "SpecError",
    "VerificationError",
    "VerifyReport",
    "bind_spec",
    "check_permutation",
    "check_permutation_reversible",
    "circuit_unitary",
    "circuits_equivalent",
    "classify_gate",
    "equivalent_up_to_global_phase",
    "gate_matrix",
    "truth_table",
    "truth_table_reversible",
    "verify_compilation",
    "verify_equivalent",
    "verify_reference",
]
