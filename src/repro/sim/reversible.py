"""Bit-packed reversible simulation: semantic checking at paper scale.

The statevector simulator (:mod:`repro.sim.statevector`) verifies the
toolflow exactly but caps out near 22 qubits — far short of the
10^5..10^7-gate CTQG arithmetic the streaming pipeline schedules. The
gates CTQG emits (X, CNOT, Toffoli, SWAP, Fredkin) are classical
permutations of the computational basis, so a leaf body can be executed
over *every* input with plain python integers:

* **single input** — :class:`ReversibleSimulator` packs the whole
  register file into one ``int`` (qubit ``i`` = bit ``i``, the same
  little-endian convention as :meth:`Simulator.basis_state`) and applies
  each gate with a couple of shift/mask operations: O(ops), no numpy,
  no ``2^n`` anything.

* **batched** — :class:`SlicedState` *transposes* the state: one big
  int per qubit, where bit ``j`` of qubit ``i``'s vector is that
  qubit's value on input lane ``j``. A gate then acts on every lane at
  once (``CNOT`` is ``vec[t] ^= vec[c]``; ``Toffoli`` is
  ``vec[t] ^= vec[a] & vec[b]``), so sweeping all ``2^17`` inputs of a
  width-8 adder costs ~150 bigint operations, not ``2^17`` runs.

Everything else here is the verification vocabulary built on those two
engines: a gate classifier that *refuses* anything non-classical (with
the offending op located — never silently mis-simulated), exhaustive
and seeded-sample input generators, bit-identical equivalence of two op
sequences (program order vs. schedule replay), reference-function
checking against a registered spec (:mod:`repro.sim.specs`), and
minimal-counterexample extraction when a check fails.

Phase-diagonal gates (Z, S, T, CZ, CCZ, Rz, ...) fix every basis state
up to phase; they are classified separately and treated as the identity
permutation only when the caller opts in (``allow_phase``). ``Y`` acts
as X with a per-state phase and is simulated as X — the same answer
:func:`repro.sim.verify.truth_table` extracts from the statevector.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.operation import Operation
from ..core.qubits import Qubit

__all__ = [
    "REVERSIBLE_GATES",
    "PHASE_GATES",
    "DEFAULT_EXHAUSTIVE_LIMIT",
    "DEFAULT_SAMPLES",
    "classify_gate",
    "NonReversibleOpError",
    "VerificationError",
    "ReversibleSimulator",
    "SlicedState",
    "compile_ops",
    "exhaustive_patterns",
    "sliced_patterns",
    "sample_inputs",
    "CounterExample",
    "VerifyReport",
    "run_reversible",
    "truth_table_reversible",
    "check_permutation_reversible",
    "verify_equivalent",
    "verify_reference",
    "schedule_ops",
    "streamed_schedule_ops",
]

#: Gates that permute the computational basis (Y acts as X up to a
#: per-state phase and is simulated as X).
REVERSIBLE_GATES = frozenset({"X", "Y", "CNOT", "Toffoli", "SWAP", "Fredkin"})

#: Diagonal gates: identity on basis states up to phase. Simulated as
#: the identity permutation when ``allow_phase`` is set, refused
#: otherwise.
PHASE_GATES = frozenset(
    {"Z", "S", "Sdag", "T", "Tdag", "CZ", "CCZ", "Rz", "CRz"}
)

#: Sweep every input when the input register is at most this many bits
#: (2^18 lanes = 32 KiB per qubit vector); sample above it.
DEFAULT_EXHAUSTIVE_LIMIT = 18

#: Default lane count for sampled sweeps.
DEFAULT_SAMPLES = 256

# Compiled instruction opcodes (tuple[0]).
_OP_X = 0
_OP_CNOT = 1
_OP_TOFFOLI = 2
_OP_SWAP = 3
_OP_FREDKIN = 4

Instr = Tuple[int, ...]


def classify_gate(gate: str) -> str:
    """``"reversible"``, ``"phase"`` or ``"irreversible"``."""
    if gate in REVERSIBLE_GATES:
        return "reversible"
    if gate in PHASE_GATES:
        return "phase"
    return "irreversible"


class NonReversibleOpError(ValueError):
    """An op outside the classical-permutation subset was located.

    Raised *instead of* mis-simulating: H/Rx/Ry create superpositions,
    Prep/Meas are not permutations at all, and phase gates are only
    admitted when the caller explicitly opts in. ``op`` and ``index``
    pin down the offending statement.
    """

    def __init__(self, op: Operation, index: int, reason: str):
        self.op = op
        self.index = index
        self.reason = reason
        operands = ", ".join(repr(q) for q in op.qubits)
        super().__init__(
            f"op {index}: {op.gate}({operands}) is not classically "
            f"reversible ({reason})"
        )


def _refuse(op: Operation, index: int) -> NonReversibleOpError:
    kind = classify_gate(op.gate)
    if kind == "phase":
        reason = "phase-diagonal; pass allow_phase=True to treat as identity"
    else:
        reason = "not a basis-state permutation"
    return NonReversibleOpError(op, index, reason)


def compile_ops(
    ops: Iterable[Operation],
    index: Mapping[Qubit, int],
    allow_phase: bool = False,
    start: int = 0,
) -> List[Instr]:
    """Lower ops to compact instruction tuples over qubit indices.

    Phase gates compile to nothing when ``allow_phase`` is set. Raises
    :class:`NonReversibleOpError` (with the op's absolute position,
    offset by ``start``) on anything outside the subset.
    """
    out: List[Instr] = []
    for i, op in enumerate(ops):
        gate = op.gate
        q = op.qubits
        if gate == "CNOT":
            out.append((_OP_CNOT, index[q[0]], index[q[1]]))
        elif gate == "Toffoli":
            out.append((_OP_TOFFOLI, index[q[0]], index[q[1]], index[q[2]]))
        elif gate == "X" or gate == "Y":
            out.append((_OP_X, index[q[0]]))
        elif gate == "SWAP":
            out.append((_OP_SWAP, index[q[0]], index[q[1]]))
        elif gate == "Fredkin":
            out.append((_OP_FREDKIN, index[q[0]], index[q[1]], index[q[2]]))
        elif gate in PHASE_GATES:
            if not allow_phase:
                raise _refuse(op, start + i)
        else:
            raise _refuse(op, start + i)
    return out


class ReversibleSimulator:
    """Single-input engine: the register file as one packed ``int``.

    Mirrors the statevector :class:`~repro.sim.statevector.Simulator`'s
    basis conventions — ``index`` maps qubits to bit positions and
    :meth:`basis_state` packs little-endian — so the two agree verbatim
    on the shared gate subset.
    """

    def __init__(self, qubits: Sequence[Qubit]):
        self.qubits: Tuple[Qubit, ...] = tuple(qubits)
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError("duplicate qubits")
        self.index: Dict[Qubit, int] = {
            q: i for i, q in enumerate(self.qubits)
        }
        self.n = len(self.qubits)
        self.state = 0

    def reset(self, value: int = 0) -> None:
        """Set the packed state (bit ``i`` = qubit ``i``)."""
        if not 0 <= value < (1 << self.n):
            raise ValueError(f"state {value} out of range for {self.n} qubits")
        self.state = value

    def set_bits(self, bits: Mapping[Qubit, int]) -> None:
        """Force individual qubits to given classical values."""
        for q, v in bits.items():
            i = self.index[q]
            if v:
                self.state |= 1 << i
            else:
                self.state &= ~(1 << i)

    def bit(self, q: Qubit) -> int:
        return (self.state >> self.index[q]) & 1

    def basis_state(self) -> int:
        """The packed state — named for parity with the statevector
        simulator (here the state is always a basis state)."""
        return self.state

    def apply(
        self, op: Operation, allow_phase: bool = False, at: int = 0
    ) -> None:
        gate = op.gate
        q = op.qubits
        idx = self.index
        s = self.state
        if gate == "CNOT":
            s ^= ((s >> idx[q[0]]) & 1) << idx[q[1]]
        elif gate == "Toffoli":
            s ^= ((s >> idx[q[0]]) & (s >> idx[q[1]]) & 1) << idx[q[2]]
        elif gate == "X" or gate == "Y":
            s ^= 1 << idx[q[0]]
        elif gate == "SWAP":
            a, b = idx[q[0]], idx[q[1]]
            d = ((s >> a) ^ (s >> b)) & 1
            s ^= (d << a) | (d << b)
        elif gate == "Fredkin":
            c, a, b = idx[q[0]], idx[q[1]], idx[q[2]]
            d = ((s >> a) ^ (s >> b)) & (s >> c) & 1
            s ^= (d << a) | (d << b)
        elif gate in PHASE_GATES:
            if not allow_phase:
                raise _refuse(op, at)
        else:
            raise _refuse(op, at)
        self.state = s

    def run(self, ops: Iterable[Operation], allow_phase: bool = False) -> int:
        """Apply ``ops`` in order; returns the number of ops applied."""
        count = 0
        for op in ops:
            self.apply(op, allow_phase=allow_phase, at=count)
            count += 1
        return count


def exhaustive_patterns(bits: int) -> List[int]:
    """The ``2^bits``-lane input vectors of an exhaustive sweep.

    Pattern ``i`` has bit ``j`` set iff input value ``j`` has bit ``i``
    set — i.e. lane ``j`` *is* the input ``j``. Built in closed form
    (alternating runs of ``2^i`` zeros and ones), not by looping lanes.
    """
    lanes = 1 << bits
    ones = (1 << lanes) - 1
    out: List[int] = []
    for i in range(bits):
        run = 1 << i
        block = ((1 << run) - 1) << run
        if 2 * run >= lanes:
            out.append(block & ones)
        else:
            out.append(block * (ones // ((1 << (2 * run)) - 1)))
    return out


def sliced_patterns(values: Sequence[int], bits: int) -> List[int]:
    """Transpose explicit input ``values`` into per-bit lane vectors:
    pattern ``i`` has bit ``j`` set iff ``values[j]`` has bit ``i``."""
    pats = [0] * bits
    mask = (1 << bits) - 1
    for lane, value in enumerate(values):
        rem = value & mask
        lane_bit = 1 << lane
        while rem:
            low = rem & -rem
            pats[low.bit_length() - 1] |= lane_bit
            rem ^= low
    return pats


def sample_inputs(bits: int, count: int, seed: int = 0) -> List[int]:
    """Deterministic sample of ``count`` distinct ``bits``-bit values.

    Corner cases first (0, 1, all-ones, alternating masks, top bit),
    then seeded pseudo-random fill — so lane 0 of a sampled sweep is
    always the all-zeros input and a counterexample at a corner prints
    the simplest possible witness.
    """
    if bits <= 0:
        return [0]
    space = 1 << bits
    if count >= space:
        return list(range(space))
    full = space - 1
    alt = full // 3 if bits >= 2 else 1  # 0b0101...
    corners = [0, 1, full, alt, full ^ alt, 1 << (bits - 1)]
    out: List[int] = []
    seen: Dict[int, None] = {}
    for v in corners:
        if v not in seen:
            seen[v] = None
            out.append(v)
        if len(out) >= count:
            return out[:count]
    rng = random.Random((seed << 8) ^ bits)
    attempts = 0
    while len(out) < count and attempts < 64 * count:
        v = rng.getrandbits(bits)
        attempts += 1
        if v not in seen:
            seen[v] = None
            out.append(v)
    return out


class SlicedState:
    """Bit-sliced batch state: ``vec[i]`` holds qubit ``i`` across all
    lanes (bit ``j`` = qubit ``i``'s value on input lane ``j``)."""

    def __init__(self, qubits: Sequence[Qubit], lanes: int):
        self.qubits: Tuple[Qubit, ...] = tuple(qubits)
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError("duplicate qubits")
        self.index: Dict[Qubit, int] = {
            q: i for i, q in enumerate(self.qubits)
        }
        if lanes < 1:
            raise ValueError(f"need at least one lane, got {lanes}")
        self.lanes = lanes
        self.mask = (1 << lanes) - 1
        self.vec: List[int] = [0] * len(self.qubits)

    def load(
        self,
        inputs: Sequence[Qubit],
        values: Optional[Sequence[int]] = None,
    ) -> None:
        """Load input lanes: exhaustive over ``inputs`` when ``values``
        is None (requires ``lanes == 2**len(inputs)``), else one lane
        per explicit value. Non-input qubits stay 0."""
        bits = len(inputs)
        if values is None:
            if self.lanes != 1 << bits:
                raise ValueError(
                    f"exhaustive load over {bits} inputs needs "
                    f"{1 << bits} lanes, state has {self.lanes}"
                )
            pats = exhaustive_patterns(bits)
        else:
            if len(values) != self.lanes:
                raise ValueError(
                    f"{len(values)} values for {self.lanes} lanes"
                )
            pats = sliced_patterns(values, bits)
        for q, pat in zip(inputs, pats):
            self.vec[self.index[q]] = pat

    def apply_compiled(self, instrs: Sequence[Instr]) -> None:
        """Apply pre-compiled instructions to every lane at once."""
        vec = self.vec
        mask = self.mask
        for ins in instrs:
            code = ins[0]
            if code == _OP_CNOT:
                vec[ins[2]] ^= vec[ins[1]]
            elif code == _OP_TOFFOLI:
                vec[ins[3]] ^= vec[ins[1]] & vec[ins[2]]
            elif code == _OP_X:
                vec[ins[1]] ^= mask
            elif code == _OP_SWAP:
                a, b = ins[1], ins[2]
                vec[a], vec[b] = vec[b], vec[a]
            else:  # _OP_FREDKIN
                c, a, b = ins[1], ins[2], ins[3]
                d = (vec[a] ^ vec[b]) & vec[c]
                vec[a] ^= d
                vec[b] ^= d

    def run(
        self,
        ops: Iterable[Operation],
        allow_phase: bool = False,
        at: int = 0,
    ) -> int:
        """Stream ops through all lanes in one pass (no instruction
        list is materialized). Returns the number of ops consumed."""
        idx = self.index
        vec = self.vec
        mask = self.mask
        count = 0
        for op in ops:
            gate = op.gate
            q = op.qubits
            if gate == "CNOT":
                vec[idx[q[1]]] ^= vec[idx[q[0]]]
            elif gate == "Toffoli":
                vec[idx[q[2]]] ^= vec[idx[q[0]]] & vec[idx[q[1]]]
            elif gate == "X" or gate == "Y":
                vec[idx[q[0]]] ^= mask
            elif gate == "SWAP":
                a, b = idx[q[0]], idx[q[1]]
                vec[a], vec[b] = vec[b], vec[a]
            elif gate == "Fredkin":
                c, a, b = idx[q[0]], idx[q[1]], idx[q[2]]
                d = (vec[a] ^ vec[b]) & vec[c]
                vec[a] ^= d
                vec[b] ^= d
            elif gate in PHASE_GATES:
                if not allow_phase:
                    raise _refuse(op, at + count)
            else:
                raise _refuse(op, at + count)
            count += 1
        return count

    def extract(self, lane: int, outputs: Sequence[Qubit]) -> int:
        """Pack ``outputs`` (little-endian) for one lane."""
        out = 0
        idx = self.index
        vec = self.vec
        for i, q in enumerate(outputs):
            out |= ((vec[idx[q]] >> lane) & 1) << i
        return out

    def output_vectors(self, outputs: Sequence[Qubit]) -> List[int]:
        return [self.vec[self.index[q]] for q in outputs]


@dataclass(frozen=True)
class CounterExample:
    """The smallest-lane input on which two executions disagree."""

    lane: int
    input_value: int
    expected: int
    got: int
    inputs: Tuple[Qubit, ...]
    outputs: Tuple[Qubit, ...]

    def _format(self, qubits: Tuple[Qubit, ...], packed: int) -> str:
        groups: Dict[str, List[int]] = {}
        order: List[str] = []
        for i, q in enumerate(qubits):
            if q.register not in groups:
                groups[q.register] = []
                order.append(q.register)
            groups[q.register].append((packed >> i) & 1)
        parts = []
        for name in order:
            bits = groups[name]
            value = sum(b << i for i, b in enumerate(bits))
            parts.append(f"{name}={value}")
        return " ".join(parts)

    def describe(self) -> str:
        return (
            f"input {self.input_value} "
            f"({self._format(self.inputs, self.input_value)}): "
            f"expected {self._format(self.outputs, self.expected)}, "
            f"got {self._format(self.outputs, self.got)}"
        )


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of one sweep: what was checked and how hard."""

    ok: bool
    mode: str  # "exhaustive" | "sampled"
    input_bits: int
    lanes: int
    ops: int
    label: str = ""
    counterexample: Optional[CounterExample] = None

    def summary(self) -> str:
        scope = (
            f"all {self.lanes} inputs"
            if self.mode == "exhaustive"
            else f"{self.lanes} sampled inputs"
        )
        head = f"{self.label or 'circuit'}: {self.ops} ops over {scope}"
        if self.ok:
            return f"{head}: OK"
        assert self.counterexample is not None
        return f"{head}: MISMATCH at {self.counterexample.describe()}"


class VerificationError(Exception):
    """A semantic check failed: the report carries the counterexample."""

    def __init__(self, module: str, report: VerifyReport):
        self.module = module
        self.report = report
        super().__init__(f"verification failed for {module!r}: "
                         f"{report.summary()}")


def _plan_lanes(
    input_bits: int,
    mode: str,
    exhaustive_limit: int,
    samples: int,
    seed: int,
) -> Tuple[str, Optional[List[int]]]:
    """Resolve sweep mode: ``(mode, values)`` with ``values=None`` for
    an exhaustive sweep."""
    if mode == "auto":
        mode = (
            "exhaustive" if input_bits <= exhaustive_limit else "sampled"
        )
    if mode == "exhaustive":
        return "exhaustive", None
    if mode != "sampled":
        raise ValueError(
            f"mode must be 'auto', 'exhaustive' or 'sampled', got {mode!r}"
        )
    return "sampled", sample_inputs(input_bits, samples, seed=seed)


def _first_mismatch(
    got: Sequence[int], expected: Sequence[int]
) -> Optional[int]:
    """Lowest lane where any output vector differs (the *minimal*
    counterexample: lane order is input order in exhaustive sweeps and
    corners-first in sampled ones)."""
    diff = 0
    for g, e in zip(got, expected):
        diff |= g ^ e
    if not diff:
        return None
    return (diff & -diff).bit_length() - 1


def verify_equivalent(
    ops_a: Iterable[Operation],
    ops_b: Iterable[Operation],
    qubits: Sequence[Qubit],
    inputs: Optional[Sequence[Qubit]] = None,
    mode: str = "auto",
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT,
    samples: int = DEFAULT_SAMPLES,
    seed: int = 0,
    allow_phase: bool = False,
    label: str = "",
) -> VerifyReport:
    """Prove two op sequences act identically on the computational
    basis — the schedule-replay check: ``ops_a`` in program order vs.
    ``ops_b`` in schedule-linearized order, bit-identical on every lane.

    Both sequences are consumed exactly once (streaming; 10^6-op
    iterables are fine). ``inputs`` defaults to *all* qubits.
    """
    qubits = tuple(qubits)
    if inputs is None:
        inputs = qubits
    run_mode, values = _plan_lanes(
        len(inputs), mode, exhaustive_limit, samples, seed
    )
    lanes = (1 << len(inputs)) if values is None else len(values)
    state_a = SlicedState(qubits, lanes)
    state_a.load(inputs, values)
    state_b = SlicedState(qubits, lanes)
    state_b.load(inputs, values)
    count_a = state_a.run(ops_a, allow_phase=allow_phase)
    count_b = state_b.run(ops_b, allow_phase=allow_phase)
    lane = _first_mismatch(state_b.vec, state_a.vec)
    if lane is None:
        return VerifyReport(
            True, run_mode, len(inputs), lanes, max(count_a, count_b),
            label=label,
        )
    input_value = lane if values is None else values[lane]
    cex = CounterExample(
        lane=lane,
        input_value=input_value,
        expected=state_a.extract(lane, qubits),
        got=state_b.extract(lane, qubits),
        inputs=tuple(inputs),
        outputs=qubits,
    )
    return VerifyReport(
        False, run_mode, len(inputs), lanes, max(count_a, count_b),
        label=label, counterexample=cex,
    )


def verify_reference(
    run_circuit: Callable[[SlicedState], int],
    qubits: Sequence[Qubit],
    inputs: Sequence[Qubit],
    outputs: Sequence[Qubit],
    reference: Callable[[int], int],
    clean: Sequence[Qubit] = (),
    mode: str = "auto",
    exhaustive_limit: int = DEFAULT_EXHAUSTIVE_LIMIT,
    samples: int = DEFAULT_SAMPLES,
    seed: int = 0,
    label: str = "",
) -> VerifyReport:
    """Check a circuit against a pure-python reference function.

    ``run_circuit`` applies the circuit to a loaded :class:`SlicedState`
    and returns the op count (so callers can pre-compile a kernel once
    and apply it ``iterations`` times). ``reference`` maps a packed
    input (little-endian over ``inputs``) to the packed expected output
    (little-endian over ``outputs``). Qubits in ``clean`` must return
    to 0 on every lane — the ancilla-restored check.
    """
    run_mode, values = _plan_lanes(
        len(inputs), mode, exhaustive_limit, samples, seed
    )
    lanes = (1 << len(inputs)) if values is None else len(values)
    state = SlicedState(qubits, lanes)
    state.load(inputs, values)
    count = run_circuit(state)

    lane_values: Iterable[int] = range(lanes) if values is None else values
    expected_outs = [reference(v) for v in lane_values]
    expected = sliced_patterns(expected_outs, len(outputs))
    got = state.output_vectors(outputs)
    lane = _first_mismatch(got, expected)
    if lane is None and clean:
        dirty = 0
        for q in clean:
            dirty |= state.vec[state.index[q]]
        if dirty:
            lane = (dirty & -dirty).bit_length() - 1
    if lane is None:
        return VerifyReport(
            True, run_mode, len(inputs), lanes, count, label=label
        )
    input_value = lane if values is None else values[lane]
    cex = CounterExample(
        lane=lane,
        input_value=input_value,
        expected=expected_outs[lane],
        got=state.extract(lane, outputs),
        inputs=tuple(inputs),
        outputs=tuple(outputs),
    )
    return VerifyReport(
        False, run_mode, len(inputs), lanes, count,
        label=label, counterexample=cex,
    )


def run_reversible(
    ops: Iterable[Operation],
    qubits: Sequence[Qubit],
    value: int = 0,
    allow_phase: bool = False,
) -> int:
    """One-shot single-input execution: pack, run, return the packed
    final state."""
    sim = ReversibleSimulator(qubits)
    sim.reset(value)
    sim.run(ops, allow_phase=allow_phase)
    return sim.state


def truth_table_reversible(
    ops: Sequence[Operation],
    inputs: Sequence[Qubit],
    outputs: Sequence[Qubit],
    all_qubits: Optional[Sequence[Qubit]] = None,
) -> Dict[int, int]:
    """Drop-in for :func:`repro.sim.verify.truth_table` on the
    reversible backend: same packing, same qubit-collection order,
    phase gates tolerated (they cannot change a truth table)."""
    if all_qubits is None:
        seen: Dict[Qubit, None] = {}
        for op in ops:
            for q in op.qubits:
                seen.setdefault(q)
        for q in list(inputs) + list(outputs):
            seen.setdefault(q)
        all_qubits = list(seen)
    bits = len(inputs)
    state = SlicedState(all_qubits, 1 << bits)
    state.load(inputs, None)
    state.run(ops, allow_phase=True)
    out_vecs = state.output_vectors(outputs)
    table: Dict[int, int] = {}
    for lane in range(1 << bits):
        out = 0
        for i, vec in enumerate(out_vecs):
            out |= ((vec >> lane) & 1) << i
        table[lane] = out
    return table


def check_permutation_reversible(
    ops: Sequence[Operation],
    qubits: Sequence[Qubit],
    perm: Callable[[int], int],
) -> bool:
    """Drop-in for :func:`repro.sim.verify.check_permutation` on the
    reversible backend (phase gates tolerated; an op outside the
    classical subset means the circuit is not this — or any —
    permutation on the inputs checked, so it returns False rather than
    raising)."""
    try:
        report = verify_reference(
            lambda state: state.run(ops, allow_phase=True),
            qubits,
            inputs=qubits,
            outputs=qubits,
            reference=perm,
            mode="exhaustive",
        )
    except NonReversibleOpError:
        return False
    return report.ok


def schedule_ops(sched: "ScheduleLike") -> Iterator[Operation]:
    """Linearize a materialized schedule into replay order: timestep-
    major, region index ascending, insertion order within a region —
    the order every consumer of :class:`~repro.sched.types.Schedule`
    walks it in."""
    for ts in sched.timesteps:
        for nodes in ts.regions:
            for node in nodes:
                yield sched.operation(node)


def streamed_schedule_ops(
    cols: "ColumnsLike", ssched: "StreamedScheduleLike"
) -> Iterator[Operation]:
    """Linearize a streamed schedule the same way (regions_at already
    yields regions in ascending order)."""
    for t in range(ssched.length):
        for _r, nodes in ssched.regions_at(t):
            for node in nodes:
                yield cols.operation(node)


class ScheduleLike:
    """Structural protocol for :func:`schedule_ops` (duck-typed to keep
    this module import-light)."""

    timesteps: Sequence["TimestepLike"]

    def operation(self, node: int) -> Operation:  # pragma: no cover
        raise NotImplementedError


class TimestepLike:
    regions: Sequence[Sequence[int]]


class ColumnsLike:
    def operation(self, node: int) -> Operation:  # pragma: no cover
        raise NotImplementedError


class StreamedScheduleLike:
    length: int

    def regions_at(
        self, t: int
    ) -> Sequence[Tuple[int, Sequence[int]]]:  # pragma: no cover
        raise NotImplementedError
