"""Dense statevector simulation of small circuits.

The paper never simulates its benchmarks (they are far too large); this
simulator exists so *our* reconstruction can be verified: the
decomposition pass and the CTQG reversible-arithmetic library are checked
gate-for-gate against the unitaries / truth tables they claim to
implement. Practical up to ~20 qubits.

Qubit ordering is little-endian: qubit ``i`` is bit ``i`` of the basis
state index, so ``|q2 q1 q0> = |idx>`` with ``idx = q0 + 2*q1 + 4*q2``.
"""

from __future__ import annotations

import cmath
import math
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..core.operation import Operation
from ..core.qubits import Qubit

__all__ = ["Simulator", "gate_matrix", "circuit_unitary"]

_SQRT2_INV = 1.0 / math.sqrt(2.0)

_FIXED_MATRICES: Dict[str, np.ndarray] = {
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
    "H": np.array([[1, 1], [1, -1]], dtype=complex) * _SQRT2_INV,
    "S": np.array([[1, 0], [0, 1j]], dtype=complex),
    "Sdag": np.array([[1, 0], [0, -1j]], dtype=complex),
    "T": np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex),
    "Tdag": np.array(
        [[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex
    ),
}


def _controlled(u: np.ndarray, n_controls: int) -> np.ndarray:
    """Embed ``u`` as the bottom-right block of a controlled gate.

    Operand convention: controls are the *first* operands, the target is
    last; the matrix acts on basis states ordered with the first operand
    as the most significant bit (standard textbook layout — the simulator
    maps operands accordingly).
    """
    dim = u.shape[0] * (2 ** n_controls)
    out = np.eye(dim, dtype=complex)
    out[-u.shape[0]:, -u.shape[1]:] = u
    return out


def gate_matrix(gate: str, angle: Optional[float] = None) -> np.ndarray:
    """The unitary matrix of ``gate`` (first operand = most significant
    bit). Raises ``ValueError`` for non-unitary ops (prep / measure)."""
    if gate in _FIXED_MATRICES:
        return _FIXED_MATRICES[gate]
    if gate == "CNOT":
        return _controlled(_FIXED_MATRICES["X"], 1)
    if gate == "CZ":
        return _controlled(_FIXED_MATRICES["Z"], 1)
    if gate == "Toffoli":
        return _controlled(_FIXED_MATRICES["X"], 2)
    if gate == "CCZ":
        return _controlled(_FIXED_MATRICES["Z"], 2)
    if gate == "SWAP":
        return np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]],
            dtype=complex,
        )
    if gate == "Fredkin":
        out = np.eye(8, dtype=complex)
        # Controlled SWAP of the two low bits when the high bit is set.
        out[5, 5] = out[6, 6] = 0
        out[5, 6] = out[6, 5] = 1
        return out
    if gate == "Rz":
        assert angle is not None
        return np.array(
            [
                [cmath.exp(-1j * angle / 2), 0],
                [0, cmath.exp(1j * angle / 2)],
            ],
            dtype=complex,
        )
    if gate == "Rx":
        assert angle is not None
        c, s = math.cos(angle / 2), math.sin(angle / 2)
        return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)
    if gate == "Ry":
        assert angle is not None
        c, s = math.cos(angle / 2), math.sin(angle / 2)
        return np.array([[c, -s], [s, c]], dtype=complex)
    if gate == "CRz":
        assert angle is not None
        return _controlled(gate_matrix("Rz", angle), 1)
    if gate == "CRx":
        assert angle is not None
        return _controlled(gate_matrix("Rx", angle), 1)
    raise ValueError(f"gate {gate!r} has no unitary matrix")


class Simulator:
    """Statevector simulator over an explicit qubit list.

    Args:
        qubits: the qubits of the circuit; their order fixes bit
            positions (``qubits[0]`` is the least significant bit).
        max_qubits: safety limit on the register size.
    """

    def __init__(self, qubits: Sequence[Qubit], max_qubits: int = 22):
        qubits = list(qubits)
        if len(set(qubits)) != len(qubits):
            raise ValueError("duplicate qubits in simulator register")
        if len(qubits) > max_qubits:
            raise ValueError(
                f"{len(qubits)} qubits exceeds simulator limit "
                f"{max_qubits}"
            )
        self.qubits: List[Qubit] = qubits
        self.index: Dict[Qubit, int] = {q: i for i, q in enumerate(qubits)}
        self.n = len(qubits)
        self.state = np.zeros(2 ** self.n, dtype=complex)
        self.state[0] = 1.0

    # -- state preparation ---------------------------------------------

    def reset(self, bits: int = 0) -> None:
        """Reset to the computational basis state ``|bits>``."""
        if not 0 <= bits < 2 ** self.n:
            raise ValueError(f"basis state {bits} out of range")
        self.state = np.zeros(2 ** self.n, dtype=complex)
        self.state[bits] = 1.0

    def set_bits(self, assignment: Dict[Qubit, int]) -> None:
        """Reset to the basis state given by per-qubit bit values
        (unspecified qubits are 0)."""
        bits = 0
        for q, v in assignment.items():
            if v not in (0, 1):
                raise ValueError(f"bit value for {q!r} must be 0/1")
            bits |= v << self.index[q]
        self.reset(bits)

    # -- evolution ----------------------------------------------------------

    def apply(self, op: Operation) -> None:
        """Apply one operation to the state."""
        if op.gate == "PrepZ":
            self._project_to(op.qubits[0], 0)
            return
        if op.gate == "PrepX":
            self._project_to(op.qubits[0], 0)
            self._apply_unitary(gate_matrix("H"), [op.qubits[0]])
            return
        if op.gate in ("MeasZ", "MeasX"):
            raise ValueError(
                "use .measure() for measurement; it is not a unitary"
            )
        self._apply_unitary(gate_matrix(op.gate, op.angle), list(op.qubits))

    def run(self, ops: Iterable[Operation]) -> "Simulator":
        """Apply a sequence of operations; returns self for chaining."""
        for op in ops:
            self.apply(op)
        return self

    def _apply_unitary(self, u: np.ndarray, operands: List[Qubit]) -> None:
        k = len(operands)
        assert u.shape == (2 ** k, 2 ** k)
        # Tensor axes: axis j corresponds to qubit (n-1-j) so that axis 0
        # is the most significant bit.
        axes = [self.n - 1 - self.index[q] for q in operands]
        tensor = self.state.reshape((2,) * self.n)
        tensor = np.moveaxis(tensor, axes, range(k))
        shape = tensor.shape
        tensor = u @ tensor.reshape(2 ** k, -1)
        tensor = np.moveaxis(tensor.reshape(shape), range(k), axes)
        self.state = np.ascontiguousarray(tensor).reshape(2 ** self.n)

    def _project_to(self, qubit: Qubit, value: int) -> None:
        """Non-unitary reset: project ``qubit`` onto ``|value>`` (flipping
        amplitude mass if necessary — a reset, not a postselection)."""
        bit = self.index[qubit]
        tensor = self.state.reshape((2,) * self.n)
        axis = self.n - 1 - bit
        keep = np.take(tensor, value, axis=axis)
        drop = np.take(tensor, 1 - value, axis=axis)
        merged = np.sqrt(np.abs(keep) ** 2 + np.abs(drop) ** 2)
        phase = np.where(np.abs(keep) > 1e-12, keep / np.maximum(np.abs(keep), 1e-300), 1.0)
        new = np.zeros_like(tensor)
        idx = [slice(None)] * self.n
        idx[axis] = value
        new[tuple(idx)] = merged * phase
        self.state = new.reshape(2 ** self.n)

    # -- readout --------------------------------------------------------------

    def probabilities(self) -> np.ndarray:
        """Probability of each basis state."""
        return np.abs(self.state) ** 2

    def probability_of(self, assignment: Dict[Qubit, int]) -> float:
        """Probability that the given qubits read the given bit values."""
        probs = self.probabilities()
        total = 0.0
        for idx, p in enumerate(probs):
            if all((idx >> self.index[q]) & 1 == v for q, v in assignment.items()):
                total += p
        return float(total)

    def measure(self, qubit: Qubit, rng: Optional[np.random.Generator] = None) -> int:
        """Measure one qubit in the Z basis, collapsing the state."""
        rng = rng or np.random.default_rng()
        p1 = self.probability_of({qubit: 1})
        outcome = int(rng.random() < p1)
        self._collapse(qubit, outcome)
        return outcome

    def _collapse(self, qubit: Qubit, value: int) -> None:
        bit = self.index[qubit]
        mask = np.array(
            [((i >> bit) & 1) == value for i in range(2 ** self.n)]
        )
        self.state = np.where(mask, self.state, 0)
        norm = np.linalg.norm(self.state)
        if norm < 1e-12:
            raise ValueError("measurement outcome has zero probability")
        self.state /= norm

    def basis_state(self) -> int:
        """If the state is (numerically) a single computational basis
        state, return its index; otherwise raise ``ValueError``."""
        probs = self.probabilities()
        top = int(np.argmax(probs))
        if probs[top] < 1.0 - 1e-9:
            raise ValueError("state is not a computational basis state")
        return top

    def bit_of(self, qubit: Qubit) -> int:
        """The value of ``qubit`` when the state is a basis state."""
        return (self.basis_state() >> self.index[qubit]) & 1


def circuit_unitary(
    ops: Sequence[Operation], qubits: Sequence[Qubit]
) -> np.ndarray:
    """The full unitary of an op sequence over ``qubits`` (column ``j`` is
    the image of basis state ``|j>``). Exponential in qubit count; for
    verification of small circuits only."""
    qubits = list(qubits)
    dim = 2 ** len(qubits)
    out = np.zeros((dim, dim), dtype=complex)
    for j in range(dim):
        sim = Simulator(qubits)
        sim.reset(j)
        sim.run(ops)
        out[:, j] = sim.state
    return out
