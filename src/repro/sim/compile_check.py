"""End-to-end semantic verification of the compilation pipeline.

For programs small enough to simulate, :func:`verify_compilation`
checks that a transformed program (decomposed / optimized / flattened —
any semantics-preserving pipeline) still implements the original
program's unitary, up to global phase.

Both programs are fully inlined to flat circuits and simulated over the
union of their qubits. Rotations synthesised *approximately* (generic
angles) are exempted by construction — callers verify those pipelines
either on pi/4-multiple-only programs or with decomposition disabled —
and the function refuses circuits that exceed the simulator's qubit
budget rather than silently skipping.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.module import Program
from ..core.operation import Operation
from ..core.qubits import Qubit
from ..passes.flatten import fully_flatten
from .statevector import circuit_unitary
from .verify import equivalent_up_to_global_phase

__all__ = ["verify_compilation", "CompilationCheckError"]


class CompilationCheckError(ValueError):
    """The programs cannot be compared (too large, measurement, ...)."""


def _flat_ops(program: Program) -> List[Operation]:
    entry = fully_flatten(program)
    ops = []
    for op in entry.operations():
        if op.gate in ("MeasZ", "MeasX"):
            raise CompilationCheckError(
                "cannot compare measurement outcomes unitarily; strip "
                "measurements before verification"
            )
        ops.append(op)
    return ops


def verify_compilation(
    original: Program,
    transformed: Program,
    max_qubits: int = 12,
    atol: float = 1e-9,
) -> bool:
    """True if ``transformed`` implements ``original``'s unitary.

    Args:
        original: the program before the pipeline.
        transformed: the program after semantics-preserving passes.
        max_qubits: refuse (raise) beyond this simulation size.
        atol: numeric tolerance for the unitary comparison.

    Raises:
        CompilationCheckError: if the comparison is not possible
            (measurements present, or too many qubits).
    """
    ops_a = _flat_ops(original)
    ops_b = _flat_ops(transformed)
    qubits: Dict[Qubit, None] = {}
    for op in ops_a + ops_b:
        for q in op.qubits:
            qubits.setdefault(q)
    universe = list(qubits)
    if len(universe) > max_qubits:
        raise CompilationCheckError(
            f"{len(universe)} qubits exceeds the verification budget "
            f"of {max_qubits}"
        )
    u = circuit_unitary(ops_a, universe)
    v = circuit_unitary(ops_b, universe)
    return equivalent_up_to_global_phase(u, v, atol=atol)
