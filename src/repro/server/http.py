"""Hand-rolled HTTP/1.1 framing over asyncio streams.

The daemon speaks a deliberately small slice of HTTP/1.1 — enough for
JSON request/response APIs, keep-alive connections, and chunked
transfer encoding for progress streams — implemented directly on
:mod:`asyncio` streams so the server adds **zero** runtime
dependencies. What is supported:

* request line + headers + ``Content-Length`` bodies (no request-side
  chunked encoding, no trailers, no pipelining guarantees beyond
  sequential request/response on one connection);
* response bodies either fixed-length or ``Transfer-Encoding:
  chunked`` (the progress streams);
* ``Connection: keep-alive`` (default for HTTP/1.1) and
  ``Connection: close``.

Limits are enforced while reading (header block and body size) and
violations surface as :class:`HttpError` with the right status code,
which the connection loop renders as an error response.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional
from urllib.parse import parse_qsl, unquote, urlsplit

import asyncio

__all__ = [
    "HttpError",
    "Request",
    "read_request",
    "send_json",
    "send_response",
    "start_chunked",
    "send_chunk",
    "end_chunked",
    "REASONS",
]

#: Reason phrases for the statuses the daemon emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Hard cap on the header block of one request.
MAX_HEADER_BYTES = 64 * 1024

#: Hard cap on a request body (QASM sources can be sizeable).
MAX_BODY_BYTES = 16 * 1024 * 1024


class HttpError(Exception):
    """A malformed or over-limit request, carrying its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    path: str
    query: Dict[str, str]
    version: str
    headers: Dict[str, str]
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        conn = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return conn == "keep-alive"
        return conn != "close"

    def json(self) -> Any:
        """The body parsed as JSON (empty body reads as ``{}``).

        Raises:
            HttpError: 400 on undecodable or non-JSON bodies.
        """
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not JSON: {exc}")

    def flag(self, name: str, default: bool = False) -> bool:
        """A boolean query parameter (``1/true/yes/on`` are true)."""
        value = self.query.get(name)
        if value is None:
            return default
        return value.strip().lower() in ("1", "true", "yes", "on")


async def read_request(
    reader: "asyncio.StreamReader",
    max_header: int = MAX_HEADER_BYTES,
    max_body: int = MAX_BODY_BYTES,
) -> Optional[Request]:
    """Read one request off the stream.

    Returns ``None`` on a clean EOF before any bytes (the peer closed
    a keep-alive connection). Raises :class:`HttpError` on malformed
    or over-limit input and lets transport errors
    (``ConnectionResetError`` etc.) propagate to the connection loop.
    """
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request") from None
    except asyncio.LimitOverrunError:
        raise HttpError(431, "header block too large") from None
    if len(header_block) > max_header:
        raise HttpError(431, "header block too large")

    try:
        head = header_block.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 is total
        raise HttpError(400, "undecodable header block") from None
    lines = head.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, version = parts
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise HttpError(400, f"unsupported version {version!r}")

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    if headers.get("transfer-encoding", "").lower() == "chunked":
        raise HttpError(400, "chunked request bodies are not supported")
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(
                400, f"bad Content-Length {length_text!r}"
            ) from None
        if length < 0:
            raise HttpError(400, f"bad Content-Length {length}")
        if length > max_body:
            raise HttpError(413, f"body of {length} bytes over limit")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated request body") from None

    split = urlsplit(target)
    query = {
        key: value
        for key, value in parse_qsl(split.query, keep_blank_values=True)
    }
    return Request(
        method=method.upper(),
        target=target,
        path=unquote(split.path),
        query=query,
        version=version,
        headers=headers,
        body=body,
    )


def _render_head(
    status: int,
    headers: Dict[str, str],
) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def send_response(
    writer: "asyncio.StreamWriter",
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> None:
    """Write one fixed-length response and flush it."""
    head = {
        "Content-Type": content_type,
        "Content-Length": str(len(body)),
        "Connection": "keep-alive" if keep_alive else "close",
    }
    if headers:
        head.update(headers)
    writer.write(_render_head(status, head) + body)
    await writer.drain()


async def send_json(
    writer: "asyncio.StreamWriter",
    status: int,
    payload: Any,
    headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> None:
    """Serialize ``payload`` and send it as a JSON response."""
    body = json.dumps(payload).encode("utf-8")
    await send_response(
        writer,
        status,
        body,
        headers=headers,
        keep_alive=keep_alive,
    )


async def start_chunked(
    writer: "asyncio.StreamWriter",
    status: int = 200,
    content_type: str = "application/x-ndjson",
    headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> None:
    """Open a ``Transfer-Encoding: chunked`` response."""
    head = {
        "Content-Type": content_type,
        "Transfer-Encoding": "chunked",
        "Connection": "keep-alive" if keep_alive else "close",
    }
    if headers:
        head.update(headers)
    writer.write(_render_head(status, head))
    await writer.drain()


async def send_chunk(
    writer: "asyncio.StreamWriter", data: bytes
) -> None:
    """Write one chunk (no-op for empty data, which would end the
    stream)."""
    if not data:
        return
    writer.write(f"{len(data):x}\r\n".encode("latin-1"))
    writer.write(data + b"\r\n")
    await writer.drain()


async def end_chunked(writer: "asyncio.StreamWriter") -> None:
    """Terminate a chunked response."""
    writer.write(b"0\r\n\r\n")
    await writer.drain()
