"""The compilation-as-a-service daemon.

:class:`ReproServer` wires the pieces together into a long-running
asyncio service:

* **HTTP surface** (:mod:`.http`): ``POST /v1/compile``,
  ``/v1/schedule``, ``/v1/execute``, ``/v1/lint`` plus
  ``GET /v1/jobs/<id>``, ``/v1/healthz`` and ``/v1/stats``;
* **caching**: completed compiles are served straight out of the
  content-addressed store (a server-side
  :meth:`~repro.service.CompileService.peek`) without occupying a
  worker;
* **coalescing** (:mod:`.jobs`): identical in-flight requests attach
  to one job and share its outcome;
* **admission control**: a bounded submission queue — when
  ``queued + running`` reaches ``queue_depth`` new work is refused
  with ``429`` and a ``Retry-After`` hint — plus per-tenant
  token-bucket rate limits keyed on the ``X-Tenant`` header;
* **workers** (:mod:`.pool`): warm processes with per-job timeouts
  and recycling;
* **progress streams**: ``?stream=1`` turns the response into chunked
  JSON lines replaying the job's ``pass:*``/``schedule:*`` span
  events live, terminated by the outcome line;
* **graceful drain**: SIGTERM (wired up by the ``serve`` CLI verb)
  stops accepting work, finishes everything in flight, flushes a
  cache-stats snapshot, and lets the process exit 0.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set

import asyncio

from ..core.module import ProgramValidationError
from ..core.qasm import QasmSyntaxError
from ..core.scaffold import ScaffoldSyntaxError
from ..service.core import CompileService
from ..service.store import write_stats_snapshot
from . import jobs as jobstates
from .api import (
    ApiError,
    KINDS,
    build_program,
    outcome_from_entry,
    parse_api_request,
    request_key,
    status_for_outcome,
)
from .http import (
    HttpError,
    Request,
    end_chunked,
    read_request,
    send_chunk,
    send_json,
    start_chunked,
)
from .jobs import Job, JobRegistry, RateLimiter
from .pool import WarmPool

__all__ = ["ServerConfig", "ReproServer"]


@dataclass(frozen=True)
class ServerConfig:
    """Daemon configuration (one frozen value object).

    ``rate`` is requests/second *per tenant* (``None`` = unlimited);
    ``burst`` defaults to ``max(1, 2*rate)``. ``queue_depth`` bounds
    admitted-but-unfinished jobs. ``job_timeout`` recycles the worker
    running any job that exceeds it. ``allow_delay`` enables the
    ``delay_s`` request field (a testing hook; off in production).
    """

    host: str = "127.0.0.1"
    port: int = 8787
    workers: int = 2
    queue_depth: int = 64
    rate: Optional[float] = None
    burst: Optional[float] = None
    job_timeout: Optional[float] = None
    cache_dir: Optional[str] = None
    use_cache: bool = True
    history: int = 256
    drain_grace: float = 30.0
    allow_delay: bool = False
    stats_file: Optional[str] = None


class ReproServer:
    """The asyncio daemon. Lifecycle: ``await start()`` →
    (requests) → ``await drain()`` → ``await wait_done()``."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.service = CompileService(cache_dir=config.cache_dir)
        self.registry = JobRegistry(history=config.history)
        self.limiter = RateLimiter(config.rate, config.burst)
        self.pool = WarmPool(
            size=config.workers,
            cache_dir=config.cache_dir,
            use_cache=config.use_cache,
            job_timeout=config.job_timeout,
            allow_delay=config.allow_delay,
            on_event=self._on_pool_event,
        )
        self.host = config.host
        self.port = config.port
        self.started_unix = time.time()
        self.requests_total = 0
        self.requests_by_endpoint: Dict[str, int] = {}
        self.job_requests = 0
        self.rejected_queue = 0
        self.rejected_draining = 0
        self._server: Optional["asyncio.base_events.Server"] = None
        self._writers: Set["asyncio.StreamWriter"] = set()
        self._http_inflight = 0
        self._draining = False
        self._done = asyncio.Event()
        self._drain_task: Optional["asyncio.Task"] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        await self.pool.start()
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.host, self.port = sockets[0].getsockname()[:2]
        self.started_unix = time.time()

    @property
    def draining(self) -> bool:
        return self._draining

    def request_drain(self) -> "asyncio.Task":
        """Idempotent trigger for graceful shutdown (signal-safe to
        call from a loop signal handler)."""
        if self._drain_task is None:
            self._drain_task = asyncio.get_event_loop().create_task(
                self.drain()
            )
        return self._drain_task

    async def drain(self) -> None:
        """Stop accepting, finish in-flight work, flush stats."""
        if self._draining:
            await self._done.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        grace = self.config.drain_grace
        deadline = time.monotonic() + grace
        await self.pool.drain(grace=grace)
        # Pool idle does not mean every outcome reached its waiters:
        # completion events hop through the loop, and handlers still
        # need to flush responses.
        while (
            self.registry.active_count or self._http_inflight
        ) and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:  # noqa: BLE001
                pass
        await self.pool.stop()
        self.flush_stats()
        self._done.set()

    async def wait_done(self) -> None:
        await self._done.wait()

    def flush_stats(self) -> None:
        """Persist the final counters (cache dir snapshot and/or an
        explicit stats file)."""
        stats = self.stats()
        if self.config.cache_dir is not None:
            try:
                write_stats_snapshot(
                    self.config.cache_dir,
                    self.service.stats,
                    extra={"server": stats},
                )
            except OSError:  # pragma: no cover - disk full etc.
                pass
        if self.config.stats_file:
            try:
                with open(self.config.stats_file, "w") as fh:
                    json.dump(stats, fh, indent=2)
            except OSError:  # pragma: no cover
                pass

    # -- stats ---------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        coalesced = self.registry.coalesced
        peek_hits = self.service.stats.hits
        amortized = (
            (coalesced + peek_hits) / self.job_requests
            if self.job_requests
            else 0.0
        )
        return {
            "server": {
                "uptime_s": time.time() - self.started_unix,
                "draining": self._draining,
                "workers": self.pool.size,
                "busy": self.pool.busy_count,
                "pending": self.pool.pending_count,
                "recycled": self.pool.recycled,
                "queue_depth": self.config.queue_depth,
            },
            "requests": {
                "total": self.requests_total,
                "by_endpoint": dict(
                    sorted(self.requests_by_endpoint.items())
                ),
                "jobs": self.job_requests,
                "rejected_queue": self.rejected_queue,
                "rejected_ratelimit": self.limiter.rejections,
                "rejected_draining": self.rejected_draining,
            },
            "jobs": self.registry.to_dict(),
            "coalesce": {
                "coalesced": coalesced,
                "cache_served": peek_hits,
                "amortized_rate": amortized,
            },
            "cache": self.service.stats_dict(),
        }

    # -- pool events ---------------------------------------------------

    def _on_pool_event(
        self, kind: str, job_id: str, payload: Any
    ) -> None:
        job = self.registry.get(job_id)
        if job is None or job.finished:
            return
        if kind == "start":
            job.mark_running()
            job.publish({"event": "start", **(payload or {})})
        elif kind == "span":
            job.publish({"event": "span", **(payload or {})})
        elif kind == "done":
            outcome = payload or {}
            state = (
                jobstates.DONE
                if outcome.get("status") == "ok"
                else jobstates.ERROR
            )
            self.registry.finish(job, state, outcome)
        elif kind == "timeout":
            self.registry.finish(
                job,
                jobstates.TIMEOUT,
                {
                    "status": "timeout",
                    "kind": job.kind,
                    "error": {
                        "kind": "timeout",
                        "message": (payload or {}).get(
                            "message", "job timed out"
                        ),
                    },
                },
            )
        elif kind == "crash":
            self.registry.finish(
                job,
                jobstates.ERROR,
                {
                    "status": "error",
                    "kind": job.kind,
                    "error": {
                        "kind": "worker",
                        "message": (payload or {}).get(
                            "message", "worker crashed"
                        ),
                    },
                },
            )

    # -- connections ---------------------------------------------------

    async def _handle_conn(
        self,
        reader: "asyncio.StreamReader",
        writer: "asyncio.StreamWriter",
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    await send_json(
                        writer,
                        exc.status,
                        {"error": str(exc)},
                        keep_alive=False,
                    )
                    break
                except (ConnectionError, asyncio.CancelledError):
                    break
                if request is None:
                    break
                self.requests_total += 1
                self._http_inflight += 1
                try:
                    keep = await self._route(request, writer)
                except (ConnectionError, BrokenPipeError):
                    break
                except Exception as exc:  # noqa: BLE001 - last resort
                    try:
                        await send_json(
                            writer,
                            500,
                            {
                                "error": (
                                    f"{type(exc).__name__}: {exc}"
                                )
                            },
                            keep_alive=False,
                        )
                    except Exception:  # noqa: BLE001
                        pass
                    break
                finally:
                    self._http_inflight -= 1
                if not keep:
                    break
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001
                pass

    # -- routing -------------------------------------------------------

    def _count(self, endpoint: str) -> None:
        self.requests_by_endpoint[endpoint] = (
            self.requests_by_endpoint.get(endpoint, 0) + 1
        )

    async def _route(
        self, request: Request, writer: "asyncio.StreamWriter"
    ) -> bool:
        """Dispatch one request; returns whether to keep the
        connection."""
        keep = request.keep_alive and not self._draining
        path = request.path.rstrip("/") or "/"
        if request.method == "GET":
            if path == "/v1/healthz":
                self._count("healthz")
                await send_json(
                    writer,
                    200,
                    {"status": "ok", "draining": self._draining},
                    keep_alive=keep,
                )
                return keep
            if path == "/v1/stats":
                self._count("stats")
                await send_json(
                    writer, 200, self.stats(), keep_alive=keep
                )
                return keep
            if path.startswith("/v1/jobs/"):
                self._count("jobs")
                return await self._handle_job_get(
                    request, writer, path[len("/v1/jobs/"):], keep
                )
            await send_json(
                writer,
                404,
                {"error": f"no such resource {path!r}"},
                keep_alive=keep,
            )
            return keep
        if request.method == "POST":
            kind = path[len("/v1/"):] if path.startswith("/v1/") else ""
            if kind in KINDS:
                self._count(kind)
                return await self._handle_post(
                    kind, request, writer, keep
                )
            await send_json(
                writer,
                404,
                {"error": f"no such resource {path!r}"},
                keep_alive=keep,
            )
            return keep
        await send_json(
            writer,
            405,
            {"error": f"method {request.method} not allowed"},
            keep_alive=keep,
        )
        return keep

    async def _handle_job_get(
        self,
        request: Request,
        writer: "asyncio.StreamWriter",
        job_id: str,
        keep: bool,
    ) -> bool:
        job = self.registry.get(job_id)
        if job is None:
            await send_json(
                writer,
                404,
                {"error": f"unknown job {job_id!r}"},
                keep_alive=keep,
            )
            return keep
        if request.flag("stream"):
            await self._stream_job(job, writer, attached=True, keep=keep)
            return keep
        await send_json(writer, 200, job.snapshot(), keep_alive=keep)
        return keep

    async def _handle_post(
        self,
        kind: str,
        request: Request,
        writer: "asyncio.StreamWriter",
        keep: bool,
    ) -> bool:
        if self._draining:
            self.rejected_draining += 1
            await send_json(
                writer,
                503,
                {"error": "server is draining"},
                keep_alive=False,
            )
            return False
        try:
            api_request = parse_api_request(kind, request.json())
        except (HttpError, ApiError) as exc:
            await send_json(
                writer, exc.status, {"error": str(exc)}, keep_alive=keep
            )
            return keep
        if api_request.delay_s and not self.config.allow_delay:
            await send_json(
                writer,
                400,
                {"error": "'delay_s' requires --allow-delay"},
                keep_alive=keep,
            )
            return keep

        tenant = request.headers.get("x-tenant", "anonymous")
        allowed, retry_after = self.limiter.acquire(tenant)
        if not allowed:
            await send_json(
                writer,
                429,
                {
                    "error": f"tenant {tenant!r} over rate limit",
                    "retry_after_s": retry_after,
                },
                headers={
                    "Retry-After": str(
                        max(1, math.ceil(retry_after))
                    )
                },
                keep_alive=keep,
            )
            return keep

        try:
            program = build_program(api_request)
            key, fingerprint = request_key(api_request, program)
        except (
            ScaffoldSyntaxError,
            QasmSyntaxError,
            ProgramValidationError,
        ) as exc:
            await send_json(
                writer,
                400,
                {"error": f"{type(exc).__name__}: {exc}"},
                keep_alive=keep,
            )
            return keep

        self.job_requests += 1
        stream = request.flag("stream")
        wait = request.flag("wait", default=True)

        # Tier 0: completed work comes straight off the
        # content-addressed store, no worker involved.
        if (
            kind in ("compile", "schedule")
            and self.config.use_cache
        ):
            entry = self.service.peek(fingerprint)
            if entry is not None:
                outcome = outcome_from_entry(api_request, entry)
                outcome["elapsed_s"] = 0.0
                headers = {
                    "X-Repro-Cache": entry.cached or "miss",
                    "X-Repro-Coalesced": "0",
                    "X-Repro-Fingerprint": fingerprint,
                }
                if stream:
                    await start_chunked(
                        writer, headers=headers, keep_alive=keep
                    )
                    await send_chunk(
                        writer,
                        _line({"event": "outcome", "outcome": outcome}),
                    )
                    await end_chunked(writer)
                    return keep
                await send_json(
                    writer,
                    200,
                    outcome,
                    headers=headers,
                    keep_alive=keep,
                )
                return keep

        # Tier 1: attach to identical in-flight work.
        existing = self.registry.inflight.get(key)
        if existing is None and self.pool.load >= self.config.queue_depth:
            self.rejected_queue += 1
            retry = max(1, math.ceil(self.config.job_timeout or 1))
            await send_json(
                writer,
                429,
                {
                    "error": (
                        f"queue full ({self.config.queue_depth} jobs)"
                    ),
                    "retry_after_s": retry,
                },
                headers={"Retry-After": str(retry)},
                keep_alive=keep,
            )
            return keep
        job, created = self.registry.get_or_create(
            key,
            kind,
            fingerprint,
            api_request.to_dict(),
            tenant,
        )
        if created:
            self.pool.submit(job.id, job.request)

        if stream:
            await self._stream_job(
                job, writer, attached=not created, keep=keep
            )
            return keep
        if not wait:
            await send_json(
                writer,
                202,
                {
                    "job": job.id,
                    "state": job.state,
                    "coalesced": not created,
                    "fingerprint": fingerprint,
                },
                headers={"X-Repro-Job": job.id},
                keep_alive=keep,
            )
            return keep

        await job.done.wait()
        outcome = dict(job.outcome or {})
        outcome["job"] = job.id
        outcome["coalesced"] = not created
        await send_json(
            writer,
            status_for_outcome(outcome),
            outcome,
            headers={
                "X-Repro-Job": job.id,
                "X-Repro-Cache": outcome.get("cached") or "miss",
                "X-Repro-Coalesced": "1" if not created else "0",
                "X-Repro-Fingerprint": fingerprint,
            },
            keep_alive=keep,
        )
        return keep

    async def _stream_job(
        self,
        job: Job,
        writer: "asyncio.StreamWriter",
        attached: bool,
        keep: bool,
    ) -> None:
        """Chunked JSON-lines progress stream, ending with the
        outcome."""
        queue = job.subscribe()
        await start_chunked(
            writer,
            headers={
                "X-Repro-Job": job.id,
                "X-Repro-Coalesced": "1" if attached else "0",
            },
            keep_alive=keep,
        )
        await send_chunk(
            writer,
            _line(
                {
                    "event": "job",
                    "job": job.id,
                    "kind": job.kind,
                    "state": job.state,
                    "fingerprint": job.fingerprint,
                    "coalesced": attached,
                }
            ),
        )
        while True:
            event = await queue.get()
            if event is None:
                break
            await send_chunk(writer, _line(event))
        outcome = dict(job.outcome or {})
        outcome["job"] = job.id
        await send_chunk(
            writer, _line({"event": "outcome", "outcome": outcome})
        )
        await end_chunked(writer)


def _line(payload: Dict[str, Any]) -> bytes:
    return (json.dumps(payload) + "\n").encode("utf-8")
