"""Compilation-as-a-service: a stdlib-only asyncio daemon.

The :mod:`repro.server` package turns the batch toolflow into a
long-running service — ``POST /v1/compile`` and friends — with
request coalescing over the compile fingerprints, the
content-addressed artifact store as a shared cache, a warm worker
pool with per-job timeouts, per-tenant token-bucket rate limits,
streamed progress, and graceful SIGTERM drains. See ``DESIGN.md``
("Service architecture") for the protocol.
"""

from .api import (
    ApiError,
    ApiRequest,
    KINDS,
    build_program,
    parse_api_request,
    request_key,
    run_api_request,
    status_for_outcome,
)
from .app import ReproServer, ServerConfig
from .client import ClientResponse, http_request, http_stream
from .jobs import Job, JobRegistry, RateLimiter, TokenBucket
from .loadtest import (
    LoadTestConfig,
    SERVICE_SCHEMA,
    build_service_payload,
    loadtest_with_spawn,
    render_service_report,
    run_loadtest,
    spawn_server,
    validate_service_payload,
)
from .pool import WarmPool, worker_main

__all__ = [
    "ApiError",
    "ApiRequest",
    "KINDS",
    "build_program",
    "parse_api_request",
    "request_key",
    "run_api_request",
    "status_for_outcome",
    "ReproServer",
    "ServerConfig",
    "ClientResponse",
    "http_request",
    "http_stream",
    "Job",
    "JobRegistry",
    "RateLimiter",
    "TokenBucket",
    "LoadTestConfig",
    "SERVICE_SCHEMA",
    "build_service_payload",
    "loadtest_with_spawn",
    "render_service_report",
    "run_loadtest",
    "spawn_server",
    "validate_service_payload",
    "WarmPool",
    "worker_main",
]
