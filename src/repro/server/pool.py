"""Warm process-pool workers for the compile daemon.

Why not :class:`concurrent.futures.ProcessPoolExecutor`? Two of the
daemon's requirements fight it: a *per-job* timeout must kill exactly
the worker running that job (the executor cannot cancel a running
future without breaking the whole pool), and progress must stream out
of a worker *while it computes* (futures only deliver a final value).
So this module hand-rolls a small pool on :mod:`multiprocessing`
primitives:

* each worker is a long-lived process (warm: its
  :class:`~repro.service.CompileService` memory LRU survives across
  jobs) with a private task queue, fed one job at a time;
* all workers share one **event queue** carrying ``start`` / ``span``
  / ``done`` tuples; a pump thread forwards them onto the asyncio
  loop, so span completions (via
  :func:`repro.instrument.subscribe_spans`) stream to watching
  clients live;
* a watchdog task enforces per-job deadlines and detects dead
  workers; either way the offender is **recycled** — terminated and
  replaced by a fresh warm process — and a synthetic terminal event
  is published for the job it was running.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional, Tuple

import asyncio
from collections import deque

from ..instrument import subscribe_spans
from ..service.core import CompileService
from .api import run_api_request

__all__ = ["WarmPool", "worker_main"]

#: ``on_event`` callback signature: (kind, job_id, payload).
EventCallback = Callable[[str, str, Any], None]

#: Watchdog cadence in seconds.
_WATCHDOG_TICK = 0.05


def worker_main(
    task_q: Any,
    event_q: Any,
    cache_dir: Optional[str],
    use_cache: bool,
    allow_delay: bool,
) -> None:
    """A pool worker's main loop (also runs under plain
    :class:`queue.Queue` objects in-process, which is how unit tests
    exercise it without forking).

    Tasks are ``(job_id, request_dict)`` tuples; ``None`` shuts the
    worker down. Every job produces exactly one terminal ``done``
    event; span completions stream out as ``span`` events while the
    compile runs.
    """
    service = CompileService(cache_dir=cache_dir)
    while True:
        task = task_q.get()
        if task is None:
            return
        job_id, request_dict = task

        def emit(name: str, seconds: float, _job: str = job_id) -> None:
            event_q.put(("span", _job, {"name": name, "seconds": seconds}))

        try:
            event_q.put(("start", job_id, {"pid": os.getpid()}))
            with subscribe_spans(emit):
                outcome = run_api_request(
                    request_dict,
                    service,
                    use_cache=use_cache,
                    allow_delay=allow_delay,
                )
            event_q.put(("done", job_id, outcome))
        except Exception as exc:  # noqa: BLE001 - last-ditch guard
            event_q.put(
                (
                    "done",
                    job_id,
                    {
                        "status": "error",
                        "kind": request_dict.get("kind"),
                        "error": {
                            "kind": "worker",
                            "message": f"{type(exc).__name__}: {exc}",
                        },
                    },
                )
            )


@dataclass
class _Worker:
    proc: "multiprocessing.process.BaseProcess"
    task_q: Any
    job_id: Optional[str] = None
    deadline: Optional[float] = None
    jobs_done: int = 0

    @property
    def busy(self) -> bool:
        return self.job_id is not None


class WarmPool:
    """A fixed-size pool of warm worker processes.

    Args:
        size: worker count.
        cache_dir: shared artifact store for all workers.
        use_cache: forwarded to the workers' service lookups.
        job_timeout: per-job wall-clock seconds; ``None`` disables the
            deadline (workers can still be recycled on crash).
        allow_delay: honor the ``delay_s`` testing hook in requests.
        on_event: called **on the event loop** for every worker event:
            ``on_event("start"|"span"|"done"|"timeout"|"crash",
            job_id, payload)``.
    """

    def __init__(
        self,
        size: int,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        job_timeout: Optional[float] = None,
        allow_delay: bool = False,
        on_event: Optional[EventCallback] = None,
    ) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.size = size
        self.cache_dir = cache_dir
        self.use_cache = use_cache
        self.job_timeout = job_timeout
        self.allow_delay = allow_delay
        self.on_event = on_event or (lambda kind, job_id, payload: None)
        self.recycled = 0
        self._ctx = multiprocessing.get_context()
        self._event_q = self._ctx.Queue()
        self._workers: list[_Worker] = []
        self._pending: Deque[Tuple[str, Dict[str, Any]]] = deque()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pump: Optional[threading.Thread] = None
        self._watchdog: Optional["asyncio.Task"] = None
        self._stopping = False

    # -- lifecycle -----------------------------------------------------

    def _spawn(self) -> _Worker:
        task_q = self._ctx.Queue()
        proc = self._ctx.Process(
            target=worker_main,
            args=(
                task_q,
                self._event_q,
                self.cache_dir,
                self.use_cache,
                self.allow_delay,
            ),
            daemon=True,
        )
        proc.start()
        return _Worker(proc=proc, task_q=task_q)

    async def start(self) -> None:
        """Spawn the workers and begin pumping events."""
        self._loop = asyncio.get_running_loop()
        # Spawn all children before the pump thread exists: forking a
        # multi-threaded process risks inheriting held locks.
        self._workers = [self._spawn() for _ in range(self.size)]
        self._pump = threading.Thread(
            target=self._pump_events, name="repro-server-pump", daemon=True
        )
        self._pump.start()
        self._watchdog = self._loop.create_task(self._watch())

    async def stop(self) -> None:
        """Shut everything down (does not wait for busy workers to
        finish — call :meth:`drain` first for a graceful stop)."""
        self._stopping = True
        if self._watchdog is not None:
            self._watchdog.cancel()
            try:
                await self._watchdog
            except asyncio.CancelledError:
                pass
        for worker in self._workers:
            try:
                worker.task_q.put_nowait(None)
            except Exception:  # noqa: BLE001 - queue may be broken
                pass
        deadline = time.monotonic() + 2.0
        for worker in self._workers:
            worker.proc.join(max(0.0, deadline - time.monotonic()))
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(1.0)
            worker.task_q.cancel_join_thread()
        self._workers = []
        if self._pump is not None:
            self._pump.join(2.0)
            self._pump = None
        self._event_q.cancel_join_thread()

    # -- submission ----------------------------------------------------

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def busy_count(self) -> int:
        return sum(1 for w in self._workers if w.busy)

    @property
    def load(self) -> int:
        """Jobs admitted but not yet finished (queued + running)."""
        return self.pending_count + self.busy_count

    def submit(self, job_id: str, request_dict: Dict[str, Any]) -> None:
        """Queue a job for the next idle worker."""
        self._pending.append((job_id, request_dict))
        self._dispatch()

    def _dispatch(self) -> None:
        if self._stopping:
            return
        for worker in self._workers:
            if not self._pending:
                break
            if worker.busy or not worker.proc.is_alive():
                continue
            job_id, request_dict = self._pending.popleft()
            worker.job_id = job_id
            worker.deadline = (
                time.monotonic() + self.job_timeout
                if self.job_timeout is not None
                else None
            )
            worker.task_q.put((job_id, request_dict))

    # -- events --------------------------------------------------------

    def _pump_events(self) -> None:
        while not self._stopping:
            try:
                event = self._event_q.get(timeout=0.2)
            except (queue_mod.Empty, OSError, EOFError):
                continue
            loop = self._loop
            if loop is None or loop.is_closed():
                return
            try:
                loop.call_soon_threadsafe(self._handle_event, event)
            except RuntimeError:
                return  # loop shut down under us

    def _handle_event(self, event: Tuple[str, str, Any]) -> None:
        kind, job_id, payload = event
        if kind == "done":
            worker = self._worker_for(job_id)
            if worker is not None:
                worker.job_id = None
                worker.deadline = None
                worker.jobs_done += 1
            self._dispatch()
        self.on_event(kind, job_id, payload)

    def _worker_for(self, job_id: str) -> Optional[_Worker]:
        for worker in self._workers:
            if worker.job_id == job_id:
                return worker
        return None

    # -- the watchdog --------------------------------------------------

    def _recycle(self, worker: _Worker) -> None:
        """Replace a worker with a fresh warm process."""
        index = self._workers.index(worker)
        if worker.proc.is_alive():
            worker.proc.terminate()
        worker.proc.join(1.0)
        worker.task_q.cancel_join_thread()
        self._workers[index] = self._spawn()
        self.recycled += 1

    async def _watch(self) -> None:
        while True:
            await asyncio.sleep(_WATCHDOG_TICK)
            now = time.monotonic()
            for worker in list(self._workers):
                if worker not in self._workers:
                    continue
                if worker.busy and not worker.proc.is_alive():
                    job_id = worker.job_id
                    self._recycle(worker)
                    self.on_event(
                        "crash",
                        job_id,
                        {"message": "worker process died"},
                    )
                elif (
                    worker.busy
                    and worker.deadline is not None
                    and now > worker.deadline
                ):
                    job_id = worker.job_id
                    self._recycle(worker)
                    self.on_event(
                        "timeout",
                        job_id,
                        {
                            "message": (
                                f"job exceeded {self.job_timeout:g}s; "
                                "worker recycled"
                            )
                        },
                    )
                elif not worker.busy and not worker.proc.is_alive():
                    self._recycle(worker)
            self._dispatch()

    # -- drain ---------------------------------------------------------

    async def drain(self, grace: float = 30.0) -> bool:
        """Wait for queued + running jobs to finish.

        Returns True when the pool went idle within ``grace``
        seconds.
        """
        deadline = time.monotonic() + grace
        while self.load and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        return self.load == 0
