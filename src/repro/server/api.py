"""The service API surface: request model, fingerprints, execution.

This module is deliberately free of any HTTP or asyncio machinery so
both sides of the daemon share it:

* the **server** parses request bodies into :class:`ApiRequest`,
  builds the program once to compute the coalescing/caching
  fingerprint (the exact :func:`~repro.service.fingerprint_request`
  recipe the batch cache uses), and peeks the content-addressed store;
* the **workers** receive the request as a plain dict and run
  :func:`run_api_request`, producing a JSON-safe outcome dict that
  never raises (failures are classified the same way the sweep runner
  classifies them).

Request kinds map to the HTTP endpoints: ``compile`` and ``schedule``
share one compile artifact (and therefore one fingerprint — they
coalesce with each other), ``execute`` mixes the engine parameters
into the key, and ``lint`` keys on the program alone.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from ..analysis import analyze_program, lint_qasm_source, lint_scaffold_source
from ..arch.machine import MultiSIMD, capacity_label, parse_capacity
from ..benchmarks import BENCHMARKS, benchmark_names
from ..core.canonical import digest as _digest
from ..core.module import Program
from ..instrument import record_spans
from ..passes.flatten import DEFAULT_FTH
from ..service.core import CompileService, ServiceEntry
from ..service.fingerprint import fingerprint_request
from ..service.sweep import _error_kind, _METRIC_FIELDS
from ..sched.coarse import best_dim
from ..toolflow import CompileResult, SchedulerConfig

__all__ = [
    "KINDS",
    "ApiError",
    "ApiRequest",
    "parse_api_request",
    "build_program",
    "request_key",
    "metrics_from_result",
    "module_summary",
    "outcome_from_entry",
    "run_api_request",
    "status_for_outcome",
]

#: The job kinds the daemon serves (one POST endpoint each).
KINDS = ("compile", "schedule", "execute", "lint")

#: Body fields accepted per kind (anything else is a 400 — typos in a
#: request must not silently change its meaning *and* its fingerprint).
_COMMON_FIELDS = {
    "source",
    "qasm",
    "scaffold",
    "k",
    "d",
    "local_memory",
    "scheduler",
    "fth",
    "optimize",
    "strict",
    "delay_s",
    "topology",
    "cores",
    "link_bw",
}
_FIELDS_BY_KIND = {
    "compile": _COMMON_FIELDS,
    "schedule": _COMMON_FIELDS,
    "execute": _COMMON_FIELDS | {"epr_rate", "seed"},
    "lint": {"source", "qasm", "scaffold", "delay_s"},
}

#: Upper bound on the testing-hook delay (seconds).
_MAX_DELAY_S = 30.0


class ApiError(Exception):
    """An invalid API request, carrying the HTTP status to report."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class ApiRequest:
    """One validated service request (JSON-safe, picklable)."""

    kind: str
    source: Optional[str] = None
    qasm: Optional[str] = None
    scaffold: Optional[str] = None
    k: int = 4
    d: Optional[int] = None
    local_memory: Optional[float] = None
    scheduler: str = "lpfs"
    fth: Optional[int] = None
    optimize: bool = False
    strict: bool = False
    epr_rate: Optional[float] = None
    seed: int = 0
    #: Multi-core axis: a topology name routes the request through
    #: :mod:`repro.multicore` (``cores`` cores of Multi-SIMD(k,d) each,
    #: links carrying ``link_bw`` pairs per round).
    topology: Optional[str] = None
    cores: int = 1
    link_bw: float = 1.0
    #: Testing hook: the worker sleeps this long before computing, so
    #: tests can hold a job in flight deterministically. Honored only
    #: when the server was started with the delay hook enabled.
    delay_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "source": self.source,
            "qasm": self.qasm,
            "scaffold": self.scaffold,
            "k": self.k,
            "d": self.d,
            "local_memory": capacity_label(self.local_memory),
            "scheduler": self.scheduler,
            "fth": self.fth,
            "optimize": self.optimize,
            "strict": self.strict,
            "epr_rate": self.epr_rate,
            "seed": self.seed,
            "topology": self.topology,
            "cores": self.cores,
            "link_bw": self.link_bw,
            "delay_s": self.delay_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ApiRequest":
        return cls(
            kind=data["kind"],
            source=data.get("source"),
            qasm=data.get("qasm"),
            scaffold=data.get("scaffold"),
            k=data.get("k", 4),
            d=data.get("d"),
            local_memory=parse_capacity(data.get("local_memory")),
            scheduler=data.get("scheduler", "lpfs"),
            fth=data.get("fth"),
            optimize=bool(data.get("optimize", False)),
            strict=bool(data.get("strict", False)),
            epr_rate=data.get("epr_rate"),
            seed=data.get("seed", 0),
            topology=data.get("topology"),
            cores=data.get("cores", 1),
            link_bw=data.get("link_bw", 1.0),
            delay_s=data.get("delay_s", 0.0),
        )

    @property
    def resolved_fth(self) -> int:
        if self.fth is not None:
            return self.fth
        if self.source in BENCHMARKS:
            return BENCHMARKS[self.source].fth
        return DEFAULT_FTH

    def scheduler_config(self) -> SchedulerConfig:
        return SchedulerConfig(self.scheduler)


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise ApiError(400, message)


def parse_api_request(kind: str, body: Any) -> ApiRequest:
    """Validate a JSON body into an :class:`ApiRequest`.

    Raises:
        ApiError: 400 on structural problems (unknown fields, bad
            types, missing program source).
    """
    _expect(kind in KINDS, f"unknown request kind {kind!r}")
    _expect(isinstance(body, dict), "request body must be a JSON object")
    allowed = _FIELDS_BY_KIND[kind]
    unknown = sorted(set(body) - allowed)
    _expect(
        not unknown,
        f"unknown field(s) {unknown} for {kind!r} "
        f"(accepted: {sorted(allowed)})",
    )
    sources = [
        name for name in ("source", "qasm", "scaffold") if body.get(name)
    ]
    _expect(
        len(sources) == 1,
        "exactly one of 'source' (a benchmark key), 'qasm', or "
        f"'scaffold' is required; got {sources or 'none'}",
    )
    source = body.get("source")
    if source is not None:
        _expect(isinstance(source, str), "'source' must be a string")
        _expect(
            source in BENCHMARKS,
            f"unknown benchmark {source!r} "
            f"(have {', '.join(benchmark_names())})",
        )
    for name in ("qasm", "scaffold"):
        if body.get(name) is not None:
            _expect(
                isinstance(body[name], str), f"{name!r} must be a string"
            )

    k = body.get("k", 4)
    _expect(isinstance(k, int) and k >= 1, "'k' must be an integer >= 1")
    d = body.get("d")
    _expect(
        d is None or (isinstance(d, int) and d >= 1),
        "'d' must be an integer >= 1 or null",
    )
    try:
        local_memory = parse_capacity(body.get("local_memory"))
    except ValueError as exc:
        raise ApiError(400, str(exc)) from None
    scheduler = body.get("scheduler", "lpfs")
    try:
        SchedulerConfig(scheduler)
    except ValueError as exc:
        raise ApiError(400, str(exc)) from None
    fth = body.get("fth")
    _expect(
        fth is None or (isinstance(fth, int) and fth >= 1),
        "'fth' must be an integer >= 1 or null",
    )
    epr_rate = body.get("epr_rate")
    if isinstance(epr_rate, str):
        _expect(
            epr_rate in ("inf", "infinite"),
            f"bad epr_rate {epr_rate!r} (number or 'inf')",
        )
        epr_rate = None
    _expect(
        epr_rate is None or (
            isinstance(epr_rate, (int, float)) and epr_rate > 0
        ),
        "'epr_rate' must be a positive number, 'inf', or null",
    )
    seed = body.get("seed", 0)
    _expect(isinstance(seed, int), "'seed' must be an integer")
    topology = body.get("topology")
    if topology is not None:
        from ..multicore.topology import TOPOLOGIES

        _expect(
            isinstance(topology, str) and topology in TOPOLOGIES,
            f"'topology' must be one of {list(TOPOLOGIES)} or null",
        )
    cores = body.get("cores", 1)
    _expect(
        isinstance(cores, int) and cores >= 1,
        "'cores' must be an integer >= 1",
    )
    link_bw = body.get("link_bw", 1.0)
    _expect(
        isinstance(link_bw, (int, float)) and link_bw > 0,
        "'link_bw' must be a positive number",
    )
    delay_s = body.get("delay_s", 0.0)
    _expect(
        isinstance(delay_s, (int, float))
        and 0 <= delay_s <= _MAX_DELAY_S,
        f"'delay_s' must be a number in [0, {_MAX_DELAY_S:g}]",
    )
    return ApiRequest(
        kind=kind,
        source=source,
        qasm=body.get("qasm"),
        scaffold=body.get("scaffold"),
        k=k,
        d=d,
        local_memory=local_memory,
        scheduler=scheduler,
        fth=fth,
        optimize=bool(body.get("optimize", False)),
        strict=bool(body.get("strict", False)),
        epr_rate=float(epr_rate) if epr_rate is not None else None,
        seed=seed,
        topology=topology,
        cores=cores,
        link_bw=float(link_bw),
        delay_s=float(delay_s),
    )


def build_program(request: ApiRequest) -> Program:
    """Materialize the request's program (parse errors propagate as
    their native exceptions: the caller maps them onto HTTP/exit
    codes)."""
    if request.source is not None:
        return BENCHMARKS[request.source].build()
    if request.qasm is not None:
        from ..core.qasm import parse_qasm

        return parse_qasm(request.qasm)
    from ..core.scaffold import parse_scaffold

    return parse_scaffold(request.scaffold, filename="<request>")


def machine_for(request: ApiRequest) -> MultiSIMD:
    return MultiSIMD(
        k=request.k, d=request.d, local_memory=request.local_memory
    )


def request_key(
    request: ApiRequest, program: Program
) -> Tuple[str, str]:
    """``(job_key, compile_fingerprint)`` for coalescing and caching.

    ``compile`` and ``schedule`` share the artifact fingerprint (they
    are two views of one compile), so their job keys collide on
    purpose and racing clients of either endpoint attach to the same
    in-flight job. ``execute`` mixes the engine configuration in;
    ``lint`` keys on the compile fingerprint too (same request shape,
    different pipeline) but under its own kind.

    Multi-core requests mix the topology axis into the *returned*
    fingerprint itself — the content-addressed store only holds
    single-core artifacts, so the derived key must never collide with
    (and never tier-0 peek into) the plain compile fingerprint, while
    identical multi-core requests still coalesce with each other.
    """
    fingerprint = fingerprint_request(
        program,
        machine_for(request),
        request.scheduler_config(),
        fth=request.resolved_fth,
        optimize=request.optimize,
        strict=request.strict,
    )
    if request.topology is not None:
        fingerprint = _digest(
            {
                "multicore": fingerprint,
                "topology": request.topology,
                "cores": request.cores,
                "link_bw": request.link_bw,
            }
        )
    if request.kind in ("compile", "schedule"):
        return f"compile:{fingerprint}", fingerprint
    if request.kind == "execute":
        engine_fp = _digest(
            {
                "execute": fingerprint,
                "epr_rate": (
                    "inf" if request.epr_rate is None
                    else request.epr_rate
                ),
                "seed": request.seed,
            }
        )
        return f"execute:{engine_fp}", fingerprint
    return f"lint:{fingerprint}", fingerprint


def metrics_from_result(result: CompileResult) -> Dict[str, Any]:
    metrics = {name: getattr(result, name) for name in _METRIC_FIELDS}
    metrics["diagnostics"] = len(result.diagnostics)
    return metrics


def module_summary(result: CompileResult) -> Dict[str, Any]:
    """Per-module blackbox summary at the machine's width (the
    ``schedule`` endpoint's extra payload)."""
    out: Dict[str, Any] = {}
    for name, profile in sorted(result.profiles.items()):
        entry: Dict[str, Any] = {"is_leaf": profile.is_leaf}
        if profile.length:
            width, cost = best_dim(profile.length, result.machine.k)
            entry["best_width"] = width
            entry["length"] = cost
        if profile.runtime:
            _, cost = best_dim(profile.runtime, result.machine.k)
            entry["runtime"] = cost
        out[name] = entry
    return out


def outcome_from_entry(
    request: ApiRequest,
    entry: ServiceEntry,
    spans: Optional[Dict[str, Dict[str, float]]] = None,
) -> Dict[str, Any]:
    """Shape a compile/schedule outcome from a service entry (fresh
    compute in a worker, or a server-side cache peek)."""
    outcome = {
        "status": "ok",
        "kind": request.kind,
        "fingerprint": entry.fingerprint,
        "cached": entry.cached,
        "compute_s": entry.elapsed_s,
        "spans": spans if spans is not None else entry.spans,
        "metrics": metrics_from_result(entry.result),
    }
    if request.kind == "schedule":
        outcome["modules"] = module_summary(entry.result)
    return outcome


def _error_outcome(request: ApiRequest, exc: BaseException) -> Dict[str, Any]:
    return {
        "status": "error",
        "kind": request.kind,
        "fingerprint": None,
        "cached": None,
        "compute_s": 0.0,
        "spans": {},
        "metrics": None,
        "error": {
            "kind": _error_kind(exc),
            "message": f"{type(exc).__name__}: {exc}",
        },
    }


def status_for_outcome(outcome: Dict[str, Any]) -> int:
    """The HTTP status an outcome dict maps onto."""
    if outcome.get("status") == "ok":
        return 200
    kind = (outcome.get("error") or {}).get("kind")
    if kind == "parse":
        return 400
    if kind == "analysis":
        return 422
    if kind == "timeout":
        return 504
    return 500


def _run_lint(request: ApiRequest) -> Dict[str, Any]:
    if request.scaffold is not None:
        lint = lint_scaffold_source(request.scaffold, filename="<request>")
        diags = lint.diagnostics
        if lint.program is not None:
            diags.extend(analyze_program(lint.program))
    elif request.qasm is not None:
        lint = lint_qasm_source(request.qasm, filename="<request>")
        diags = lint.diagnostics
        if lint.program is not None:
            diags.extend(analyze_program(lint.program))
    else:
        diags = analyze_program(build_program(request))
    report = json.loads(diags.to_json())
    return {
        "status": "ok",
        "kind": "lint",
        "fingerprint": None,
        "cached": None,
        "compute_s": 0.0,
        "spans": {},
        "metrics": None,
        "lint": report,
    }


def run_api_request(
    request_dict: Dict[str, Any],
    service: CompileService,
    use_cache: bool = True,
    allow_delay: bool = False,
) -> Dict[str, Any]:
    """Execute one request (worker side). Never raises.

    ``compile``/``schedule`` go through the content-addressed service
    (the worker may still score a disk hit written by a sibling);
    ``execute`` compiles then runs the discrete-event engine —
    disk-cached results carry no schedule bodies, so a cached compile
    recompiles once with the cache bypassed, exactly like the sweep
    runner's engine jobs; ``lint`` runs the front-end and program rule
    battery.
    """
    request = ApiRequest.from_dict(request_dict)
    started = time.perf_counter()
    try:
        if allow_delay and request.delay_s > 0:
            time.sleep(min(request.delay_s, _MAX_DELAY_S))
        with record_spans() as recorder:
            if request.kind == "lint":
                outcome = _run_lint(request)
            elif request.topology is not None:
                outcome = _run_multicore(request)
            else:
                program = build_program(request)
                entry = service.lookup(
                    program,
                    machine_for(request),
                    request.scheduler_config(),
                    fth=request.resolved_fth,
                    optimize=request.optimize,
                    strict=request.strict,
                    use_cache=use_cache,
                )
                if request.kind == "execute":
                    outcome = _run_execute(request, program, service, entry)
                else:
                    outcome = outcome_from_entry(request, entry)
        if outcome["status"] == "ok" and not outcome["spans"]:
            outcome["spans"] = recorder.to_dict()
    except Exception as exc:  # noqa: BLE001 - classified and reported
        outcome = _error_outcome(request, exc)
    outcome["elapsed_s"] = time.perf_counter() - started
    return outcome


def _run_multicore(request: ApiRequest) -> Dict[str, Any]:
    """Compile (and for ``execute`` kind, run) a multi-core request.

    Multi-core results carry live per-core schedules the artifact
    store cannot serialize, so this path bypasses the compile service
    and always computes fresh (``cached`` stays ``None``); coalescing
    still deduplicates concurrent identical requests upstream via the
    mixed fingerprint from :func:`request_key`.
    """
    import math

    from ..multicore import (
        MulticoreConfig,
        compile_and_schedule_multicore,
        execute_multicore_result,
        parse_topology,
    )

    program = build_program(request)
    _, fingerprint = request_key(request, program)
    diagnostics = 0
    if request.strict:
        # The input-stage analysis gate of the single-core strict
        # pipeline; schedule-level audits stay single-core for now.
        from ..analysis import AnalysisError as _AnalysisError

        diags = analyze_program(program)
        diagnostics = len(diags)
        if diags.has_errors:
            raise _AnalysisError(diags, stage="input")
    graph = parse_topology(request.topology, request.cores, request.link_bw)
    rate = (
        request.epr_rate if request.epr_rate is not None else math.inf
    )
    result = compile_and_schedule_multicore(
        program,
        machine_for(request),
        MulticoreConfig(graph=graph, link_epr_rate=rate),
        request.scheduler_config(),
        fth=request.resolved_fth,
        optimize=request.optimize,
    )
    metrics = {name: getattr(result, name) for name in _METRIC_FIELDS}
    metrics["diagnostics"] = diagnostics
    metrics.update(result.metrics())
    outcome = {
        "status": "ok",
        "kind": request.kind,
        "fingerprint": fingerprint,
        "cached": None,
        "compute_s": 0.0,
        "spans": {},
        "metrics": metrics,
    }
    if request.kind == "schedule":
        outcome["modules"] = {
            name: {
                "is_leaf": profile.is_leaf,
                **(
                    {
                        "best_width": best_dim(
                            profile.length, result.core_machine.k
                        )[0],
                        "length": best_dim(
                            profile.length, result.core_machine.k
                        )[1],
                        "runtime": best_dim(
                            profile.runtime, result.core_machine.k
                        )[1],
                    }
                    if profile.length
                    else {}
                ),
            }
            for name, profile in sorted(result.profiles.items())
        }
    if request.kind == "execute":
        from ..engine import EngineConfig

        execution = execute_multicore_result(
            result,
            config=EngineConfig(
                epr_rate=rate, seed=request.seed, collect_trace=False
            ),
        )
        metrics.update(execution.metrics())
    return outcome


def _run_execute(
    request: ApiRequest,
    program: Program,
    service: CompileService,
    entry: ServiceEntry,
) -> Dict[str, Any]:
    import math

    from ..engine import EngineConfig, execute_result

    result = entry.result
    if not result.schedules:
        fresh = service.lookup(
            program,
            machine_for(request),
            request.scheduler_config(),
            fth=request.resolved_fth,
            optimize=request.optimize,
            strict=request.strict,
            use_cache=False,
        )
        result = fresh.result
    config = EngineConfig(
        epr_rate=(
            request.epr_rate if request.epr_rate is not None else math.inf
        ),
        seed=request.seed,
        collect_trace=False,
    )
    execution = execute_result(result, config)
    outcome = outcome_from_entry(request, replace(entry, result=result))
    outcome["metrics"].update(execution.metrics())
    return outcome
