"""Load-test harness for the compile daemon.

Drives N concurrent clients over a **request mix** — a *storm* of
identical compiles (the coalescing/caching showcase) plus a set of
*distinct* compiles (real work fanning out across the warm pool) —
and reduces per-request latencies into a schema-versioned
``BENCH_service.json`` (``repro.bench-service/1``) that sits next to
``BENCH_perf.json`` and ``BENCH_sweep.json``:

* latency percentiles (p50/p95/p99), mean, max, and throughput;
* the **coalesce rate**: the fraction of storm requests that did
  *not* pay for a fresh compute — they attached to an in-flight twin
  or were served off the content-addressed store. A storm of R
  identical requests needs exactly one compute, so a healthy daemon
  scores ``(R-1)/R`` or better;
* cache hit rate over the whole mix, and the server's own
  ``/v1/stats`` snapshot.

The harness can also **spawn** the daemon itself (ephemeral port) and
optionally deliver ``SIGTERM`` while requests are in flight,
recording whether the drain finished every accepted request and the
process exited 0 — the graceful-shutdown acceptance check.
"""

from __future__ import annotations

import json
import math
import os
import re
import signal
import subprocess
import sys
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

import asyncio

from ..service.fingerprint import PIPELINE_VERSION
from .client import http_request

__all__ = [
    "SERVICE_SCHEMA",
    "LoadTestConfig",
    "run_loadtest",
    "run_loadtest_async",
    "build_service_payload",
    "validate_service_payload",
    "render_service_report",
    "spawn_server",
    "loadtest_with_spawn",
    "percentile",
]

#: Version tag of the ``BENCH_service.json`` document layout.
SERVICE_SCHEMA = "repro.bench-service/1"

#: Benchmarks cheap enough to compile in tens of milliseconds — the
#: distinct-request generator cycles (benchmark, k) pairs over these.
_FAST_BENCHMARKS = ("BF", "Grovers")

_LISTEN_RE = re.compile(
    r"listening on http://(?P<host>[^:]+):(?P<port>\d+)"
)


@dataclass(frozen=True)
class LoadTestConfig:
    """One load-test run specification."""

    host: str = "127.0.0.1"
    port: int = 8787
    clients: int = 8
    storm: int = 32
    distinct: int = 8
    rounds: int = 1
    endpoint: str = "compile"
    storm_request: Dict[str, Any] = field(
        default_factory=lambda: {
            "source": "BF",
            "k": 4,
            "scheduler": "lpfs",
        }
    )
    tenant: Optional[str] = None
    timeout: float = 120.0

    def distinct_requests(self) -> List[Dict[str, Any]]:
        """``distinct`` unique fast compile requests (never colliding
        with the storm request)."""
        out: List[Dict[str, Any]] = []
        k = 2
        while len(out) < self.distinct:
            for bench in _FAST_BENCHMARKS:
                candidate = {
                    "source": bench,
                    "k": k,
                    "scheduler": "lpfs",
                }
                if candidate != self.storm_request:
                    out.append(candidate)
                if len(out) >= self.distinct:
                    break
            k += 1
        return out


def percentile(values: List[float], q: float) -> float:
    """The ``q``-th percentile (nearest-rank) of ``values``."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


async def _drive(
    config: LoadTestConfig,
    work: "deque[Tuple[str, Dict[str, Any]]]",
    results: List[Dict[str, Any]],
) -> None:
    headers = (
        {"X-Tenant": config.tenant} if config.tenant else None
    )
    while True:
        try:
            group, request = work.popleft()
        except IndexError:
            return
        started = time.perf_counter()
        record: Dict[str, Any] = {
            "group": group,
            "status": None,
            "latency_s": None,
            "cached": None,
            "coalesced": False,
            "error": None,
        }
        try:
            response = await http_request(
                config.host,
                config.port,
                "POST",
                f"/v1/{config.endpoint}",
                body=request,
                headers=headers,
                timeout=config.timeout,
            )
            record["latency_s"] = time.perf_counter() - started
            record["status"] = response.status
            cache = response.headers.get("x-repro-cache")
            record["cached"] = None if cache in (None, "miss") else cache
            record["coalesced"] = (
                response.headers.get("x-repro-coalesced") == "1"
            )
            if response.status != 200:
                record["error"] = (
                    f"HTTP {response.status}: "
                    f"{response.body[:200].decode('utf-8', 'replace')}"
                )
        except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
            record["latency_s"] = time.perf_counter() - started
            record["error"] = f"{type(exc).__name__}: {exc}"
        results.append(record)


async def run_loadtest_async(
    config: LoadTestConfig,
) -> Dict[str, Any]:
    """Run the mix and build the ``BENCH_service.json`` payload."""
    work: "deque[Tuple[str, Dict[str, Any]]]" = deque()
    for _ in range(config.rounds):
        for _ in range(config.storm):
            work.append(("storm", dict(config.storm_request)))
        for request in config.distinct_requests():
            work.append(("distinct", request))
    results: List[Dict[str, Any]] = []
    started = time.perf_counter()
    await asyncio.gather(
        *(
            _drive(config, work, results)
            for _ in range(max(1, config.clients))
        )
    )
    wall_s = time.perf_counter() - started
    try:
        stats_response = await http_request(
            config.host, config.port, "GET", "/v1/stats", timeout=10.0
        )
        server_stats = stats_response.json()
    except (ConnectionError, OSError, asyncio.TimeoutError, ValueError):
        server_stats = None
    return build_service_payload(
        config, results, wall_s, server_stats
    )


def run_loadtest(config: LoadTestConfig) -> Dict[str, Any]:
    """Synchronous wrapper around :func:`run_loadtest_async`."""
    return asyncio.run(run_loadtest_async(config))


def build_service_payload(
    config: LoadTestConfig,
    results: List[Dict[str, Any]],
    wall_s: float,
    server_stats: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Reduce raw per-request records into the versioned document."""
    ok = [r for r in results if r["status"] == 200]
    errors = [r for r in results if r["status"] != 200]
    latencies_ms = [
        1000.0 * r["latency_s"] for r in ok if r["latency_s"] is not None
    ]
    storm = [r for r in results if r["group"] == "storm"]
    storm_ok = [r for r in storm if r["status"] == 200]
    storm_computes = sum(
        1
        for r in storm_ok
        if not r["coalesced"] and r["cached"] is None
    )
    storm_coalesced = sum(1 for r in storm_ok if r["coalesced"])
    storm_cached = sum(
        1 for r in storm_ok if r["cached"] is not None
    )
    coalesce_rate = (
        (len(storm_ok) - storm_computes) / len(storm_ok)
        if storm_ok
        else 0.0
    )
    cached_total = sum(1 for r in ok if r["cached"] is not None)
    return {
        "schema": SERVICE_SCHEMA,
        "pipeline_version": PIPELINE_VERSION,
        "created_unix": time.time(),
        "config": {
            "endpoint": config.endpoint,
            "clients": config.clients,
            "storm": config.storm,
            "distinct": config.distinct,
            "rounds": config.rounds,
            "storm_request": dict(config.storm_request),
        },
        "wall_s": wall_s,
        "throughput_rps": len(ok) / wall_s if wall_s > 0 else 0.0,
        "requests": {
            "total": len(results),
            "ok": len(ok),
            "errors": len(errors),
            "storm": len(storm),
            "distinct": len(results) - len(storm),
        },
        "latency_ms": {
            "p50": percentile(latencies_ms, 50),
            "p95": percentile(latencies_ms, 95),
            "p99": percentile(latencies_ms, 99),
            "mean": (
                sum(latencies_ms) / len(latencies_ms)
                if latencies_ms
                else 0.0
            ),
            "max": max(latencies_ms) if latencies_ms else 0.0,
        },
        "coalesce": {
            "storm_total": len(storm_ok),
            "storm_computes": storm_computes,
            "storm_coalesced": storm_coalesced,
            "storm_cached": storm_cached,
            "coalesce_rate": coalesce_rate,
        },
        "cache": {
            "hits": cached_total,
            "hit_rate": cached_total / len(ok) if ok else 0.0,
        },
        "server_stats": server_stats,
        "error_samples": [r["error"] for r in errors[:5]],
    }


def validate_service_payload(payload: Dict[str, Any]) -> List[str]:
    """Structural check of a ``BENCH_service.json`` document
    (hand-rolled, like the sweep/perf validators)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("schema") != SERVICE_SCHEMA:
        problems.append(
            f"schema: expected {SERVICE_SCHEMA!r}, got "
            f"{payload.get('schema')!r}"
        )

    def need(obj: Any, key: str, types: Any, where: str) -> Any:
        if not isinstance(obj, dict) or key not in obj:
            problems.append(f"{where}: missing key {key!r}")
            return None
        value = obj[key]
        if types is not None and not isinstance(value, types):
            problems.append(
                f"{where}.{key}: expected {types}, got "
                f"{type(value).__name__}"
            )
            return None
        return value

    need(payload, "pipeline_version", str, "$")
    need(payload, "created_unix", (int, float), "$")
    need(payload, "wall_s", (int, float), "$")
    need(payload, "throughput_rps", (int, float), "$")
    config = need(payload, "config", dict, "$")
    if config is not None:
        for key in ("clients", "storm", "distinct", "rounds"):
            need(config, key, int, "config")
    requests = need(payload, "requests", dict, "$")
    if requests is not None:
        for key in ("total", "ok", "errors", "storm", "distinct"):
            need(requests, key, int, "requests")
    latency = need(payload, "latency_ms", dict, "$")
    if latency is not None:
        for key in ("p50", "p95", "p99", "mean", "max"):
            need(latency, key, (int, float), "latency_ms")
    coalesce = need(payload, "coalesce", dict, "$")
    if coalesce is not None:
        for key in (
            "storm_total",
            "storm_computes",
            "storm_coalesced",
            "storm_cached",
        ):
            need(coalesce, key, int, "coalesce")
        need(coalesce, "coalesce_rate", (int, float), "coalesce")
    cache = need(payload, "cache", dict, "$")
    if cache is not None:
        need(cache, "hits", int, "cache")
        need(cache, "hit_rate", (int, float), "cache")
    drain = payload.get("drain")
    if drain is not None:
        need(drain, "exit_code", int, "drain")
        need(drain, "dropped", int, "drain")
    return problems


def render_service_report(payload: Dict[str, Any]) -> str:
    """Human-readable summary of a service benchmark document."""
    latency = payload["latency_ms"]
    requests = payload["requests"]
    coalesce = payload["coalesce"]
    lines = [
        (
            f"{requests['ok']}/{requests['total']} requests ok in "
            f"{payload['wall_s']:.2f}s "
            f"({payload['throughput_rps']:.1f} req/s)"
        ),
        (
            f"latency p50 {latency['p50']:.1f}ms  "
            f"p95 {latency['p95']:.1f}ms  "
            f"p99 {latency['p99']:.1f}ms  "
            f"max {latency['max']:.1f}ms"
        ),
        (
            f"storm: {coalesce['storm_total']} requests -> "
            f"{coalesce['storm_computes']} compute(s), "
            f"{coalesce['storm_coalesced']} coalesced, "
            f"{coalesce['storm_cached']} cache-served "
            f"(coalesce rate {coalesce['coalesce_rate']:.1%})"
        ),
        (
            f"cache: {payload['cache']['hits']} hit(s) "
            f"({payload['cache']['hit_rate']:.1%} of ok requests)"
        ),
    ]
    drain = payload.get("drain")
    if drain is not None:
        lines.append(
            f"drain: exit {drain['exit_code']}, "
            f"{drain['completed']} completed, "
            f"{drain['dropped']} dropped, "
            f"{drain['rejected']} rejected while draining"
        )
    if payload.get("error_samples"):
        lines.append(f"errors: {payload['error_samples']}")
    return "\n".join(lines)


# -- spawn mode ---------------------------------------------------------


def spawn_server(
    extra_argv: Optional[List[str]] = None,
    timeout: float = 30.0,
) -> Tuple["subprocess.Popen", str, int]:
    """Start ``python -m repro serve`` on an ephemeral port.

    Returns ``(process, host, port)`` once the daemon prints its
    listening line. The caller owns the process (terminate it!).
    """
    argv = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--port",
        "0",
    ] + list(extra_argv or [])
    env = dict(os.environ)
    env.setdefault("PYTHONUNBUFFERED", "1")
    proc = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + timeout
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            if proc.poll() is not None:
                raise RuntimeError(
                    f"server exited with {proc.returncode} before "
                    "listening"
                )
            time.sleep(0.05)
            continue
        match = _LISTEN_RE.search(line)
        if match:
            return proc, match.group("host"), int(match.group("port"))
    proc.terminate()
    raise RuntimeError("server did not report a listening address")


async def _term_during_load(
    config: LoadTestConfig, proc: "subprocess.Popen"
) -> Dict[str, Any]:
    """Fire a wave of slow requests, SIGTERM the daemon mid-flight,
    and account for every response."""
    request = dict(config.storm_request)
    request["delay_s"] = 0.5
    wave = max(4, config.clients)

    async def one(index: int) -> Dict[str, Any]:
        # Half the wave is identical (coalesces onto one in-flight
        # job), half is distinct work (occupies workers) — both kinds
        # must survive the drain.
        body = dict(request)
        if index % 2:
            body["k"] = 2 + (index % 3)
        try:
            response = await http_request(
                config.host,
                config.port,
                "POST",
                f"/v1/{config.endpoint}",
                body=body,
                timeout=config.timeout,
            )
            return {"status": response.status}
        except ConnectionRefusedError as exc:
            return {"status": None, "refused": True, "error": str(exc)}
        except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
            return {
                "status": None,
                "refused": False,
                "error": f"{type(exc).__name__}: {exc}",
            }

    tasks = [asyncio.ensure_future(one(i)) for i in range(wave)]
    # Let the wave reach the server before the TERM lands.
    await asyncio.sleep(0.6)
    proc.send_signal(signal.SIGTERM)
    results = await asyncio.gather(*tasks)
    exit_code = await asyncio.get_event_loop().run_in_executor(
        None, lambda: proc.wait(timeout=60)
    )
    completed = sum(1 for r in results if r["status"] == 200)
    rejected = sum(1 for r in results if r["status"] == 503)
    refused = sum(1 for r in results if r.get("refused"))
    dropped = (
        len(results) - completed - rejected - refused
        - sum(
            1
            for r in results
            if r["status"] not in (None, 200, 503)
        )
    )
    return {
        "exit_code": exit_code,
        "sent": len(results),
        "completed": completed,
        "rejected": rejected,
        "refused": refused,
        "dropped": dropped,
    }


def loadtest_with_spawn(
    config: LoadTestConfig,
    serve_argv: Optional[List[str]] = None,
    term_during_load: bool = False,
) -> Dict[str, Any]:
    """Spawn a daemon, run the mix against it, optionally TERM it
    mid-load, and fold the drain outcome into the payload."""
    serve_argv = list(serve_argv or [])
    if term_during_load and "--allow-delay" not in serve_argv:
        serve_argv.append("--allow-delay")
    proc, host, port = spawn_server(serve_argv)
    config = replace(config, host=host, port=port)
    try:
        payload = run_loadtest(config)
        if term_during_load:
            payload["drain"] = asyncio.run(
                _term_during_load(config, proc)
            )
        else:
            proc.send_signal(signal.SIGTERM)
            payload["drain"] = {
                "exit_code": proc.wait(timeout=60),
                "sent": 0,
                "completed": 0,
                "rejected": 0,
                "refused": 0,
                "dropped": 0,
            }
    finally:
        if proc.poll() is None:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
    return payload
