"""A minimal asyncio HTTP/1.1 client for the daemon.

Stdlib-only counterpart of :mod:`.http`, used by the ``loadtest``
harness, the test-suite, and CI smoke jobs. One request per
connection (``Connection: close``): the loadtest's accounting wants
each request to succeed or fail independently of connection reuse,
and the server is in the same process or on localhost, where connect
cost is noise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, AsyncIterator, Dict, Optional, Tuple

import asyncio

__all__ = ["ClientResponse", "http_request", "http_stream"]


@dataclass
class ClientResponse:
    """One complete HTTP response."""

    status: int
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Any:
        return json.loads(self.body.decode("utf-8"))


def _render_request(
    method: str,
    path: str,
    host: str,
    body: bytes,
    headers: Optional[Dict[str, str]],
) -> bytes:
    head = {
        "Host": host,
        "Connection": "close",
        "Content-Length": str(len(body)),
    }
    if headers:
        head.update(headers)
    lines = [f"{method} {path} HTTP/1.1"]
    lines.extend(f"{name}: {value}" for name, value in head.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


async def _read_head(
    reader: "asyncio.StreamReader",
) -> Tuple[int, Dict[str, str]]:
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers


def _encode_body(body: Any) -> bytes:
    if body is None:
        return b""
    if isinstance(body, bytes):
        return body
    return json.dumps(body).encode("utf-8")


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Any = None,
    headers: Optional[Dict[str, str]] = None,
    timeout: float = 60.0,
) -> ClientResponse:
    """One request/response exchange (JSON-encodes dict bodies)."""

    async def exchange() -> ClientResponse:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(
                _render_request(
                    method, path, host, _encode_body(body), headers
                )
            )
            await writer.drain()
            status, resp_headers = await _read_head(reader)
            if (
                resp_headers.get("transfer-encoding", "").lower()
                == "chunked"
            ):
                chunks = []
                async for chunk in _iter_chunks(reader):
                    chunks.append(chunk)
                payload = b"".join(chunks)
            elif "content-length" in resp_headers:
                payload = await reader.readexactly(
                    int(resp_headers["content-length"])
                )
            else:
                payload = await reader.read()
            return ClientResponse(status, resp_headers, payload)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    return await asyncio.wait_for(exchange(), timeout)


async def _iter_chunks(
    reader: "asyncio.StreamReader",
) -> AsyncIterator[bytes]:
    while True:
        size_line = await reader.readline()
        size = int(size_line.strip() or b"0", 16)
        if size == 0:
            await reader.readline()  # trailing CRLF after last chunk
            return
        data = await reader.readexactly(size)
        await reader.readexactly(2)  # chunk CRLF
        yield data


async def http_stream(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Any = None,
    headers: Optional[Dict[str, str]] = None,
    timeout: float = 60.0,
) -> Tuple[int, Dict[str, str], "asyncio.StreamWriter", AsyncIterator[Any]]:
    """Open a streaming exchange; yields parsed JSON lines.

    Returns ``(status, headers, writer, lines)`` — the caller must
    exhaust ``lines`` (or close ``writer``). ``timeout`` bounds each
    individual read, not the whole stream.
    """
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        _render_request(method, path, host, _encode_body(body), headers)
    )
    await writer.drain()
    status, resp_headers = await asyncio.wait_for(
        _read_head(reader), timeout
    )

    async def lines() -> AsyncIterator[Any]:
        buffer = b""
        try:
            if (
                resp_headers.get("transfer-encoding", "").lower()
                == "chunked"
            ):
                iterator = _iter_chunks(reader)
                while True:
                    try:
                        chunk = await asyncio.wait_for(
                            iterator.__anext__(), timeout
                        )
                    except StopAsyncIteration:
                        break
                    buffer += chunk
                    while b"\n" in buffer:
                        line, buffer = buffer.split(b"\n", 1)
                        if line.strip():
                            yield json.loads(line.decode("utf-8"))
            else:
                payload = await asyncio.wait_for(
                    reader.read(), timeout
                )
                for raw in payload.split(b"\n"):
                    if raw.strip():
                        yield json.loads(raw.decode("utf-8"))
            if buffer.strip():
                yield json.loads(buffer.decode("utf-8"))
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    return status, resp_headers, writer, lines()
