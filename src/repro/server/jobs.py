"""Job lifecycle, request coalescing, and per-tenant rate limits.

A :class:`Job` is one unit of compile-service work. Jobs are keyed by
the request's content fingerprint (see
:func:`repro.server.api.request_key`); the :class:`JobRegistry` keeps
an **in-flight index** over those keys so a request whose twin is
already queued or running *attaches* to the existing job instead of
spawning another compute — all waiters then share the single outcome.
This is the coalescing the batch cache cannot provide: the cache
amortizes *completed* work, coalescing amortizes work that is still
in flight.

Progress events (worker start, span completions) are appended to the
job and fanned out to per-subscriber :class:`asyncio.Queue` streams,
which the HTTP layer renders as chunked JSON lines.

Rate limiting is a classic token bucket per tenant (the ``X-Tenant``
request header; absent means the anonymous tenant): ``rate`` tokens
per second refill up to a ``burst`` cap, one token per admitted
request, and a rejected request learns how long until a token is
available via ``Retry-After``.
"""

from __future__ import annotations

import itertools
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import asyncio

__all__ = [
    "Job",
    "JobRegistry",
    "RateLimiter",
    "TokenBucket",
]

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
ERROR = "error"
TIMEOUT = "timeout"

_TERMINAL = (DONE, ERROR, TIMEOUT)


@dataclass
class Job:
    """One in-flight (or recently finished) unit of service work."""

    id: str
    key: str
    kind: str
    fingerprint: Optional[str]
    request: Dict[str, Any]
    tenant: str = "anonymous"
    state: str = QUEUED
    created_unix: float = field(default_factory=time.time)
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    #: How many extra requests attached to this job (0 = no twins).
    coalesced: int = 0
    events: List[Dict[str, Any]] = field(default_factory=list)
    outcome: Optional[Dict[str, Any]] = None
    done: "asyncio.Event" = field(default_factory=asyncio.Event)
    subscribers: List["asyncio.Queue"] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.state in _TERMINAL

    def subscribe(self) -> "asyncio.Queue":
        """A queue that replays past events, then receives live ones.

        The stream is terminated by a ``None`` sentinel once the job
        reaches a terminal state (pushed immediately for jobs that
        already finished).
        """
        queue: "asyncio.Queue" = asyncio.Queue()
        for event in self.events:
            queue.put_nowait(event)
        if self.finished:
            queue.put_nowait(None)
        else:
            self.subscribers.append(queue)
        return queue

    def publish(self, event: Dict[str, Any]) -> None:
        """Record a progress event and fan it out to subscribers."""
        event = {"seq": len(self.events), **event}
        self.events.append(event)
        for queue in self.subscribers:
            queue.put_nowait(event)

    def mark_running(self) -> None:
        if self.state == QUEUED:
            self.state = RUNNING
            self.started_unix = time.time()

    def finish(self, state: str, outcome: Dict[str, Any]) -> None:
        """Transition to a terminal state exactly once.

        Late duplicate completions (e.g. a worker racing the timeout
        watchdog that just recycled it) are ignored.
        """
        if self.finished:
            return
        self.state = state
        self.outcome = outcome
        self.finished_unix = time.time()
        self.done.set()
        for queue in self.subscribers:
            queue.put_nowait(None)
        self.subscribers.clear()

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe status document (the ``GET /v1/jobs/<id>`` body)."""
        doc: Dict[str, Any] = {
            "job": self.id,
            "kind": self.kind,
            "state": self.state,
            "fingerprint": self.fingerprint,
            "tenant": self.tenant,
            "coalesced": self.coalesced,
            "created_unix": self.created_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "events": list(self.events),
        }
        if self.outcome is not None:
            doc["outcome"] = self.outcome
        return doc


class JobRegistry:
    """All jobs the daemon knows about, with the coalescing index.

    Finished jobs are retained (bounded by ``history``) so
    ``GET /v1/jobs/<id>`` keeps answering after completion; the oldest
    finished jobs age out first. In-flight jobs are never evicted.
    """

    def __init__(self, history: int = 256) -> None:
        self.history = history
        self.jobs: "OrderedDict[str, Job]" = OrderedDict()
        self.inflight: Dict[str, Job] = {}
        self._ids = itertools.count(1)
        self.submitted = 0
        self.coalesced = 0
        self.completed = 0
        self.failed = 0
        self.timeouts = 0

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def active(self) -> List[Job]:
        return list(self.inflight.values())

    @property
    def active_count(self) -> int:
        return len(self.inflight)

    def get_or_create(
        self,
        key: str,
        kind: str,
        fingerprint: Optional[str],
        request: Dict[str, Any],
        tenant: str,
    ) -> Tuple[Job, bool]:
        """The in-flight job for ``key``, or a fresh one.

        Returns ``(job, created)``; ``created=False`` means the caller
        coalesced onto existing work.
        """
        job = self.inflight.get(key)
        if job is not None and not job.finished:
            job.coalesced += 1
            self.coalesced += 1
            return job, False
        job = Job(
            id=f"j{next(self._ids):06d}",
            key=key,
            kind=kind,
            fingerprint=fingerprint,
            request=request,
            tenant=tenant,
        )
        self.jobs[job.id] = job
        self.inflight[key] = job
        self.submitted += 1
        self._prune()
        return job, True

    def finish(self, job: Job, state: str, outcome: Dict[str, Any]) -> None:
        """Complete a job and release its coalescing slot."""
        if job.finished:
            return
        job.finish(state, outcome)
        if self.inflight.get(job.key) is job:
            del self.inflight[job.key]
        if state == DONE:
            self.completed += 1
        elif state == TIMEOUT:
            self.timeouts += 1
        else:
            self.failed += 1

    def _prune(self) -> None:
        if len(self.jobs) <= self.history:
            return
        for job_id in list(self.jobs):
            if len(self.jobs) <= self.history:
                break
            if self.jobs[job_id].finished:
                del self.jobs[job_id]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "submitted": self.submitted,
            "coalesced": self.coalesced,
            "completed": self.completed,
            "failed": self.failed,
            "timeouts": self.timeouts,
            "active": self.active_count,
        }


@dataclass
class TokenBucket:
    """One tenant's admission budget: ``rate`` tokens/s up to
    ``burst``."""

    rate: float
    burst: float
    tokens: float = field(default=-1.0)
    updated: float = field(default=-1.0)

    def acquire(self, now: Optional[float] = None) -> Tuple[bool, float]:
        """Try to take one token.

        Returns ``(allowed, retry_after_s)``; ``retry_after_s`` is 0
        when allowed, else the time until one token will be available.
        """
        if now is None:
            now = time.monotonic()
        if self.updated < 0:
            self.tokens = self.burst
            self.updated = now
        self.tokens = min(
            self.burst, self.tokens + (now - self.updated) * self.rate
        )
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / self.rate


class RateLimiter:
    """Per-tenant token buckets; ``rate=None`` disables limiting."""

    def __init__(
        self,
        rate: Optional[float],
        burst: Optional[float] = None,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate
        self.burst = burst if burst is not None else (
            max(1.0, 2 * rate) if rate is not None else None
        )
        if self.burst is not None and self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        self.buckets: Dict[str, TokenBucket] = {}
        self.rejections = 0

    def acquire(
        self, tenant: str, now: Optional[float] = None
    ) -> Tuple[bool, float]:
        if self.rate is None:
            return True, 0.0
        bucket = self.buckets.get(tenant)
        if bucket is None:
            bucket = self.buckets[tenant] = TokenBucket(
                rate=self.rate, burst=self.burst
            )
        allowed, retry_after = bucket.acquire(now)
        if not allowed:
            self.rejections += 1
        return allowed, retry_after
