"""End-to-end toolflow: decompose -> flatten -> schedule -> account.

This is the ScaffCC-equivalent driver (Section 3): a hierarchical
program goes through gate decomposition and threshold flattening, leaf
modules are fine-scheduled (RCP or LPFS) at every candidate width,
movement is derived against the machine model, and non-leaf modules are
coarse-scheduled over flexible blackbox dimensions. The result carries
everything the paper's figures report: schedule lengths, communication-
aware runtimes, speedups against the sequential and naive-movement
baselines, and the estimated critical path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .analysis import (
    AnalysisError,
    Diagnostic,
    DiagnosticSet,
    analyze_deep,
    analyze_program,
    audit_profile_bounds,
    audit_schedule,
)
from .arch.machine import (
    GATE_CYCLES,
    MultiSIMD,
    TELEPORT_CYCLES,
)
from .core.dag import DependenceDAG
from .core.module import Program
from .instrument import span
from .passes.decompose import (
    DecomposeConfig,
    decompose_module,
    decompose_program,
)
from .passes.flatten import DEFAULT_FTH, FlattenResult, flatten_program
from .passes.manager import PassManager
from .passes.optimize import optimize_program
from .passes.resource import estimate_resources, total_gate_counts
from .passes.stream import decomposed_gate_counts, leaf_stream, plan_flatten
from .sched.coarse import best_dim, coarse_length_profile
from .sched.comm import CommStats, derive_movement, naive_runtime
from .sched.lpfs import schedule_lpfs
from .sched.metrics import (
    comm_speedup,
    hierarchical_critical_path,
    parallel_speedup,
)
from .sched.rcp import schedule_rcp
from .sched.sequential import schedule_sequential
from .sched.stream import (
    StreamColumns,
    StreamedSchedule,
    build_columns,
    derive_movement_stream,
    schedule_columns,
)
from .sched.types import Schedule

__all__ = [
    "SchedulerConfig",
    "ModuleProfile",
    "CompileResult",
    "compile_and_schedule",
    "StreamedCompileResult",
    "compile_and_schedule_streamed",
    "DEFAULT_WINDOW",
]

#: Default ingestion window for the streaming pipeline: enough ops per
#: chunk that chunking overhead vanishes, small enough that boxed-op
#: peak memory stays in the tens of MiB.
DEFAULT_WINDOW = 65536


@dataclass(frozen=True)
class SchedulerConfig:
    """Fine-grained scheduler selection and options.

    ``algorithm`` is ``"sequential"`` (the one-op-per-timestep baseline
    the paper's speedups are measured against), ``"rcp"`` or
    ``"lpfs"``. The LPFS options default to the paper's experimental
    configuration (l=1, SIMD and Refill on).
    """

    algorithm: str = "lpfs"
    lpfs_l: int = 1
    lpfs_simd: bool = True
    lpfs_refill: bool = True

    def __post_init__(self) -> None:
        if self.algorithm not in ("sequential", "rcp", "lpfs"):
            raise ValueError(
                f"unknown scheduler {self.algorithm!r} "
                "(expected 'sequential', 'rcp' or 'lpfs')"
            )

    def schedule(self, dag: DependenceDAG, k: int, d: Optional[int]) -> Schedule:
        if self.algorithm == "sequential":
            return schedule_sequential(dag, k=k, d=d)
        if self.algorithm == "rcp":
            return schedule_rcp(dag, k=k, d=d)
        return schedule_lpfs(
            dag,
            k=k,
            d=d,
            l=min(self.lpfs_l, k),
            simd=self.lpfs_simd,
            refill=self.lpfs_refill,
        )


@dataclass
class ModuleProfile:
    """Blackbox dimensions of one module at every candidate width.

    ``length`` maps width -> schedule cycles (communication-free);
    ``runtime`` maps width -> communication-aware cycles.
    """

    name: str
    is_leaf: bool
    length: Dict[int, int] = field(default_factory=dict)
    runtime: Dict[int, int] = field(default_factory=dict)
    comm: Dict[int, CommStats] = field(default_factory=dict)


@dataclass
class CompileResult:
    """Everything the evaluation figures are computed from."""

    program: Program
    machine: MultiSIMD
    scheduler: SchedulerConfig
    profiles: Dict[str, ModuleProfile]
    schedules: Dict[str, Schedule]
    total_gates: int
    critical_path: int
    flattened_percent: float
    #: Diagnostics gathered by strict-mode analysis (empty otherwise).
    diagnostics: Tuple[Diagnostic, ...] = ()
    #: Leaf modules whose schedule replay was proven permutation-
    #: preserving by the reversible simulator (``verify=True`` only).
    verified: Tuple[str, ...] = ()

    @property
    def entry_profile(self) -> ModuleProfile:
        return self.profiles[self.program.entry]

    @property
    def schedule_length(self) -> int:
        """Whole-program schedule length at the machine's full width."""
        _, cost = best_dim(self.entry_profile.length, self.machine.k)
        return cost

    @property
    def runtime(self) -> int:
        """Whole-program communication-aware runtime at full width."""
        _, cost = best_dim(self.entry_profile.runtime, self.machine.k)
        return cost

    # -- the paper's headline metrics ---------------------------------

    @property
    def parallel_speedup(self) -> float:
        """Figure 6: speedup over sequential, communication-free."""
        return parallel_speedup(self.total_gates, self.schedule_length)

    @property
    def cp_speedup(self) -> float:
        """Figure 6's theoretical bound from the estimated critical
        path."""
        return parallel_speedup(self.total_gates, self.critical_path)

    @property
    def comm_aware_speedup(self) -> float:
        """Figures 7-9: speedup over the sequential naive movement
        model."""
        return comm_speedup(self.total_gates, self.runtime)

    @property
    def naive_runtime(self) -> int:
        return naive_runtime(self.total_gates)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompileResult({self.program.entry!r}, "
            f"{self.scheduler.algorithm}, {self.machine}, "
            f"gates={self.total_gates}, len={self.schedule_length}, "
            f"runtime={self.runtime})"
        )


def _verify_leaf(
    name: str,
    program_order,
    replay_order,
    qubits,
) -> None:
    """Replay-vs-program-order semantic gate for one leaf: bit-identical
    output on every lane or a :class:`VerificationError` carrying the
    minimal counterexample. Import is local so paper-scale compiles that
    never verify never touch the sim package."""
    from .sim.reversible import VerificationError, verify_equivalent

    report = verify_equivalent(
        program_order, replay_order, qubits, label=name
    )
    if not report.ok:
        raise VerificationError(name, report)


def _candidate_widths(k: int) -> List[int]:
    """Widths at which blackbox dimensions are computed: exhaustive for
    small k, powers of two (plus k) for large region counts."""
    if k <= 8:
        return list(range(1, k + 1))
    widths = [1]
    w = 2
    while w < k:
        widths.append(w)
        w *= 2
    widths.append(k)
    return widths


def compile_and_schedule(
    program: Program,
    machine: MultiSIMD,
    scheduler: Optional[SchedulerConfig] = None,
    fth: int = DEFAULT_FTH,
    decompose: bool = True,
    decompose_config: Optional[DecomposeConfig] = None,
    optimize: bool = False,
    keep_schedules: bool = True,
    strict: bool = False,
    verify: bool = False,
) -> CompileResult:
    """Run the full toolflow on ``program`` for ``machine``.

    Args:
        program: hierarchical input program (Scaffold-level gates OK).
        machine: target Multi-SIMD(k,d) configuration; its
            ``local_memory`` setting controls the scratchpad refinement.
        scheduler: fine-grained scheduler selection (default LPFS with
            the paper's options).
        fth: flattening threshold in expanded ops (Section 3.1.1).
        decompose: lower to the QASM subset first (disable only for
            programs already expressed in primitives).
        decompose_config: rotation-synthesis configuration.
        optimize: run the peephole pass (inverse cancellation +
            rotation merging) before decomposition.
        keep_schedules: retain each leaf's full-width schedule for
            inspection (memory permitting).
        strict: run the static analyzer (:mod:`repro.analysis`)
            between passes — on the input program and again after
            decomposition/flattening — and audit every retained
            schedule; raise :class:`~repro.analysis.AnalysisError` on
            any ERROR-severity finding. All collected diagnostics
            (warnings included) are attached to the result's
            ``diagnostics`` field.
        verify: prove every retained full-width leaf schedule
            permutation-preserving — replay it through the bit-sliced
            reversible simulator and require bit-identical output to
            the leaf body in program order, over all inputs (small
            leaves) or a seeded sample. Requires the post-pipeline
            leaves to stay inside the classical-permutation gate subset
            (in practice: ``decompose=False``); raises
            :class:`~repro.sim.reversible.NonReversibleOpError`
            otherwise, and
            :class:`~repro.sim.reversible.VerificationError` on a
            semantic mismatch. Verified module names land on the
            result's ``verified`` field.

    Returns:
        a :class:`CompileResult`.

    Raises:
        AnalysisError: in strict mode, when analysis finds errors.
    """
    scheduler = scheduler or SchedulerConfig()
    collected = DiagnosticSet()

    def strict_gate(prog: Program, stage: str) -> None:
        with span("toolflow:analysis"):
            diags = analyze_program(prog)
        collected.extend(diags)
        if diags.has_errors:
            raise AnalysisError(diags, stage=stage)

    if strict:
        strict_gate(program, "input")

    # The front-end pipeline runs through the PassManager so every pass
    # gets a ``pass:*`` instrumentation span and a validation step.
    flat_holder: Dict[str, FlattenResult] = {}

    def _flatten(prog: Program) -> Program:
        result = flatten_program(prog, fth=fth)
        flat_holder["result"] = result
        return result.program

    pipeline = PassManager()
    if optimize:
        pipeline.add("optimize", lambda prog: optimize_program(prog)[0])
    if decompose:
        pipeline.add(
            "decompose",
            lambda prog: decompose_program(prog, decompose_config),
        )
    pipeline.add("flatten", _flatten)
    program = pipeline.run(program)
    flat = flat_holder["result"]
    if strict:
        strict_gate(program, "flattened")

    k, d = machine.k, machine.d
    widths = _candidate_widths(k)
    profiles: Dict[str, ModuleProfile] = {}
    schedules: Dict[str, Schedule] = {}
    verified_names: List[str] = []

    with span("toolflow:schedule"):
        for name in program.topological_order():
            mod = program.module(name)
            profile = ModuleProfile(name, mod.is_leaf)
            if mod.is_leaf:
                dag = DependenceDAG(list(mod.body))
                for w in widths:
                    sched = scheduler.schedule(dag, k=w, d=d)
                    stats = derive_movement(sched, machine.with_k(w))
                    profile.length[w] = max(sched.length, 1)
                    profile.runtime[w] = max(stats.runtime, 1)
                    profile.comm[w] = stats
                    if keep_schedules and w == k:
                        schedules[name] = sched
                    if verify and w == k:
                        from .sim.reversible import schedule_ops

                        with span("toolflow:verify"):
                            _verify_leaf(
                                name,
                                mod.operations(),
                                schedule_ops(sched),
                                mod.qubits(),
                            )
                        verified_names.append(name)
            else:
                # Sorted for cross-process determinism: callees() is a
                # set, and set iteration order varies with the hash
                # seed.
                callees = sorted(mod.callees())
                length_dims = {c: profiles[c].length for c in callees}
                runtime_dims = {c: profiles[c].runtime for c in callees}
                lengths = coarse_length_profile(
                    mod, length_dims, widths, gate_cost=GATE_CYCLES,
                    call_overhead=0,
                )
                runtimes = coarse_length_profile(
                    mod,
                    runtime_dims,
                    widths,
                    gate_cost=GATE_CYCLES + TELEPORT_CYCLES,
                    call_overhead=TELEPORT_CYCLES,
                )
                for w in widths:
                    profile.length[w] = max(lengths[w], 1)
                    profile.runtime[w] = max(runtimes[w], 1)
            profiles[name] = profile

    if strict:
        with span("toolflow:analysis"):
            audit = DiagnosticSet()
            # Structural/physical audit plus the QL5xx bounds
            # sanitizer on every retained full-width schedule, fed the
            # realized movement stats so communication volume is
            # checked too.
            for name, sched in schedules.items():
                audit.extend(
                    audit_schedule(
                        sched,
                        machine,
                        module=name,
                        deep=True,
                        comm=profiles[name].comm.get(k),
                    )
                )
            # Interprocedural battery (QL4xx lifetime + QL501 fit) on
            # the scheduled (post-pass) program, then the blackbox
            # profiles of every module against the static bounds.
            deep = analyze_deep(program, machine=machine)
            audit.extend(deep.diagnostics)
            for name, profile in profiles.items():
                summary = deep.context.resources.get(name)
                if summary is None:
                    continue
                audit.extend(
                    audit_profile_bounds(
                        profile.length,
                        profile.runtime,
                        summary,
                        module=name,
                    )
                )
        collected.extend(audit)
        if audit.has_errors:
            raise AnalysisError(audit, stage="schedule")

    with span("toolflow:estimate"):
        resources = estimate_resources(program)
        cp = hierarchical_critical_path(program)
    return CompileResult(
        program=program,
        machine=machine,
        scheduler=scheduler,
        profiles=profiles,
        schedules=schedules,
        total_gates=resources.total_gates,
        critical_path=max(cp[program.entry], 1),
        flattened_percent=flat.percent_flattened,
        diagnostics=tuple(collected.sorted()),
        verified=tuple(verified_names),
    )


@dataclass
class StreamedCompileResult(CompileResult):
    """A :class:`CompileResult` produced by the streaming pipeline.

    ``program`` is the *input* (hierarchical, unexpanded) program —
    the streamed pipeline never rewrites it — and ``schedules`` is
    empty; retained leaf schedules live in ``stream_schedules`` /
    ``columns`` in their compact columnar form (inflate via
    :func:`repro.sched.stream.to_schedule`, export via
    :func:`repro.service.stream_io.write_schedule_stream`). All metric
    fields and properties carry the same values the materialized
    pipeline computes — ``tests/test_stream_sched.py`` asserts profile,
    gate-count and critical-path equality per module.
    """

    window: Optional[int] = DEFAULT_WINDOW
    stream_schedules: Dict[str, StreamedSchedule] = field(
        default_factory=dict
    )
    columns: Dict[str, StreamColumns] = field(default_factory=dict)
    leaf_comm: Dict[str, CommStats] = field(default_factory=dict)


def compile_and_schedule_streamed(
    program: Program,
    machine: MultiSIMD,
    scheduler: Optional[SchedulerConfig] = None,
    fth: int = DEFAULT_FTH,
    decompose: bool = True,
    decompose_config: Optional[DecomposeConfig] = None,
    optimize: bool = False,
    window: Optional[int] = DEFAULT_WINDOW,
    keep_schedules: bool = True,
    widths: str = "all",
    verify: bool = False,
) -> StreamedCompileResult:
    """The streaming counterpart of :func:`compile_and_schedule`.

    Produces metric-identical results without ever materializing a
    leaf body: flattening *decisions* come from hierarchical gate
    counts (:func:`~repro.passes.stream.plan_flatten`), leaf bodies are
    lazily expanded (:func:`~repro.passes.stream.leaf_stream`) and
    ingested into columns ``window`` ops at a time, and the columnar
    scheduler mirrors emit bit-identical schedules to the fast path.
    Peak memory is O(gates * ~50 bytes) for the columns instead of
    O(gates * ~1 KiB) for boxed ops — and independent of ``window``,
    which only bounds the boxed-op transient during ingestion.

    Args:
        window: ingestion chunk size in ops (None = materialize each
            leaf's op stream whole during ingestion; columns are
            identical either way).
        keep_schedules: retain each leaf's full-width streamed schedule
            and columns on the result (compact; needed for export and
            engine execution).
        widths: ``"all"`` profiles every candidate width like the
            materialized pipeline; ``"entry"`` profiles only the
            machine's full width ``k`` — the paper-scale mode, where
            one width already costs minutes and entry-level metrics
            are what the scale run reports.
        verify: same contract as :func:`compile_and_schedule` — each
            full-width streamed schedule is replayed through the
            reversible simulator against the leaf's op stream in
            program order, one streaming pass per side.
    """
    scheduler = scheduler or SchedulerConfig()
    if optimize:
        program = optimize_program(program)[0]
    with span("toolflow:stream-plan"):
        if decompose:
            totals = decomposed_gate_counts(program, decompose_config)
        else:
            totals = total_gate_counts(program)
        plan = plan_flatten(program, totals, fth)

    k, d = machine.k, machine.d
    if widths == "all":
        width_list = _candidate_widths(k)
    elif widths == "entry":
        width_list = [k]
    else:
        raise ValueError(f"widths must be 'all' or 'entry', got {widths!r}")

    synth = (
        (decompose_config or DecomposeConfig()).synthesizer()
        if decompose
        else None
    )
    profiles: Dict[str, ModuleProfile] = {}
    stream_schedules: Dict[str, StreamedSchedule] = {}
    columns: Dict[str, StreamColumns] = {}
    leaf_comm: Dict[str, CommStats] = {}
    cp: Dict[str, int] = {}
    verified_names: List[str] = []

    with span("toolflow:stream-schedule"):
        for name in plan.order:
            mod = program.module(name)
            if plan.is_leaf_after(name):
                profile = ModuleProfile(name, True)
                stream = leaf_stream(
                    program,
                    name,
                    decompose=decompose,
                    decompose_config=decompose_config,
                    length_hint=totals[name],
                )
                cols = build_columns(stream, window=window)
                cp[name] = cols.critical_path_length()
                for w in width_list:
                    ssched = schedule_columns(
                        cols,
                        scheduler.algorithm,
                        w,
                        d,
                        lpfs_l=scheduler.lpfs_l,
                        lpfs_simd=scheduler.lpfs_simd,
                        lpfs_refill=scheduler.lpfs_refill,
                    )
                    stats = derive_movement_stream(
                        cols, ssched, machine.with_k(w)
                    )
                    profile.length[w] = max(ssched.length, 1)
                    profile.runtime[w] = max(stats.runtime, 1)
                    profile.comm[w] = stats
                    if keep_schedules and w == k:
                        stream_schedules[name] = ssched
                        leaf_comm[name] = stats
                    if verify and w == k:
                        from .sim.reversible import streamed_schedule_ops

                        with span("toolflow:verify"):
                            _verify_leaf(
                                name,
                                iter(stream),
                                streamed_schedule_ops(cols, ssched),
                                cols.qubits,
                            )
                        verified_names.append(name)
                cols.release_graph()
                if keep_schedules:
                    columns[name] = cols
            else:
                profile = ModuleProfile(name, False)
                dmod = decompose_module(mod, synth) if synth else mod
                callees = sorted(dmod.callees())
                length_dims = {c: profiles[c].length for c in callees}
                runtime_dims = {c: profiles[c].runtime for c in callees}
                lengths = coarse_length_profile(
                    dmod, length_dims, width_list, gate_cost=GATE_CYCLES,
                    call_overhead=0,
                )
                runtimes = coarse_length_profile(
                    dmod,
                    runtime_dims,
                    width_list,
                    gate_cost=GATE_CYCLES + TELEPORT_CYCLES,
                    call_overhead=TELEPORT_CYCLES,
                )
                for w in width_list:
                    profile.length[w] = max(lengths[w], 1)
                    profile.runtime[w] = max(runtimes[w], 1)
                # Mirror of hierarchical_critical_path for one module:
                # a call weighs iterations * CP(callee).
                weights = [
                    1
                    if not hasattr(stmt, "callee")
                    else stmt.iterations * cp[stmt.callee]
                    for stmt in dmod.body
                ]
                cp[name] = DependenceDAG(
                    dmod.body, weights=weights
                ).critical_path_length()
            profiles[name] = profile

    return StreamedCompileResult(
        program=program,
        machine=machine,
        scheduler=scheduler,
        profiles=profiles,
        schedules={},
        total_gates=totals[program.entry],
        critical_path=max(cp[program.entry], 1),
        flattened_percent=plan.percent_flattened,
        window=window,
        stream_schedules=stream_schedules,
        columns=columns,
        leaf_comm=leaf_comm,
        verified=tuple(verified_names),
    )
