"""Static resource/communication bounds (codes ``QL501``-``QL504``).

A bottom-up resource analysis (through the :mod:`.dataflow` engine)
derives, per module, machine-independent bounds the paper's whole
argument rests on being able to know at compile time:

* ``ops`` — the iteration-weighted operation count (exact);
* ``op_footprint`` — distinct qubits touched by direct operations
  (for a leaf, exactly the qubits its schedule must move in from
  global memory);
* ``width_ub`` — an upper bound on achievable SIMD width: no timestep
  can run more concurrent regions than there are operations or
  qubit-disjoint operands (``QL205``), at any point of the hierarchy;
* ``chain`` / ``param_chains`` — per-qubit serialisation lower bounds:
  every operation acting on one physical qubit occupies a distinct
  timestep, and the counts compose across calls through the positional
  parameter binding (iterated calls multiply the per-parameter
  counts — the same physical qubit serialises every repetition);
* ``comm_lb`` — a communication-volume lower bound per frame: every
  qubit starts in global memory, so a leaf's execution teleports at
  least its footprint (one EPR pair per teleport).

The bounds feed three consumers:

* ``QL501`` (deep rule) — machine fit: the program's width upper
  bound is below the machine's ``k``, so regions can never all be
  occupied (overprovisioned machine / width infeasibility);
* :func:`audit_schedule_bounds` — the **schedule sanitizer**: a
  realized schedule whose width exceeds the proven bound (``QL502``),
  whose communication volume undercuts the static lower bound
  (``QL503``), or whose length beats the serialisation bound
  (``QL504``) is wrong — some invariant of the machine model or the
  scheduler has been violated;
* :func:`audit_profile_bounds` — the same check against coarse
  (blackbox) profiles of non-leaf modules, where no explicit schedule
  exists.

Soundness notes: bounds never *shrink* under the front-end passes —
decomposition only adds operations on the same operands and flattening
only inlines — so bounds computed on the input program are valid
lower bounds for schedules of the decomposed/flattened one. Width and
ops bounds are upper bounds and may overcount (safe: ``QL501`` then
under-warns, never over-fails).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from ..arch.machine import TELEPORT_CYCLES
from ..core.module import Module
from ..core.operation import Operation
from ..core.qubits import Qubit
from ..sched.comm import CommStats
from ..sched.types import Schedule
from .diagnostics import Diagnostic, DiagnosticSet, Severity
from .registry import Reporter, deep_rule

__all__ = [
    "ResourceSummary",
    "ResourceAnalysis",
    "audit_schedule_bounds",
    "audit_profile_bounds",
]


@dataclass(frozen=True)
class ResourceSummary:
    """Static resource bounds of one module (callees folded in).

    Attributes:
        params: number of formal parameters.
        ops: iteration-weighted operation count (exact).
        frame_qubits: distinct qubits named in this frame (params and
            locals).
        op_footprint: distinct qubits touched by *direct* operations;
            for a leaf this is exactly the set a schedule teleports in
            from global memory (communication lower bound).
        inline_qubits: upper bound on distinct qubits under maximal
            inlining (callee locals counted fresh per call instance).
        width_ub: upper bound on achievable SIMD width,
            ``min(ops, inline_qubits)``.
        chain: lower bound on any schedule length for this module:
            the busiest single qubit's serialised operation count,
            composed through calls.
        param_chains: per-parameter serialised operation counts
            (the compositional ingredient of ``chain``).
        comm_lb: lower bound on teleports for this frame's execution
            (exact for leaves: ``op_footprint``).
    """

    params: int
    ops: int
    frame_qubits: int
    op_footprint: int
    inline_qubits: int
    width_ub: int
    chain: int
    param_chains: Tuple[int, ...]
    comm_lb: int


class ResourceAnalysis:
    """The resource-bounds summary computation, engine-shaped (see
    :class:`~repro.analysis.dataflow.InterproceduralAnalysis`)."""

    name = "resource-bounds"
    version = "1"

    def summarize(
        self,
        module: Module,
        callees: Mapping[str, ResourceSummary],
    ) -> ResourceSummary:
        ops = 0
        inline_extra = 0
        callee_chain = 0
        callee_comm = 0
        counts: Dict[Qubit, int] = {}
        direct: Dict[Qubit, None] = {}
        for stmt in module.body:
            if isinstance(stmt, Operation):
                ops += 1
                for q in stmt.qubits:
                    counts[q] = counts.get(q, 0) + 1
                    direct.setdefault(q)
            else:
                callee = callees[stmt.callee]
                ops += stmt.iterations * callee.ops
                inline_extra += stmt.iterations * max(
                    0, callee.inline_qubits - callee.params
                )
                callee_chain = max(callee_chain, callee.chain)
                callee_comm = max(callee_comm, callee.comm_lb)
                for pos, q in enumerate(stmt.args):
                    counts[q] = (
                        counts.get(q, 0)
                        + stmt.iterations * callee.param_chains[pos]
                    )
        frame_qubits = len(module.qubits())
        op_footprint = len(direct)
        inline_qubits = frame_qubits + inline_extra
        chain = max(
            max(counts.values(), default=0),
            callee_chain,
        )
        return ResourceSummary(
            params=len(module.params),
            ops=ops,
            frame_qubits=frame_qubits,
            op_footprint=op_footprint,
            inline_qubits=inline_qubits,
            width_ub=min(ops, inline_qubits),
            chain=chain,
            param_chains=tuple(
                counts.get(q, 0) for q in module.params
            ),
            comm_lb=max(op_footprint, callee_comm),
        )

    def to_payload(self, summary: ResourceSummary) -> Dict[str, Any]:
        return {
            "params": summary.params,
            "ops": summary.ops,
            "frame_qubits": summary.frame_qubits,
            "op_footprint": summary.op_footprint,
            "inline_qubits": summary.inline_qubits,
            "width_ub": summary.width_ub,
            "chain": summary.chain,
            "param_chains": list(summary.param_chains),
            "comm_lb": summary.comm_lb,
        }

    def from_payload(self, payload: Dict[str, Any]) -> ResourceSummary:
        return ResourceSummary(
            params=int(payload["params"]),
            ops=int(payload["ops"]),
            frame_qubits=int(payload["frame_qubits"]),
            op_footprint=int(payload["op_footprint"]),
            inline_qubits=int(payload["inline_qubits"]),
            width_ub=int(payload["width_ub"]),
            chain=int(payload["chain"]),
            param_chains=tuple(
                int(c) for c in payload["param_chains"]
            ),
            comm_lb=int(payload["comm_lb"]),
        )


# ---------------------------------------------------------------------------
# QL501 — machine fit (deep rule)
# ---------------------------------------------------------------------------


@deep_rule(
    "QL501",
    "width-overprovision",
    Severity.WARNING,
    "The program's statically-proven width upper bound is below the "
    "machine's region count: some SIMD regions can never be occupied.",
)
def check_width_fit(context: Any, out: Reporter) -> None:
    entry = context.program.entry
    summary = context.resources.get(entry)
    if summary is None or summary.ops == 0:
        return
    if summary.width_ub < context.machine.k:
        out.emit(
            f"program {entry!r} can occupy at most "
            f"{summary.width_ub} of the machine's {context.machine.k} "
            f"SIMD regions in any timestep "
            f"(ops={summary.ops}, qubit bound="
            f"{summary.inline_qubits}): the target Multi-SIMD("
            f"{context.machine.k}, {context.machine.d}) is "
            f"overprovisioned for this program",
            module=entry,
        )


# ---------------------------------------------------------------------------
# The schedule sanitizer (QL502-QL504)
# ---------------------------------------------------------------------------


def _bounds_diag(
    code: str,
    message: str,
    module: Optional[str],
) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=Severity.ERROR,
        message=message,
        module=module,
        rule="schedule-bounds",
    )


def audit_schedule_bounds(
    sched: Schedule,
    comm: Optional[CommStats] = None,
    module: Optional[str] = None,
    hop_floor: int = 1,
) -> DiagnosticSet:
    """Check a realized leaf schedule against its static bounds.

    The bounds are recomputed from the schedule's own dependence DAG
    (the ground truth of what was scheduled), so the check is exact —
    independent of summaries, flattening, or decomposition:

    * ``QL502`` — realized ``max_width`` exceeds
      ``min(k, footprint, ops)``: physically impossible under the
      qubit-disjointness invariant, so the width profile is lying;
    * ``QL503`` — realized communication undercuts the static lower
      bound: fewer teleports (or EPR pairs, or comm cycles) than the
      footprint demands, though every qubit starts in global memory;
    * ``QL504`` — realized length beats the serialisation bound (the
      busiest qubit's chain, and the ``ceil(ops / (k*d))`` capacity
      bound when ``d`` is finite).

    Args:
        sched: the schedule to audit.
        comm: realized communication stats for this schedule, when
            available (:func:`~repro.sched.comm.derive_movement`
            output). Without it, move counts embedded in the schedule
            are used; if the schedule carries no movement plan at all,
            communication checks are skipped (nothing realized to
            compare yet).
        module: module name to anchor diagnostics to.
        hop_floor: topology-aware scaling of the ``QL503``
            communication-cycle floor. In a multi-core machine a
            teleport whose nearest route crosses ``h`` interconnect
            links costs ``h`` link-level epochs, so a caller that
            knows every teleport must cross at least ``hop_floor``
            links owes at least ``TELEPORT_CYCLES * hop_floor``
            communication cycles. The single-core default is 1.

    Raises:
        ValueError: ``hop_floor`` < 1.
    """
    if hop_floor < 1:
        raise ValueError(f"hop_floor must be >= 1, got {hop_floor}")
    diags = DiagnosticSet()
    ops = sched.dag.n
    if ops == 0:
        return diags
    chains = sched.dag.qubit_chains()
    footprint = len(chains)
    chain = max((len(c) for c in chains.values()), default=0)

    width_bound = min(sched.k, footprint, ops)
    if sched.max_width > width_bound:
        diags.add(
            _bounds_diag(
                "QL502",
                f"schedule max width {sched.max_width} exceeds the "
                f"static bound {width_bound} "
                f"(k={sched.k}, footprint={footprint}, ops={ops}): "
                f"width profile is inconsistent with qubit "
                f"disjointness",
                module,
            )
        )

    length_bound = chain
    if sched.d is not None:
        capacity = sched.k * sched.d
        length_bound = max(
            length_bound, -(-ops // capacity)  # ceil division
        )
    if sched.length < length_bound:
        diags.add(
            _bounds_diag(
                "QL504",
                f"schedule length {sched.length} beats the static "
                f"lower bound {length_bound} "
                f"(busiest-qubit chain {chain}, ops={ops}, "
                f"k={sched.k}, d={sched.d}): operations on one qubit "
                f"cannot overlap",
                module,
            )
        )

    movement_known = comm is not None or sched.total_moves > 0
    if movement_known:
        teleports = comm.teleports if comm is not None else sched.teleport_moves
        if teleports < footprint:
            diags.add(
                _bounds_diag(
                    "QL503",
                    f"schedule realizes {teleports} teleport(s) but "
                    f"touches {footprint} qubit(s), all of which "
                    f"start in global memory: communication is "
                    f"undercounted",
                    module,
                )
            )
        if comm is not None:
            if comm.epr.total_pairs < footprint:
                diags.add(
                    _bounds_diag(
                        "QL503",
                        f"EPR accounting claims "
                        f"{comm.epr.total_pairs} pair(s) for a "
                        f"footprint of {footprint} qubit(s): each "
                        f"inbound teleport consumes one pair",
                        module,
                    )
                )
            cycle_floor = TELEPORT_CYCLES * hop_floor
            if comm.comm_cycles < cycle_floor:
                hops = (
                    ""
                    if hop_floor == 1
                    else f" crossing {hop_floor} link(s)"
                )
                diags.add(
                    _bounds_diag(
                        "QL503",
                        f"communication-aware runtime adds only "
                        f"{comm.comm_cycles} cycle(s), below the "
                        f"{cycle_floor}-cycle cost of the first "
                        f"teleport epoch{hops}",
                        module,
                    )
                )
    return diags


def audit_profile_bounds(
    lengths: Mapping[int, int],
    runtimes: Mapping[int, int],
    summary: ResourceSummary,
    module: Optional[str] = None,
) -> DiagnosticSet:
    """Check a module's blackbox dimensions against its static bounds.

    For non-leaf (coarse-scheduled) modules no explicit schedule
    exists; the per-width length/runtime profiles are the realized
    artifact. At every width, length must respect the serialisation
    chain (``QL504``) and the communication-aware runtime must
    additionally pay for at least one teleport epoch whenever the
    module touches any qubit (``QL503``).
    """
    diags = DiagnosticSet()
    if summary.ops == 0:
        return diags
    for width in sorted(lengths):
        if lengths[width] < summary.chain:
            diags.add(
                _bounds_diag(
                    "QL504",
                    f"profile length {lengths[width]} at width "
                    f"{width} beats the serialisation lower bound "
                    f"{summary.chain}",
                    module,
                )
            )
    runtime_bound = summary.chain
    if summary.comm_lb > 0 and summary.chain > 0:
        runtime_bound += TELEPORT_CYCLES
    for width in sorted(runtimes):
        if runtimes[width] < runtime_bound:
            diags.add(
                _bounds_diag(
                    "QL503",
                    f"profile runtime {runtimes[width]} at width "
                    f"{width} beats the communication-aware lower "
                    f"bound {runtime_bound} (chain {summary.chain} + "
                    f"first teleport epoch)",
                    module,
                )
            )
    return diags
