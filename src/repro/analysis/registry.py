"""Rule registry for the program-level analyzer.

Rules are plain functions registered with the :func:`rule` decorator;
each owns a stable diagnostic code, a short name, a default severity,
and a one-line summary. :func:`analyze_program` runs a battery of rules
over a validated :class:`~repro.core.module.Program` and returns the
combined :class:`~.diagnostics.DiagnosticSet`.

The registry is the extension point: downstream code can register
additional rules (with fresh codes) and they are picked up by the CLI's
``lint`` verb and by ``compile_and_schedule(strict=True)`` alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Protocol

from ..core.module import Program
from ..core.source import SourceLocation
from .diagnostics import Diagnostic, DiagnosticSet, Severity

__all__ = [
    "Rule",
    "Reporter",
    "rule",
    "registered_rules",
    "analyze_program",
    "DeepRule",
    "deep_rule",
    "registered_deep_rules",
    "analyze_deep_rules",
]


class RuleLike(Protocol):
    """What :class:`Reporter` needs from a rule: identity + default
    severity. Satisfied by both :class:`Rule` and :class:`DeepRule`."""

    code: str
    name: str
    severity: Severity


class Reporter:
    """Emission facade handed to rules; binds the rule's defaults."""

    def __init__(self, sink: DiagnosticSet, rule: RuleLike) -> None:
        self._sink = sink
        self._rule = rule

    def emit(
        self,
        message: str,
        *,
        module: Optional[str] = None,
        stmt: Optional[int] = None,
        qubit: Optional[str] = None,
        loc: Optional[SourceLocation] = None,
        severity: Optional[Severity] = None,
    ) -> None:
        """Record one finding under the rule's code.

        ``severity`` overrides the rule's default for findings that are
        graver (or milder) than the rule's typical output.
        """
        self._sink.add(
            Diagnostic(
                code=self._rule.code,
                severity=severity or self._rule.severity,
                message=message,
                module=module,
                stmt=stmt,
                qubit=qubit,
                loc=loc,
                rule=self._rule.name,
            )
        )


RuleFn = Callable[[Program, Reporter], None]


@dataclass(frozen=True)
class Rule:
    """A registered analyzer rule.

    Attributes:
        code: stable diagnostic code (``QL001`` ...), unique.
        name: short kebab-case rule name.
        severity: default severity of the rule's findings.
        summary: one-line description (shown by ``lint --list-rules``).
        fn: the rule body; called as ``fn(program, reporter)``.
    """

    code: str
    name: str
    severity: Severity
    summary: str
    fn: RuleFn


_REGISTRY: Dict[str, Rule] = {}


def rule(
    code: str, name: str, severity: Severity, summary: str
) -> Callable[[RuleFn], RuleFn]:
    """Register a program-analysis rule under ``code``.

    Raises:
        ValueError: if ``code`` or ``name`` is already registered.
    """

    def decorator(fn: RuleFn) -> RuleFn:
        if code in _REGISTRY:
            raise ValueError(f"duplicate rule code {code!r}")
        if any(r.name == name for r in _REGISTRY.values()):
            raise ValueError(f"duplicate rule name {name!r}")
        _REGISTRY[code] = Rule(code, name, severity, summary, fn)
        return fn

    return decorator


def registered_rules() -> List[Rule]:
    """All registered rules, ordered by code."""
    return [_REGISTRY[c] for c in sorted(_REGISTRY)]


def analyze_program(
    program: Program,
    codes: Optional[Iterable[str]] = None,
) -> DiagnosticSet:
    """Run the registered rule battery over ``program``.

    Args:
        program: a validated program.
        codes: restrict to these diagnostic codes (default: all).

    Returns:
        the combined :class:`DiagnosticSet` of every selected rule.

    Raises:
        KeyError: if ``codes`` names an unregistered code.
    """
    selected: List[Rule]
    if codes is None:
        selected = registered_rules()
    else:
        missing = [c for c in codes if c not in _REGISTRY]
        if missing:
            raise KeyError(
                f"unknown rule code(s): {', '.join(sorted(missing))}"
            )
        selected = [_REGISTRY[c] for c in sorted(set(codes))]
    out = DiagnosticSet()
    for r in selected:
        r.fn(program, Reporter(out, r))
    return out


# ---------------------------------------------------------------------------
# Deep (interprocedural) rules — the ``lint --deep`` battery
# ---------------------------------------------------------------------------

#: A deep rule body: called as ``fn(context, reporter)`` where
#: ``context`` is the :class:`~repro.analysis.deep.DeepContext` holding
#: the program, the target machine, and the interprocedural summaries.
#: Typed ``Any`` here to keep the registry below the context in the
#: import graph.
DeepRuleFn = Callable[[Any, Reporter], None]


@dataclass(frozen=True)
class DeepRule:
    """A registered interprocedural (``lint --deep``) rule.

    Same identity contract as :class:`Rule` (stable unique code, a
    kebab-case name, a default severity), but the body consumes the
    summary-laden deep-analysis context instead of a bare program —
    deep rules never recompute fixpoints themselves.
    """

    code: str
    name: str
    severity: Severity
    summary: str
    fn: DeepRuleFn


_DEEP_REGISTRY: Dict[str, DeepRule] = {}


def deep_rule(
    code: str, name: str, severity: Severity, summary: str
) -> Callable[[DeepRuleFn], DeepRuleFn]:
    """Register an interprocedural rule under ``code``.

    Codes share one namespace with the shallow registry, so a deep
    rule can never collide with (or shadow) a ``QL0xx`` rule.

    Raises:
        ValueError: if ``code`` or ``name`` is already registered.
    """

    def decorator(fn: DeepRuleFn) -> DeepRuleFn:
        if code in _DEEP_REGISTRY or code in _REGISTRY:
            raise ValueError(f"duplicate rule code {code!r}")
        taken = {r.name for r in _REGISTRY.values()}
        taken.update(r.name for r in _DEEP_REGISTRY.values())
        if name in taken:
            raise ValueError(f"duplicate rule name {name!r}")
        _DEEP_REGISTRY[code] = DeepRule(code, name, severity, summary, fn)
        return fn

    return decorator


def registered_deep_rules() -> List[DeepRule]:
    """All registered deep rules, ordered by code."""
    return [_DEEP_REGISTRY[c] for c in sorted(_DEEP_REGISTRY)]


def analyze_deep_rules(
    context: Any,
    codes: Optional[Iterable[str]] = None,
) -> DiagnosticSet:
    """Run the deep-rule battery over a prepared analysis context.

    Callers build the context (program + machine + summaries) via
    :func:`repro.analysis.deep.analyze_deep`, which owns the fixpoint
    and caching; this function is only the emission loop.

    Raises:
        KeyError: if ``codes`` names an unregistered deep code.
    """
    selected: List[DeepRule]
    if codes is None:
        selected = registered_deep_rules()
    else:
        missing = [c for c in codes if c not in _DEEP_REGISTRY]
        if missing:
            raise KeyError(
                f"unknown deep rule code(s): {', '.join(sorted(missing))}"
            )
        selected = [_DEEP_REGISTRY[c] for c in sorted(set(codes))]
    out = DiagnosticSet()
    for r in selected:
        r.fn(context, Reporter(out, r))
    return out
