"""Schedule-level static auditing (codes ``QL2xx``/``QL3xx``).

The scheduler stack historically validated lazily and fatally:
``Schedule.validate()`` raised on the first structural violation and
``replay_schedule`` raised mid-replay on the first physical one. The
auditor runs the same checks through the diagnostics engine and
collects *all* violations, so a schedule — hand-built, externally
modified, or produced by a buggy planner — can be examined post-hoc
with the same error-code vocabulary the program linter uses.

``QL2xx`` diagnostics are structural (every op exactly once, deps
ordered, region/width caps, SIMD gate-type purity, intra-timestep qubit
reuse); ``QL3xx`` are physical (operand residency, move consistency,
ballistic endpoints, scratchpad capacity, passive storage, machine
shape). All are ERROR severity: a schedule that trips any of them is
not executable on the machine model.
"""

from __future__ import annotations

from typing import Optional

from ..arch.machine import MultiSIMD
from ..sched.comm import CommStats
from ..sched.types import Schedule
from ..sched.replay import replay_schedule
from .diagnostics import Diagnostic, DiagnosticSet, Severity

__all__ = ["audit_schedule", "audit_replay"]


def audit_schedule(
    sched: Schedule,
    machine: Optional[MultiSIMD] = None,
    module: Optional[str] = None,
    deep: bool = False,
    comm: Optional[CommStats] = None,
    hop_floor: int = 1,
) -> DiagnosticSet:
    """Statically audit a schedule, collecting every violation.

    Args:
        sched: the schedule to audit.
        machine: when given, the movement plan is additionally
            replayed against this machine model (``QL3xx`` checks).
        module: module name to anchor the diagnostics to (reports).
        deep: additionally sanitize the schedule against its static
            resource/communication bounds (``QL5xx`` checks —
            :func:`~repro.analysis.resource_rules.audit_schedule_bounds`).
        comm: realized communication stats for the ``deep`` check,
            when available.
        hop_floor: topology-aware ``QL503`` floor scaling for the
            ``deep`` check (see ``audit_schedule_bounds``).

    Returns:
        a :class:`DiagnosticSet`; empty iff the schedule passes every
        structural (and, with ``machine``, physical; and, with
        ``deep``, bounds) invariant.
    """
    diags = DiagnosticSet()
    for v in sched.iter_violations():
        diags.add(
            Diagnostic(
                code=v.code,
                severity=Severity.ERROR,
                message=v.message,
                module=module,
                stmt=v.timestep,
                rule="schedule-invariants",
            )
        )
    if machine is not None:
        diags.extend(audit_replay(sched, machine, module=module))
    if deep:
        from .resource_rules import audit_schedule_bounds

        diags.extend(
            audit_schedule_bounds(
                sched, comm=comm, module=module, hop_floor=hop_floor
            )
        )
    return diags


def audit_replay(
    sched: Schedule,
    machine: MultiSIMD,
    module: Optional[str] = None,
) -> DiagnosticSet:
    """Replay a movement-annotated schedule, collecting every physical
    violation instead of aborting on the first.

    Returns:
        a :class:`DiagnosticSet` of ``QL3xx`` diagnostics; empty iff
        the plan is physically realisable on ``machine``.
    """
    diags = DiagnosticSet()

    def collect(code: str, message: str, timestep: int) -> None:
        diags.add(
            Diagnostic(
                code=code,
                severity=Severity.ERROR,
                message=message,
                module=module,
                stmt=timestep if timestep >= 0 else None,
                rule="replay-invariants",
            )
        )

    replay_schedule(sched, machine, on_violation=collect)
    return diags
