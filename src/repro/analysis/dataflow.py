"""Interprocedural dataflow: a worklist fixpoint engine over the call
graph, with content-addressed summary memoization.

The hierarchical IR keeps programs modular (straight-line bodies, an
acyclic call graph — Section 3.1 of the paper), which makes whole-
program analysis *compositional*: analyse each module once against the
summaries of its callees, bottom-up. This module provides the three
generic pieces every such analysis shares:

1. **Domains** — the :class:`Lattice` protocol (bottom / join / leq)
   with :class:`PowersetLattice` as the workhorse instance, and the
   :class:`TransferFunctions` protocol + :func:`run_forward` for the
   intra-module forward walk (exact on straight-line bodies: the
   worklist degenerates to one left-to-right pass and no joins are
   needed; ``join`` is still required of the domain so transfer
   functions can merge facts flowing in from call summaries).

2. **The interprocedural engine** — :func:`solve_bottom_up` runs an
   :class:`InterproceduralAnalysis` to fixpoint over the call graph
   with a position-ordered worklist: modules are seeded callees-first
   (the :meth:`~repro.core.module.Program.topological_order`), and
   whenever a module's summary changes, every caller already processed
   is re-enqueued. On the acyclic graphs the IR guarantees, each
   module is summarised exactly once; the re-enqueue path is what
   keeps the engine a true fixpoint iteration rather than a single
   sweep.

3. **Summary memoization** — :class:`SummaryCache` persists per-module
   summaries through the PR-2 content-addressed artifact store, keyed
   by :func:`summary_fingerprint`: a SHA-256 over the analysis
   name/version, :data:`~repro.core.canonical.PIPELINE_VERSION`, the
   module's canonical form, and the fingerprints of its callee
   summaries (a Merkle chain — editing any transitively-called module
   re-fingerprints every caller). Warm ``lint --deep`` runs therefore
   skip every unchanged module's transfer function.

Summaries must be pure functions of (module, callee summaries):
diagnostic *emission* happens in a separate always-run phase
(:mod:`.deep`) so cache hits can never swallow findings.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    FrozenSet,
    Generic,
    List,
    Mapping,
    Optional,
    Protocol,
    Set,
    TypeVar,
    Union,
)

from ..core.canonical import PIPELINE_VERSION, canonical_module, digest
from ..core.module import Module, Program
from ..core.operation import CallSite, Operation

__all__ = [
    "Lattice",
    "PowersetLattice",
    "TransferFunctions",
    "run_forward",
    "InterproceduralAnalysis",
    "SummaryCache",
    "SummaryCacheStats",
    "summary_fingerprint",
    "FixpointResult",
    "solve_bottom_up",
]

V = TypeVar("V")
S = TypeVar("S")
E = TypeVar("E")


# ---------------------------------------------------------------------------
# Domains
# ---------------------------------------------------------------------------


class Lattice(Protocol[V]):
    """A join-semilattice of abstract values."""

    def bottom(self) -> V:
        """The least element (no information)."""
        ...

    def join(self, left: V, right: V) -> V:
        """The least upper bound of two values."""
        ...

    def leq(self, left: V, right: V) -> bool:
        """Partial order: is ``left`` below (at most) ``right``?"""
        ...


class PowersetLattice(Generic[E]):
    """The powerset lattice over any hashable element type: bottom is
    the empty set, join is union, the order is inclusion. This is the
    domain of the footprint component of the resource analysis and of
    the abstract entanglement partner sets."""

    def bottom(self) -> FrozenSet[E]:
        return frozenset()

    def join(self, left: FrozenSet[E], right: FrozenSet[E]) -> FrozenSet[E]:
        return left | right

    def leq(self, left: FrozenSet[E], right: FrozenSet[E]) -> bool:
        return left <= right


class TransferFunctions(Protocol[V]):
    """Per-statement transfer functions of an intra-module analysis.

    ``boundary`` produces the state holding on module entry;
    ``operation`` and ``call`` push a state across one statement.
    Transfer functions must be monotone in the module's
    :class:`Lattice` for the fixpoint engine's termination argument —
    trivially satisfied on straight-line bodies, where each function
    is applied exactly once.
    """

    def boundary(self, module: Module) -> V:
        ...

    def operation(self, state: V, op: Operation, index: int) -> V:
        ...

    def call(self, state: V, call: CallSite, index: int) -> V:
        ...


def run_forward(module: Module, transfer: TransferFunctions[V]) -> V:
    """Run a forward dataflow over one straight-line module body.

    Module bodies have no intra-module control flow, so the forward
    problem is exact: one pass, no joins, returning the exit state.
    """
    state = transfer.boundary(module)
    for index, stmt in enumerate(module.body):
        if isinstance(stmt, Operation):
            state = transfer.operation(state, stmt, index)
        else:
            state = transfer.call(state, stmt, index)
    return state


# ---------------------------------------------------------------------------
# Interprocedural analyses and their summaries
# ---------------------------------------------------------------------------


class InterproceduralAnalysis(Protocol[S]):
    """A bottom-up summary computation over the call graph.

    ``summarize`` must be a *pure* function of the module and its
    callee summaries — no diagnostics, no global state — so that a
    cached summary is indistinguishable from a recomputed one.
    ``to_payload``/``from_payload`` round-trip a summary through JSON
    for the on-disk cache; the payload is also the engine's change
    detector, so it must be deterministic.
    """

    #: Stable analysis identifier (part of the cache key).
    name: str
    #: Bump on any behavioural change to ``summarize`` (part of the
    #: cache key; plays the role PIPELINE_VERSION plays for compile
    #: artifacts, at per-analysis granularity).
    version: str

    def summarize(self, module: Module, callees: Mapping[str, S]) -> S:
        ...

    def to_payload(self, summary: S) -> Dict[str, Any]:
        ...

    def from_payload(self, payload: Dict[str, Any]) -> S:
        ...


def summary_fingerprint(
    analysis_name: str,
    analysis_version: str,
    module: Module,
    callee_fingerprints: Mapping[str, str],
    pipeline_version: str = PIPELINE_VERSION,
) -> str:
    """Content fingerprint of one module's summary computation.

    Covers everything the summary is a function of: the analysis
    (name + version), the pipeline version, the module's canonical
    form, and the fingerprints of the callee summaries it consumed
    (sorted by callee name — :meth:`Module.callees` is a set and must
    never be iterated unsorted into a hash).
    """
    return digest(
        {
            "kind": "repro.summary/1",
            "analysis": analysis_name,
            "analysis_version": analysis_version,
            "pipeline": pipeline_version,
            "module": canonical_module(module),
            "callees": sorted(callee_fingerprints.items()),
        }
    )


@dataclass
class SummaryCacheStats:
    """Hit/miss/store counters for one summary cache."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when no lookups yet)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": self.hit_rate,
        }


class SummaryCache:
    """Disk-backed memo of per-module analysis summaries.

    Summaries are stored through the same sharded, versioned
    :class:`~repro.service.store.ArtifactStore` the compile service
    uses, under a ``summaries/`` subdirectory of the cache root, so
    ``repro lint --deep`` and ``repro bench`` share one cache tree and
    one invalidation story: a :data:`PIPELINE_VERSION` bump changes
    every fingerprint *and* makes the store refuse (and delete) old
    envelopes.

    Args:
        cache_dir: cache root (the store lives in
            ``<cache_dir>/summaries``).
        pipeline_version: override for cache-invalidation tests.
    """

    def __init__(
        self,
        cache_dir: Union[str, Path],
        pipeline_version: str = PIPELINE_VERSION,
    ) -> None:
        # Deferred import: repro.service pulls in the toolflow, which
        # imports repro.analysis — by construction-time the package
        # cycle has resolved.
        from ..service.store import ArtifactStore

        self.pipeline_version = pipeline_version
        self.stats = SummaryCacheStats()
        self._store = ArtifactStore(
            Path(cache_dir) / "summaries",
            pipeline_version=pipeline_version,
        )

    def load(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The cached summary payload, or ``None`` on miss/stale."""
        payload = self._store.load(fingerprint)
        if payload is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def save(self, fingerprint: str, payload: Dict[str, Any]) -> None:
        """Persist one summary payload under its fingerprint."""
        self._store.save(fingerprint, payload)
        self.stats.stores += 1

    def __len__(self) -> int:
        return len(self._store)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SummaryCache({str(self._store.root)!r}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )


# ---------------------------------------------------------------------------
# The worklist fixpoint engine
# ---------------------------------------------------------------------------


@dataclass
class FixpointResult(Generic[S]):
    """Output of one bottom-up solve.

    Attributes:
        summaries: per-module summaries, keyed by module name; covers
            exactly the modules reachable from the entry.
        fingerprints: content fingerprint of each summary (the cache
            key it was stored/loaded under).
        order: the callees-first order the worklist was seeded with.
        iterations: worklist pops — equals ``len(order)`` on acyclic
            graphs (each module summarised once).
        cache_stats: counters of the cache used, if any.
    """

    summaries: Dict[str, S]
    fingerprints: Dict[str, str]
    order: List[str]
    iterations: int
    cache_stats: Optional[SummaryCacheStats] = None


def solve_bottom_up(
    program: Program,
    analysis: InterproceduralAnalysis[S],
    cache: Optional[SummaryCache] = None,
) -> FixpointResult[S]:
    """Run ``analysis`` to fixpoint over ``program``'s call graph.

    Modules reachable from the entry are seeded callees-first into a
    position-ordered worklist. Each pop summarises one module against
    its callees' current summaries — through ``cache`` when the
    summary fingerprint hits — and, if the summary's payload changed,
    re-enqueues every already-summarised caller. On the acyclic call
    graphs :class:`~repro.core.module.Program` guarantees, this
    converges in exactly one pop per module; the worklist structure is
    what makes the engine correct even if seeding order and the call
    graph ever disagree.
    """
    order = program.topological_order()  # callees first
    position = {name: index for index, name in enumerate(order)}
    reachable: Set[str] = set(order)
    callers = {
        name: {c for c in callers_ if c in reachable}
        for name, callers_ in program.callers().items()
        if name in reachable
    }

    summaries: Dict[str, S] = {}
    payloads: Dict[str, Dict[str, Any]] = {}
    fingerprints: Dict[str, str] = {}
    pipeline_version = (
        cache.pipeline_version if cache is not None else PIPELINE_VERSION
    )

    # The cache may be shared across several solves (e.g. lifetime +
    # resource under one ``analyze_deep``); snapshot its counters so
    # this result reports only this solve's traffic.
    base = (
        (cache.stats.hits, cache.stats.misses, cache.stats.stores)
        if cache is not None
        else (0, 0, 0)
    )

    pending: Set[str] = set(order)
    iterations = 0
    while pending:
        name = min(pending, key=lambda n: position[n])
        pending.discard(name)
        iterations += 1

        module = program.modules[name]
        callee_names = sorted(module.callees())
        fingerprint = summary_fingerprint(
            analysis.name,
            analysis.version,
            module,
            {c: fingerprints[c] for c in callee_names},
            pipeline_version=pipeline_version,
        )
        payload = cache.load(fingerprint) if cache is not None else None
        if payload is not None:
            summary = analysis.from_payload(payload)
        else:
            summary = analysis.summarize(
                module, {c: summaries[c] for c in callee_names}
            )
            payload = analysis.to_payload(summary)
            if cache is not None:
                cache.save(fingerprint, payload)

        changed = payloads.get(name) != payload
        summaries[name] = summary
        payloads[name] = payload
        fingerprints[name] = fingerprint
        if changed:
            for caller in callers.get(name, set()):
                if caller in payloads:
                    pending.add(caller)

    stats: Optional[SummaryCacheStats] = None
    if cache is not None:
        stats = SummaryCacheStats(
            hits=cache.stats.hits - base[0],
            misses=cache.stats.misses - base[1],
            stores=cache.stats.stores - base[2],
        )
    return FixpointResult(
        summaries=summaries,
        fingerprints=fingerprints,
        order=order,
        iterations=iterations,
        cache_stats=stats,
    )
