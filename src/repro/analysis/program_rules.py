"""The built-in program-level dataflow rules (codes ``QL001``-``QL007``).

Each rule walks the hierarchical IR (:class:`~repro.core.module.Program`)
per module: the paper's programs have classically-known control flow
(Section 3.1), so a module body is a straight-line statement list and
ordinary forward dataflow is exact at module granularity. Call sites are
treated conservatively — a called module may measure, prepare, or
entangle its arguments, so per-qubit state is weakened at calls rather
than guessed.

Severities are calibrated so that *well-formed* programs (including all
eight benchmark generators) produce no ERROR findings: errors are
reserved for constructs that are wrong under any interpretation of the
IR (no-cloning aliasing hazards, operating on collapsed qubits), while
stylistic and likely-bug findings are warnings or infos.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set

from ..core.gates import gate_spec
from ..core.module import Module, Program
from ..core.operation import CallSite, Operation
from ..core.qubits import Qubit
from .diagnostics import Severity
from .registry import Reporter, rule

__all__ = ["PREP_GATES", "MEAS_GATES"]

#: Preparation operations: reset a qubit to a known basis state.
PREP_GATES = frozenset({"PrepZ", "PrepX"})

#: Measurement operations: collapse a qubit.
MEAS_GATES = frozenset({"MeasZ", "MeasX"})


def _qname(q: Qubit) -> str:
    return f"{q.register}[{q.index}]"


def _call_args(mod: Module) -> Set[Qubit]:
    """Every qubit the module passes to a call site."""
    out: Set[Qubit] = set()
    for call in mod.calls():
        out.update(call.args)
    return out


# ---------------------------------------------------------------------------
# QL001 — use-before-init
# ---------------------------------------------------------------------------

@rule(
    "QL001",
    "use-before-init",
    Severity.WARNING,
    "A qubit is consumed before any preparation in a module that "
    "prepares explicitly, or measured before anything acts on it.",
)
def check_use_before_init(program: Program, out: Reporter) -> None:
    for mod in program:
        params = set(mod.params)
        explicit_prep = any(
            op.gate in PREP_GATES for op in mod.operations()
        )
        touched: Set[Qubit] = set()
        for idx, stmt in enumerate(mod.body):
            if isinstance(stmt, CallSite):
                touched.update(stmt.args)
                continue
            for q in stmt.qubits:
                if q not in touched and q not in params:
                    if stmt.gate in MEAS_GATES:
                        out.emit(
                            f"{_qname(q)} is measured before any "
                            f"operation acts on it (result is the "
                            f"fixed initial state)",
                            module=mod.name,
                            stmt=idx,
                            qubit=_qname(q),
                            loc=stmt.loc,
                        )
                    elif (
                        explicit_prep
                        and stmt.gate not in PREP_GATES
                    ):
                        out.emit(
                            f"{_qname(q)} is used by {stmt.gate} "
                            f"without preparation, but module "
                            f"{mod.name!r} prepares other qubits "
                            f"explicitly",
                            module=mod.name,
                            stmt=idx,
                            qubit=_qname(q),
                            loc=stmt.loc,
                        )
                touched.add(q)


# ---------------------------------------------------------------------------
# QL002 — no-cloning aliasing at call sites
# ---------------------------------------------------------------------------

@rule(
    "QL002",
    "call-aliasing",
    Severity.ERROR,
    "A call site binds a qubit that aliases a qubit the callee "
    "already references, violating no-cloning under name-based "
    "binding.",
)
def check_call_aliasing(program: Program, out: Reporter) -> None:
    # Cache each module's non-parameter qubit set.
    locals_of: Dict[str, Set[Qubit]] = {}
    for mod in program:
        locals_of[mod.name] = set(mod.qubits()) - set(mod.params)
    for mod in program:
        for idx, stmt in enumerate(mod.body):
            if not isinstance(stmt, CallSite):
                continue
            callee = program.modules.get(stmt.callee)
            if callee is None:
                continue  # Program.validate rejects this already.
            # Same qubit bound to two formals (constructors reject the
            # direct form; re-check to cover hand-built statements).
            seen: Set[Qubit] = set()
            for q in stmt.args:
                if q in seen:
                    out.emit(
                        f"call to {stmt.callee!r} passes "
                        f"{_qname(q)} to two parameters (no-cloning "
                        f"violation)",
                        module=mod.name,
                        stmt=idx,
                        qubit=_qname(q),
                        loc=stmt.loc,
                    )
                seen.add(q)
            # Argument captures a callee-local qubit of the same name:
            # under name-based binding the callee would operate on one
            # qubit through two names.
            for q in sorted(set(stmt.args) & locals_of[stmt.callee]):
                out.emit(
                    f"call to {stmt.callee!r} passes {_qname(q)}, "
                    f"which {stmt.callee!r} also uses as a local "
                    f"qubit — the argument aliases callee state "
                    f"(no-cloning hazard)",
                    module=mod.name,
                    stmt=idx,
                    qubit=_qname(q),
                    loc=stmt.loc,
                )


# ---------------------------------------------------------------------------
# QL003 — ancilla leak
# ---------------------------------------------------------------------------

def _uncomputed(ops: List[Operation]) -> bool:
    """Heuristic: the op sequence on one qubit returns it to its
    initial state.

    Recognises the compute/use/uncompute palindrome (each prefix op
    undone by the mirrored suffix op on the same operands) and
    re-preparation as the final op. Single-op sequences only count when
    the op is a preparation.
    """
    if ops and ops[-1].gate in PREP_GATES:
        return True
    n = len(ops)
    if n < 2:
        return False
    for i in range(n // 2):
        a, b = ops[i], ops[n - 1 - i]
        spec = gate_spec(a.gate)
        if spec.inverse != b.gate or a.qubits != b.qubits:
            return False
        if a.angle is not None:
            if b.angle is None or a.angle != -b.angle:
                return False
    if n % 2 == 1:
        mid = ops[n // 2]
        mid_spec = gate_spec(mid.gate)
        if not mid_spec.is_self_inverse:
            return False
    return True


@rule(
    "QL003",
    "ancilla-leak",
    Severity.WARNING,
    "A local qubit of a non-entry module is neither measured nor "
    "uncomputed before the module returns.",
)
def check_ancilla_leak(program: Program, out: Reporter) -> None:
    for mod in program:
        if mod.name == program.entry:
            continue  # the entry's leftovers are program outputs
        params = set(mod.params)
        escaping = _call_args(mod)
        per_qubit: Dict[Qubit, List[Operation]] = {}
        first_stmt: Dict[Qubit, int] = {}
        for idx, stmt in enumerate(mod.body):
            if isinstance(stmt, Operation):
                for q in stmt.qubits:
                    per_qubit.setdefault(q, []).append(stmt)
                    first_stmt.setdefault(q, idx)
        for q, ops in per_qubit.items():
            if q in params or q in escaping:
                continue  # callee may consume / caller owns it
            if any(op.gate in MEAS_GATES for op in ops):
                continue
            if _uncomputed(ops):
                continue
            out.emit(
                f"local qubit {_qname(q)} of module {mod.name!r} is "
                f"left entangled/dirty: never measured, uncomputed, "
                f"or re-prepared before the module returns "
                f"(ancilla leak)",
                module=mod.name,
                stmt=first_stmt[q],
                qubit=_qname(q),
                loc=ops[0].loc,
            )


# ---------------------------------------------------------------------------
# QL004 — dead qubit
# ---------------------------------------------------------------------------

@rule(
    "QL004",
    "dead-qubit",
    Severity.WARNING,
    "A module parameter is never referenced by the module body.",
)
def check_dead_qubit(program: Program, out: Reporter) -> None:
    for mod in program:
        used: Set[Qubit] = set()
        for stmt in mod.body:
            if isinstance(stmt, Operation):
                used.update(stmt.qubits)
            else:
                used.update(stmt.args)
        for q in mod.params:
            if q not in used:
                out.emit(
                    f"parameter {_qname(q)} of module {mod.name!r} "
                    f"is never used",
                    module=mod.name,
                    qubit=_qname(q),
                    loc=mod.loc,
                )


# ---------------------------------------------------------------------------
# QL005 — unreachable module
# ---------------------------------------------------------------------------

@rule(
    "QL005",
    "unreachable-module",
    Severity.WARNING,
    "A module is not reachable from the program entry point.",
)
def check_unreachable_module(
    program: Program, out: Reporter
) -> None:
    reachable = program.reachable()
    for name, mod in program.modules.items():
        if name not in reachable:
            out.emit(
                f"module {name!r} is unreachable from entry "
                f"{program.entry!r}",
                module=name,
                loc=mod.loc,
            )


# ---------------------------------------------------------------------------
# QL006 — gate misuse: operating on measured qubits
# ---------------------------------------------------------------------------

@rule(
    "QL006",
    "use-after-measure",
    Severity.ERROR,
    "A gate is applied to a qubit after measurement without "
    "re-preparation (the qubit has collapsed).",
)
def check_use_after_measure(program: Program, out: Reporter) -> None:
    for mod in program:
        measured: Set[Qubit] = set()
        prepped: Set[Qubit] = set()
        for idx, stmt in enumerate(mod.body):
            if isinstance(stmt, CallSite):
                # The callee may measure or re-prepare its arguments;
                # weaken to unknown.
                measured.difference_update(stmt.args)
                prepped.difference_update(stmt.args)
                continue
            gate = stmt.gate
            for q in stmt.qubits:
                if gate in PREP_GATES:
                    if q in prepped:
                        out.emit(
                            f"{_qname(q)} is prepared twice with no "
                            f"intervening use",
                            module=mod.name,
                            stmt=idx,
                            qubit=_qname(q),
                            loc=stmt.loc,
                            severity=Severity.WARNING,
                        )
                    measured.discard(q)
                    prepped.add(q)
                    continue
                if q in measured:
                    if gate in MEAS_GATES:
                        out.emit(
                            f"{_qname(q)} is measured twice without "
                            f"re-preparation (second result is "
                            f"redundant)",
                            module=mod.name,
                            stmt=idx,
                            qubit=_qname(q),
                            loc=stmt.loc,
                            severity=Severity.WARNING,
                        )
                    else:
                        out.emit(
                            f"gate {gate} applied to {_qname(q)} "
                            f"after measurement without "
                            f"re-preparation",
                            module=mod.name,
                            stmt=idx,
                            qubit=_qname(q),
                            loc=stmt.loc,
                        )
                    # Report each collapsed qubit once, then move on.
                    measured.discard(q)
                    continue
                prepped.discard(q)
                if gate in MEAS_GATES:
                    measured.add(q)


# ---------------------------------------------------------------------------
# QL007 — angle sanity
# ---------------------------------------------------------------------------

_TWO_PI = 2 * math.pi + 1e-9


@rule(
    "QL007",
    "angle-sanity",
    Severity.WARNING,
    "A rotation angle is degenerate (zero) or unreduced (magnitude "
    "above 2*pi).",
)
def check_angle_sanity(program: Program, out: Reporter) -> None:
    for mod in program:
        for idx, stmt in enumerate(mod.body):
            if not isinstance(stmt, Operation):
                continue
            if stmt.angle is None:
                continue
            if stmt.angle == 0.0:
                out.emit(
                    f"zero-angle {stmt.gate} is the identity "
                    f"(dead rotation)",
                    module=mod.name,
                    stmt=idx,
                    loc=stmt.loc,
                    severity=Severity.INFO,
                )
            elif abs(stmt.angle) > _TWO_PI:
                out.emit(
                    f"{stmt.gate} angle {stmt.angle:.6g} exceeds "
                    f"2*pi in magnitude; reduce it modulo 2*pi to "
                    f"keep rotation synthesis cost bounded",
                    module=mod.name,
                    stmt=idx,
                    loc=stmt.loc,
                )
