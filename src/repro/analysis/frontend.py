"""Front-end linting: surface-syntax findings as diagnostics.

Bridges the Scaffold and QASM parsers into the diagnostics engine
(codes ``QL1xx``): fatal parse errors become ERROR diagnostics carrying
the parser's line/column instead of exceptions, and the Scaffold
parser's non-fatal loop-bound findings (Section 3.1's classically
bounded control flow) become WARNING diagnostics. When parsing
succeeds, the resulting program can be fed straight into
:func:`~repro.analysis.registry.analyze_program`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.module import Program, ProgramValidationError
from ..core.qasm import QasmSyntaxError, parse_qasm
from ..core.scaffold import (
    ScaffoldSyntaxError,
    ScaffoldWarning,
    parse_scaffold,
)
from ..core.source import SourceLocation
from .diagnostics import Diagnostic, DiagnosticSet, Severity

__all__ = [
    "FrontendLint",
    "lint_scaffold_source",
    "lint_qasm_source",
]

#: Code for fatal surface-syntax errors.
CODE_SYNTAX = "QL101"
#: Code for loop-bound sanity findings (degenerate / near-limit loops).
CODE_LOOP_BOUNDS = "QL102"
#: Code for call-resolution errors (unknown module/gate, arity).
CODE_CALL_RESOLUTION = "QL103"
#: Code for IR-level validation failures (cycles, duplicate modules).
CODE_VALIDATION = "QL104"


@dataclass
class FrontendLint:
    """Outcome of linting one source text.

    Attributes:
        program: the parsed program, or ``None`` if parsing failed.
        diagnostics: every front-end finding, fatal and non-fatal.
    """

    program: Optional[Program]
    diagnostics: DiagnosticSet

    @property
    def ok(self) -> bool:
        return self.program is not None


def lint_scaffold_source(
    source: str, filename: Optional[str] = None
) -> FrontendLint:
    """Lint Scaffold-dialect source text.

    Never raises on malformed input: syntax errors (``QL101``),
    call-resolution errors (``QL103``) and program-validation failures
    (``QL104``) are returned as ERROR diagnostics; loop-bound sanity
    findings (``QL102``) as warnings.
    """
    diags = DiagnosticSet()
    warnings: List[ScaffoldWarning] = []
    program: Optional[Program] = None
    try:
        program = parse_scaffold(
            source, filename=filename, warnings=warnings
        )
    except ScaffoldSyntaxError as exc:
        diags.add(
            Diagnostic(
                code=exc.code,
                severity=Severity.ERROR,
                message=exc.bare_message,
                loc=SourceLocation(exc.line, exc.column, filename),
                rule="scaffold-parse",
            )
        )
    except ProgramValidationError as exc:
        diags.add(
            Diagnostic(
                code=CODE_VALIDATION,
                severity=Severity.ERROR,
                message=str(exc),
                rule="program-validation",
            )
        )
    for w in warnings:
        diags.add(
            Diagnostic(
                code=CODE_LOOP_BOUNDS,
                severity=Severity.WARNING,
                message=w.message,
                loc=w.loc,
                rule=f"loop-bounds/{w.kind}",
            )
        )
    return FrontendLint(program, diags)


def lint_qasm_source(
    source: str, filename: Optional[str] = None
) -> FrontendLint:
    """Lint hierarchical-QASM source text (codes as for Scaffold)."""
    diags = DiagnosticSet()
    program: Optional[Program] = None
    try:
        program = parse_qasm(source)
    except QasmSyntaxError as exc:
        line = getattr(exc, "line_no", 0)
        # QasmSyntaxError prefixes the message with "line N: ".
        message = str(exc)
        prefix = f"line {line}: "
        if message.startswith(prefix):
            message = message[len(prefix):]
        diags.add(
            Diagnostic(
                code=CODE_SYNTAX,
                severity=Severity.ERROR,
                message=message,
                loc=SourceLocation(line, 0, filename),
                rule="qasm-parse",
            )
        )
    except ProgramValidationError as exc:
        diags.add(
            Diagnostic(
                code=CODE_VALIDATION,
                severity=Severity.ERROR,
                message=str(exc),
                rule="program-validation",
            )
        )
    return FrontendLint(program, diags)
