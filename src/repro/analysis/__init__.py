"""``repro.analysis`` — the static analyzer ("qlint").

A program- and schedule-level analysis layer over the toolflow: a
structured diagnostics framework with stable codes (``QL001`` ...), a
rule registry with a battery of dataflow analyses over the hierarchical
IR, front-end lint for the Scaffold/QASM surface syntaxes, a schedule
auditor that re-checks every Multi-SIMD structural and physical
invariant while collecting *all* violations, and an interprocedural
(``--deep``) layer: a worklist fixpoint engine over the call graph
(:mod:`.dataflow`) feeding qubit-lifetime rules (``QL4xx``) and static
resource/communication bounds with a schedule sanitizer (``QL5xx``).

Entry points:

* :func:`analyze_program` — run the registered rules on a Program;
* :func:`analyze_deep` — run the interprocedural battery (cached
  summaries, ``QL4xx``/``QL5xx`` rules);
* :func:`lint_scaffold_source` / :func:`lint_qasm_source` — lint
  surface text without raising;
* :func:`audit_schedule` / :func:`audit_replay` — post-hoc schedule
  auditing with collected diagnostics (``deep=True`` adds the bounds
  sanitizer);
* ``python -m repro lint`` — the CLI surface (``--deep`` for the
  interprocedural battery);
* ``compile_and_schedule(strict=True)`` — in-toolflow enforcement.
"""

from .dataflow import (
    FixpointResult,
    InterproceduralAnalysis,
    Lattice,
    PowersetLattice,
    SummaryCache,
    SummaryCacheStats,
    TransferFunctions,
    solve_bottom_up,
    summary_fingerprint,
)
from .deep import (
    DEFAULT_MACHINE,
    DeepAnalysis,
    DeepContext,
    analyze_deep,
)
from .diagnostics import (
    AnalysisError,
    Diagnostic,
    DiagnosticSet,
    Severity,
)
from .frontend import (
    FrontendLint,
    lint_qasm_source,
    lint_scaffold_source,
)
from .lifetime_rules import (
    LifetimeAnalysis,
    LifetimeSummary,
)
from .registry import (
    DeepRule,
    Reporter,
    Rule,
    analyze_deep_rules,
    analyze_program,
    deep_rule,
    registered_deep_rules,
    registered_rules,
    rule,
)
from .resource_rules import (
    ResourceAnalysis,
    ResourceSummary,
    audit_profile_bounds,
    audit_schedule_bounds,
)
from .schedule_audit import audit_replay, audit_schedule

# Importing the module registers the built-in QL0xx rules. (The deep
# QL4xx/QL5xx rules register through the lifetime/resource imports
# above.)
from . import program_rules  # noqa: F401

__all__ = [
    "AnalysisError",
    "DEFAULT_MACHINE",
    "DeepAnalysis",
    "DeepContext",
    "DeepRule",
    "Diagnostic",
    "DiagnosticSet",
    "FixpointResult",
    "FrontendLint",
    "InterproceduralAnalysis",
    "Lattice",
    "LifetimeAnalysis",
    "LifetimeSummary",
    "PowersetLattice",
    "Reporter",
    "ResourceAnalysis",
    "ResourceSummary",
    "Rule",
    "Severity",
    "SummaryCache",
    "SummaryCacheStats",
    "TransferFunctions",
    "analyze_deep",
    "analyze_deep_rules",
    "analyze_program",
    "audit_profile_bounds",
    "audit_replay",
    "audit_schedule",
    "audit_schedule_bounds",
    "deep_rule",
    "lint_qasm_source",
    "lint_scaffold_source",
    "registered_deep_rules",
    "registered_rules",
    "rule",
    "solve_bottom_up",
    "summary_fingerprint",
]
