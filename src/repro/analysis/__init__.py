"""``repro.analysis`` — the static analyzer ("qlint").

A program- and schedule-level analysis layer over the toolflow: a
structured diagnostics framework with stable codes (``QL001`` ...), a
rule registry with a battery of dataflow analyses over the hierarchical
IR, front-end lint for the Scaffold/QASM surface syntaxes, and a
schedule auditor that re-checks every Multi-SIMD structural and
physical invariant while collecting *all* violations.

Entry points:

* :func:`analyze_program` — run the registered rules on a Program;
* :func:`lint_scaffold_source` / :func:`lint_qasm_source` — lint
  surface text without raising;
* :func:`audit_schedule` / :func:`audit_replay` — post-hoc schedule
  auditing with collected diagnostics;
* ``python -m repro lint`` — the CLI surface;
* ``compile_and_schedule(strict=True)`` — in-toolflow enforcement.
"""

from .diagnostics import (
    AnalysisError,
    Diagnostic,
    DiagnosticSet,
    Severity,
)
from .frontend import (
    FrontendLint,
    lint_qasm_source,
    lint_scaffold_source,
)
from .registry import (
    Reporter,
    Rule,
    analyze_program,
    registered_rules,
    rule,
)
from .schedule_audit import audit_replay, audit_schedule

# Importing the module registers the built-in QL0xx rules.
from . import program_rules  # noqa: F401

__all__ = [
    "AnalysisError",
    "Diagnostic",
    "DiagnosticSet",
    "FrontendLint",
    "Reporter",
    "Rule",
    "Severity",
    "analyze_program",
    "audit_replay",
    "audit_schedule",
    "lint_qasm_source",
    "lint_scaffold_source",
    "registered_rules",
    "rule",
]
