"""Interprocedural qubit-lifetime analysis (codes ``QL401``-``QL404``).

The ``QL0xx`` rules stop at call boundaries: a called module "may
measure, prepare, or entangle its arguments", so per-qubit state is
weakened to unknown at every call. This module replaces that weakening
with *summaries*: a bottom-up pass (through the
:mod:`.dataflow` engine) computes, for every module, what it does to
each formal parameter — whether it is acted on at all, whether its
first action is a preparation, the state it is left in on exit, and
which parameters may be mutually entangled on exit — and a second,
always-run walk replays each module body against its callees'
summaries to emit findings the intra-module rules structurally cannot
see:

* ``QL401`` — a first-touch preparation whose value is never consumed
  (dead write), with callee effects on the qubit resolved through
  summaries instead of assumed;
* ``QL402`` — a qubit used after being released (measured without
  re-preparation) where the release and the use are separated by a
  call boundary — the exact gap ``QL006`` leaves open;
* ``QL403`` — an ancilla passed to a callee that leaves it dirty and
  never cleaned afterwards by its owner (the interprocedural
  complement of ``QL003``, which deliberately skips every
  call-escaping qubit);
* ``QL404`` — re-preparing a qubit while it is possibly entangled
  (collapsing its partners as a side effect), via abstract
  entanglement tracking.

Abstract domains (see the table in ``DESIGN.md``):

* per-qubit **status** — the flat lattice ``UNTOUCHED`` (bottom) /
  ``CLEAN`` (known basis state) / ``ACTIVE`` (coherent, unknown) /
  ``RELEASED`` (measured, collapsed). Bodies are straight-line, so the
  forward walk never joins; calls move statuses via the callee's
  per-parameter exit facts.
* **entanglement** — a symmetric may-relation kept as a partition of
  qubits into possibly-entangled components (the conservative
  transitive closure; a powerset lattice per qubit, joined by union
  when a multi-qubit gate can entangle). Measurement and preparation
  detach a qubit from its component. A *taint* bit records possible
  entanglement with callee-internal state that is invisible in this
  frame.

Basis-preserving gates (Paulis, CNOT/Toffoli-family, phase rotations)
applied to ``CLEAN`` qubits keep them ``CLEAN`` and create no
entanglement — this is what keeps classical ripple logic (adders,
oracles) out of ``QL404``'s way.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from ..core.module import Module, Program
from ..core.operation import CallSite, Operation
from ..core.qubits import Qubit
from ..core.source import SourceLocation
from .dataflow import run_forward
from .diagnostics import Severity
from .program_rules import MEAS_GATES, PREP_GATES, _qname
from .registry import Reporter, deep_rule

__all__ = [
    "QubitStatus",
    "ParamSummary",
    "LifetimeSummary",
    "LifetimeEvent",
    "LifetimeAnalysis",
    "walk_module",
]


#: Gates that map computational-basis states to computational-basis
#: states (up to phase): applied to CLEAN qubits they neither create
#: superposition nor entanglement.
BASIS_PRESERVING = frozenset(
    {
        "X",
        "Y",
        "Z",
        "S",
        "Sdag",
        "T",
        "Tdag",
        "Rz",
        "CNOT",
        "CZ",
        "CRz",
        "SWAP",
        "Toffoli",
        "Fredkin",
        "CCZ",
    }
)


class QubitStatus(enum.Enum):
    """Abstract per-qubit state (the flat status lattice)."""

    UNTOUCHED = "untouched"
    CLEAN = "clean"
    ACTIVE = "active"
    RELEASED = "released"


@dataclass(frozen=True)
class ParamSummary:
    """Exit facts about one formal parameter of a module.

    Attributes:
        used: the module (or something it calls) acts on the qubit.
        first: the first action on the qubit — ``"none"``, ``"prep"``
            or ``"use"``. ``"prep"`` means the incoming value is never
            observed, which legitimises passing a released qubit.
        exit: the parameter's :class:`QubitStatus` value on exit.
        tainted: on exit the qubit may be entangled with callee-
            internal state invisible to the caller.
    """

    used: bool
    first: str
    exit: str
    tainted: bool


@dataclass(frozen=True)
class LifetimeSummary:
    """Lifetime summary of one module: per-parameter exit facts plus
    the groups of parameter indices possibly entangled on exit."""

    params: Tuple[ParamSummary, ...]
    groups: Tuple[Tuple[int, ...], ...]


@dataclass(frozen=True)
class LifetimeEvent:
    """One lifetime finding, produced by the emission walk and mapped
    onto a diagnostic by the matching deep rule."""

    kind: str  # "dead-write" | "use-after-release" | "ancilla-leak"
    #        | "entangled-prep"
    module: str
    stmt: Optional[int]
    qubit: str
    message: str
    loc: Optional[SourceLocation] = None


@dataclass(frozen=True)
class _Release:
    """Where and how a qubit was released (measured, not re-prepared)."""

    stmt: int
    source: str  # "direct" | "call"
    via: str  # gate name or callee name


@dataclass
class _QubitState:
    status: QubitStatus = QubitStatus.UNTOUCHED
    used: bool = False
    first: str = "none"
    tainted: bool = False
    pending_prep: Optional[int] = None
    pending_loc: Optional[SourceLocation] = None
    release: Optional[_Release] = None
    escaped: bool = False
    last_call: Optional[int] = None  # stmt of last call leaving it dirty
    last_callee: Optional[str] = None
    last_call_loc: Optional[SourceLocation] = None
    direct_after_call: bool = True  # caller touched it since that call


@dataclass
class _WalkState:
    """The forward-walk state threaded by :func:`run_forward`."""

    qubits: Dict[Qubit, _QubitState] = field(default_factory=dict)
    #: Possibly-entangled components: shared-set representation.
    comp: Dict[Qubit, Set[Qubit]] = field(default_factory=dict)
    events: List[LifetimeEvent] = field(default_factory=list)
    _seen: Set[Tuple[str, Optional[int], str]] = field(default_factory=set)

    def state(self, q: Qubit) -> _QubitState:
        st = self.qubits.get(q)
        if st is None:
            st = _QubitState()
            self.qubits[q] = st
        return st

    def component(self, q: Qubit) -> Set[Qubit]:
        members = self.comp.get(q)
        if members is None:
            members = {q}
            self.comp[q] = members
        return members

    def union(self, qubits: Tuple[Qubit, ...]) -> None:
        merged = self.component(qubits[0])
        for q in qubits[1:]:
            other = self.component(q)
            if other is merged:
                continue
            if len(other) > len(merged):
                merged, other = other, merged
            merged.update(other)
            for member in other:
                self.comp[member] = merged

    def detach(self, q: Qubit) -> None:
        self.component(q).discard(q)
        self.comp[q] = {q}

    def entangled(self, q: Qubit) -> bool:
        return len(self.component(q)) > 1 or self.state(q).tainted

    def partners(self, q: Qubit) -> List[Qubit]:
        return sorted(
            (p for p in self.component(q) if p != q),
            key=lambda p: (p.register, p.index),
        )

    def emit(
        self,
        kind: str,
        module: str,
        stmt: Optional[int],
        qubit: Qubit,
        message: str,
        loc: Optional[SourceLocation],
    ) -> None:
        key = (kind, stmt, _qname(qubit))
        if key in self._seen:
            return
        self._seen.add(key)
        self.events.append(
            LifetimeEvent(
                kind=kind,
                module=module,
                stmt=stmt,
                qubit=_qname(qubit),
                message=message,
                loc=loc,
            )
        )


class _LifetimeTransfer:
    """Transfer functions of the lifetime walk (one module body)."""

    def __init__(
        self,
        module: Module,
        callees: Mapping[str, LifetimeSummary],
    ) -> None:
        self._module = module
        self._callees = callees

    def boundary(self, module: Module) -> _WalkState:
        walk = _WalkState()
        for q in module.params:
            walk.state(q)  # parameters exist from entry, untouched
        return walk

    # -- gates ---------------------------------------------------------

    def operation(
        self, walk: _WalkState, op: Operation, index: int
    ) -> _WalkState:
        name = self._module.name
        if op.gate in PREP_GATES:
            q = op.qubits[0]
            st = walk.state(q)
            if walk.entangled(q):
                partners = walk.partners(q)
                detail = (
                    f"with {_qname(partners[0])}"
                    if partners
                    else "with callee-internal state"
                )
                walk.emit(
                    "entangled-prep",
                    name,
                    index,
                    q,
                    f"{_qname(q)} is re-prepared by {op.gate} while "
                    f"possibly entangled {detail}: the preparation "
                    f"collapses its partners as a side effect",
                    op.loc,
                )
            walk.detach(q)
            st.tainted = False
            st.release = None
            if st.status is QubitStatus.UNTOUCHED:
                st.pending_prep = index
                st.pending_loc = op.loc
                st.first = "prep"
            else:
                st.direct_after_call = True
            st.status = QubitStatus.CLEAN
            st.used = True
            return walk

        if op.gate in MEAS_GATES:
            q = op.qubits[0]
            st = walk.state(q)
            if st.release is not None and st.release.source == "call":
                walk.emit(
                    "use-after-release",
                    name,
                    index,
                    q,
                    f"{_qname(q)} is measured by {op.gate} after "
                    f"call to {st.release.via!r} already released it "
                    f"(stmt {st.release.stmt}): the result is "
                    f"redundant",
                    op.loc,
                )
            st.release = _Release(index, "direct", op.gate)
            st.status = QubitStatus.RELEASED
            walk.detach(q)
            st.tainted = False
            st.pending_prep = None
            st.used = True
            if st.first == "none":
                st.first = "use"
            st.direct_after_call = True
            return walk

        states = [walk.state(q) for q in op.qubits]
        for q, st in zip(op.qubits, states):
            if st.release is not None:
                if st.release.source == "call":
                    walk.emit(
                        "use-after-release",
                        name,
                        index,
                        q,
                        f"{op.gate} is applied to {_qname(q)} after "
                        f"call to {st.release.via!r} released it "
                        f"(measured on exit, stmt {st.release.stmt}) "
                        f"without re-preparation",
                        op.loc,
                    )
                # Direct-release/direct-use is QL006's finding; either
                # way the defect is reported once, so clear the mark.
                st.release = None
            st.pending_prep = None
            st.used = True
            if st.first == "none":
                st.first = "use"
            st.direct_after_call = True
        classical = all(
            st.status in (QubitStatus.UNTOUCHED, QubitStatus.CLEAN)
            for st in states
        )
        if classical and op.gate in BASIS_PRESERVING:
            for st in states:
                st.status = QubitStatus.CLEAN
        else:
            for st in states:
                st.status = QubitStatus.ACTIVE
            if len(op.qubits) > 1:
                walk.union(op.qubits)
        return walk

    # -- calls ---------------------------------------------------------

    def call(
        self, walk: _WalkState, call: CallSite, index: int
    ) -> _WalkState:
        summary = self._callees.get(call.callee)
        if summary is None:  # unknown callee: weaken like QL0xx does
            for q in call.args:
                st = walk.state(q)
                st.escaped = True
                st.used = True
                st.release = None
                st.pending_prep = None
            return walk
        # A summary application is idempotent from the second
        # repetition on, so iterated calls are modelled exactly by
        # applying the transfer twice: the second application sees the
        # first's exit state and surfaces iteration-boundary hazards
        # (e.g. a callee that measures a parameter it also consumes).
        applications = 2 if call.iterations > 1 else 1
        for _ in range(applications):
            self._apply_summary(walk, call, index, summary)
        return walk

    def _apply_summary(
        self,
        walk: _WalkState,
        call: CallSite,
        index: int,
        summary: LifetimeSummary,
    ) -> None:
        name = self._module.name
        pairs = list(zip(call.args, summary.params))
        # Checks against the incoming state first.
        for q, ps in pairs:
            st = walk.state(q)
            if st.release is not None and ps.used and ps.first != "prep":
                walk.emit(
                    "use-after-release",
                    name,
                    index,
                    q,
                    f"{_qname(q)} is passed to {call.callee!r}, which "
                    f"consumes it, after it was released "
                    f"(measured without re-preparation, "
                    f"stmt {st.release.stmt}, via {st.release.via})",
                    call.loc,
                )
                st.release = None
            if ps.used and ps.first == "prep" and walk.entangled(q):
                partners = walk.partners(q)
                detail = (
                    f"with {_qname(partners[0])}"
                    if partners
                    else "with callee-internal state"
                )
                walk.emit(
                    "entangled-prep",
                    name,
                    index,
                    q,
                    f"{_qname(q)} is passed to {call.callee!r}, whose "
                    f"first action re-prepares it, while possibly "
                    f"entangled {detail}: the preparation collapses "
                    f"its partners as a side effect",
                    call.loc,
                )
        # Exit effects.
        tainted_params = {
            j for j, ps in enumerate(summary.params) if ps.tainted
        }
        for j, (q, ps) in enumerate(pairs):
            st = walk.state(q)
            st.escaped = True
            if ps.used:
                st.used = True
                # A callee whose first action re-prepares the qubit
                # never observes the incoming value, so a pending
                # (unconsumed) preparation in this frame stays dead.
                if ps.first != "prep":
                    st.pending_prep = None
            if st.first == "none" and ps.first != "none":
                st.first = ps.first
            if ps.exit == QubitStatus.CLEAN.value:
                st.status = QubitStatus.CLEAN
                walk.detach(q)
                st.tainted = False
                st.release = None
                st.direct_after_call = True  # callee cleaned it up
            elif ps.exit == QubitStatus.ACTIVE.value:
                st.status = QubitStatus.ACTIVE
                st.release = None
                st.last_call = index
                st.last_callee = call.callee
                st.last_call_loc = call.loc
                st.direct_after_call = False
            elif ps.exit == QubitStatus.RELEASED.value:
                st.status = QubitStatus.RELEASED
                st.release = _Release(index, "call", call.callee)
                walk.detach(q)
                st.tainted = False
            if j in tainted_params:
                st.tainted = True
        # Exit entanglement among the arguments.
        for group in summary.groups:
            members = tuple(call.args[j] for j in group)
            if len(members) > 1:
                walk.union(members)


def walk_module(
    module: Module,
    callees: Mapping[str, LifetimeSummary],
    entry: bool = False,
) -> Tuple[LifetimeSummary, List[LifetimeEvent]]:
    """Walk one module body against its callee summaries.

    Returns the module's own :class:`LifetimeSummary` plus the
    :class:`LifetimeEvent` findings of the walk (exit findings — dead
    writes and leaked ancillas — are suppressed where the qubit's fate
    belongs to the caller or to the program output, mirroring
    ``QL003``'s ownership rules; ``entry`` marks the program entry,
    whose leftovers *are* the outputs).
    """
    walk = run_forward(module, _LifetimeTransfer(module, callees))
    params = set(module.params)
    name = module.name

    for q in module.qubits():
        st = walk.qubits.get(q)
        if st is None:
            continue
        is_param = q in params
        if st.pending_prep is not None and (entry or not is_param):
            walk.emit(
                "dead-write",
                name,
                st.pending_prep,
                q,
                f"{_qname(q)} is prepared at stmt {st.pending_prep} "
                f"but its value is never consumed (dead write)",
                st.pending_loc,
            )
        if (
            not entry
            and not is_param
            and st.status is QubitStatus.ACTIVE
            and st.last_call is not None
            and not st.direct_after_call
        ):
            walk.emit(
                "ancilla-leak",
                name,
                st.last_call,
                q,
                f"local qubit {_qname(q)} of module {name!r} is left "
                f"dirty by the call to {st.last_callee!r} and never "
                f"uncomputed, measured, or re-prepared before the "
                f"module returns (interprocedural ancilla leak)",
                st.last_call_loc,
            )

    # -- summarise the parameters --------------------------------------
    param_summaries: List[ParamSummary] = []
    for q in module.params:
        st = walk.state(q)
        tainted = st.tainted or any(
            p not in params
            and walk.state(p).status is QubitStatus.ACTIVE
            for p in walk.component(q)
            if p != q
        )
        param_summaries.append(
            ParamSummary(
                used=st.used,
                first=st.first,
                exit=st.status.value,
                tainted=tainted,
            )
        )
    index_of = {q: i for i, q in enumerate(module.params)}
    groups: Set[Tuple[int, ...]] = set()
    for q in module.params:
        member_ids = tuple(
            sorted(
                index_of[p]
                for p in walk.component(q)
                if p in index_of
            )
        )
        if len(member_ids) > 1:
            groups.add(member_ids)
    summary = LifetimeSummary(
        params=tuple(param_summaries),
        groups=tuple(sorted(groups)),
    )
    return summary, walk.events


class LifetimeAnalysis:
    """The lifetime summary computation, engine-shaped (see
    :class:`~repro.analysis.dataflow.InterproceduralAnalysis`)."""

    name = "qubit-lifetime"
    version = "1"

    def summarize(
        self,
        module: Module,
        callees: Mapping[str, LifetimeSummary],
    ) -> LifetimeSummary:
        summary, _ = walk_module(module, callees, entry=False)
        return summary

    def to_payload(self, summary: LifetimeSummary) -> Dict[str, Any]:
        return {
            "params": [
                [p.used, p.first, p.exit, p.tainted]
                for p in summary.params
            ],
            "groups": [list(g) for g in summary.groups],
        }

    def from_payload(self, payload: Dict[str, Any]) -> LifetimeSummary:
        return LifetimeSummary(
            params=tuple(
                ParamSummary(
                    used=bool(p[0]),
                    first=str(p[1]),
                    exit=str(p[2]),
                    tainted=bool(p[3]),
                )
                for p in payload["params"]
            ),
            groups=tuple(
                tuple(int(i) for i in g) for g in payload["groups"]
            ),
        )


def emit_lifetime_events(
    program: Program,
    summaries: Mapping[str, LifetimeSummary],
) -> List[LifetimeEvent]:
    """Replay every reachable module against the (possibly cached)
    summaries and collect the findings. Always runs — a summary cache
    hit must never swallow a diagnostic."""
    events: List[LifetimeEvent] = []
    for name in program.topological_order():
        module = program.modules[name]
        _, found = walk_module(
            module,
            {c: summaries[c] for c in module.callees() if c in summaries},
            entry=(name == program.entry),
        )
        events.extend(found)
    return events


# ---------------------------------------------------------------------------
# The QL4xx deep rules: events -> diagnostics
# ---------------------------------------------------------------------------


def _emit_kind(context: Any, out: Reporter, kind: str) -> None:
    for ev in context.lifetime_events():
        if ev.kind != kind:
            continue
        out.emit(
            ev.message,
            module=ev.module,
            stmt=ev.stmt,
            qubit=ev.qubit,
            loc=ev.loc,
        )


@deep_rule(
    "QL401",
    "dead-write",
    Severity.WARNING,
    "A first-touch preparation whose value is never consumed, with "
    "callee effects resolved through lifetime summaries.",
)
def check_dead_write(context: Any, out: Reporter) -> None:
    _emit_kind(context, out, "dead-write")


@deep_rule(
    "QL402",
    "use-after-release",
    Severity.ERROR,
    "A qubit is consumed after being released (measured without "
    "re-preparation) across a call boundary.",
)
def check_use_after_release(context: Any, out: Reporter) -> None:
    _emit_kind(context, out, "use-after-release")


@deep_rule(
    "QL403",
    "interprocedural-ancilla-leak",
    Severity.WARNING,
    "A local qubit left dirty by a callee escapes its owning module "
    "without cleanup (the cross-call complement of QL003).",
)
def check_interprocedural_leak(context: Any, out: Reporter) -> None:
    _emit_kind(context, out, "ancilla-leak")


@deep_rule(
    "QL404",
    "entangled-reprep",
    Severity.WARNING,
    "A qubit is re-prepared while possibly entangled, collapsing its "
    "partners as a side effect.",
)
def check_entangled_reprep(context: Any, out: Reporter) -> None:
    _emit_kind(context, out, "entangled-prep")
