"""Deep (interprocedural) analysis orchestration — ``lint --deep``.

Ties the pieces together:

1. run the :mod:`.dataflow` fixpoint engine bottom-up over the call
   graph for each registered interprocedural analysis (qubit lifetime,
   resource bounds), optionally memoizing per-module summaries through
   a :class:`~repro.analysis.dataflow.SummaryCache` so warm runs skip
   the per-module transfer work entirely;
2. package the summary tables into a :class:`DeepContext`;
3. run the registered deep-rule battery
   (:func:`~repro.analysis.registry.analyze_deep_rules`) over the
   context to produce diagnostics.

The split keeps caching sound: cached artifacts are *summaries* (pure
facts about modules), never diagnostics — emission always re-runs, so
a warm cache can never swallow findings.

Every stage is timed under ``analysis:*`` spans
(:mod:`repro.instrument`), so ``lint --deep --json`` can report where
the time went and how well the summary cache performed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from ..arch.machine import MultiSIMD
from ..core.module import Program
from ..instrument import span
from .dataflow import FixpointResult, SummaryCache, solve_bottom_up
from .diagnostics import DiagnosticSet
from .lifetime_rules import (
    LifetimeAnalysis,
    LifetimeEvent,
    LifetimeSummary,
    emit_lifetime_events,
)
from .registry import analyze_deep_rules
from .resource_rules import ResourceAnalysis, ResourceSummary

__all__ = ["DeepContext", "DeepAnalysis", "analyze_deep", "DEFAULT_MACHINE"]

#: Machine assumed when the caller doesn't name one — the paper's
#: headline Multi-SIMD(4, 4) configuration.
DEFAULT_MACHINE = MultiSIMD(k=4, d=4)


@dataclass
class DeepContext:
    """Everything a deep rule may consult.

    Deep rules receive this object and *read* it; they never recompute
    fixpoints. The interprocedural event replay (the expensive part of
    the lifetime rules) is computed lazily and shared across the four
    ``QL4xx`` rules.
    """

    program: Program
    machine: MultiSIMD
    lifetime: Dict[str, LifetimeSummary]
    resources: Dict[str, ResourceSummary]
    _events: Optional[List[LifetimeEvent]] = field(
        default=None, repr=False
    )

    def lifetime_events(self) -> List[LifetimeEvent]:
        """Interprocedural lifetime events (cached replay)."""
        if self._events is None:
            self._events = emit_lifetime_events(
                self.program, self.lifetime
            )
        return self._events


@dataclass
class DeepAnalysis:
    """Result bundle of :func:`analyze_deep`.

    Attributes:
        diagnostics: combined findings of the deep-rule battery.
        context: the summary-laden context the rules consumed.
        lifetime_result: fixpoint result (order, iterations, cache
            stats) of the qubit-lifetime analysis.
        resource_result: fixpoint result of the resource-bounds
            analysis.
    """

    diagnostics: DiagnosticSet
    context: DeepContext
    lifetime_result: FixpointResult[LifetimeSummary]
    resource_result: FixpointResult[ResourceSummary]

    def cache_stats(self) -> Dict[str, Optional[Dict[str, Any]]]:
        """Per-analysis summary-cache statistics, JSON-shaped
        (``None`` per analysis when no cache was used)."""
        lt = self.lifetime_result.cache_stats
        rs = self.resource_result.cache_stats
        return {
            "lifetime": lt.to_dict() if lt is not None else None,
            "resource": rs.to_dict() if rs is not None else None,
        }


def analyze_deep(
    program: Program,
    machine: Optional[MultiSIMD] = None,
    cache: Optional[SummaryCache] = None,
    codes: Optional[Iterable[str]] = None,
) -> DeepAnalysis:
    """Run the full interprocedural battery over ``program``.

    Args:
        program: a validated program.
        machine: target machine for the resource-fit rules (default:
            :data:`DEFAULT_MACHINE`).
        cache: optional persistent summary cache; summaries whose
            fingerprint (module shape + callee summaries + analysis
            version + pipeline version) is already stored are loaded
            instead of recomputed.
        codes: restrict emission to these deep-rule codes
            (default: all registered deep rules).

    Returns:
        a :class:`DeepAnalysis` with diagnostics, context and
        fixpoint/caching metadata.
    """
    target = machine if machine is not None else DEFAULT_MACHINE
    with span("analysis:lifetime"):
        lifetime_result = solve_bottom_up(
            program, LifetimeAnalysis(), cache=cache
        )
    with span("analysis:resource"):
        resource_result = solve_bottom_up(
            program, ResourceAnalysis(), cache=cache
        )
    context = DeepContext(
        program=program,
        machine=target,
        lifetime=dict(lifetime_result.summaries),
        resources=dict(resource_result.summaries),
    )
    with span("analysis:deep-rules"):
        diagnostics = analyze_deep_rules(context, codes=codes)
    return DeepAnalysis(
        diagnostics=diagnostics,
        context=context,
        lifetime_result=lifetime_result,
        resource_result=resource_result,
    )
