"""Structured diagnostics for the static analyzer.

Every finding the analyzer (``qlint``) produces is a :class:`Diagnostic`
with a stable code (``QL001`` ...), a :class:`Severity`, a human-readable
message, and optional anchors: the module it concerns, the statement
index within that module's body, the qubit involved, and a
:class:`~repro.core.source.SourceLocation` when the program came from a
front-end. :class:`DiagnosticSet` is the ordered collection the whole
toolchain passes around — the CLI renders it as text or JSON, strict
compilation raises :class:`AnalysisError` from it, and the schedule
auditor accumulates *all* violations into one instead of dying on the
first.

Code ranges (see the table in ``DESIGN.md``):

* ``QL0xx`` — program-level dataflow rules (:mod:`.program_rules`);
* ``QL1xx`` — front-end findings (:mod:`.frontend`);
* ``QL2xx`` — schedule structural invariants (:mod:`.schedule_audit`);
* ``QL3xx`` — replay / physical-realisability invariants;
* ``QL4xx`` — interprocedural qubit lifetime (:mod:`.lifetime_rules`);
* ``QL5xx`` — static resource/communication bounds
  (:mod:`.resource_rules`).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Union,
    overload,
)

from ..core.source import SourceLocation

__all__ = [
    "Severity",
    "Diagnostic",
    "DiagnosticSet",
    "AnalysisError",
]


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered: INFO < WARNING < ERROR."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        """Parse a severity name (case-insensitive).

        Raises:
            ValueError: if ``name`` is not a severity.
        """
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {name!r} (expected one of "
                f"{', '.join(s.name.lower() for s in cls)})"
            ) from None


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    Attributes:
        code: stable machine-readable code (``QL001`` ...).
        severity: :class:`Severity` of the finding.
        message: human-readable description.
        module: name of the IR module the finding concerns, if any.
        stmt: statement index within the module's body, if applicable.
        qubit: rendered qubit name (``reg[i]``), if the finding is
            anchored to one.
        loc: source position, when the program came from a front-end.
        rule: name of the producing rule (``use-before-init`` ...).
    """

    code: str
    severity: Severity
    message: str
    module: Optional[str] = None
    stmt: Optional[int] = None
    qubit: Optional[str] = None
    loc: Optional[SourceLocation] = None
    rule: Optional[str] = None

    def render(self) -> str:
        """One-line human-readable rendering."""
        parts = [f"{self.severity}[{self.code}]"]
        anchor = ""
        if self.loc is not None:
            anchor = str(self.loc)
        elif self.module is not None:
            anchor = f"module {self.module!r}"
            if self.stmt is not None:
                anchor += f" stmt {self.stmt}"
        if anchor:
            parts.append(f"{anchor}:")
        parts.append(self.message)
        if self.loc is not None and self.module is not None:
            parts.append(f"[module {self.module!r}]")
        return " ".join(parts)

    def to_dict(self) -> dict:
        out = {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
        }
        if self.module is not None:
            out["module"] = self.module
        if self.stmt is not None:
            out["stmt"] = self.stmt
        if self.qubit is not None:
            out["qubit"] = self.qubit
        if self.loc is not None:
            out["location"] = self.loc.to_dict()
        if self.rule is not None:
            out["rule"] = self.rule
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Diagnostic":
        """Inverse of :meth:`to_dict` (used by the artifact store)."""
        loc = data.get("location")
        return cls(
            code=data["code"],
            severity=Severity.from_name(data["severity"]),
            message=data["message"],
            module=data.get("module"),
            stmt=data.get("stmt"),
            qubit=data.get("qubit"),
            loc=SourceLocation.from_dict(loc) if loc else None,
            rule=data.get("rule"),
        )


def _sort_key(d: Diagnostic) -> Tuple[str, int, int, int, str]:
    loc = d.loc
    return (
        d.module or "",
        loc.line if loc else 1 << 30,
        loc.column if loc else 1 << 30,
        d.stmt if d.stmt is not None else 1 << 30,
        d.code,
    )


class DiagnosticSet:
    """An ordered collection of diagnostics with rendering helpers."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self._diags: List[Diagnostic] = list(diagnostics)

    # -- construction ----------------------------------------------------

    def add(self, diagnostic: Diagnostic) -> None:
        self._diags.append(diagnostic)

    def extend(self, other: Iterable[Diagnostic]) -> None:
        self._diags.extend(other)

    # -- container protocol ---------------------------------------------

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._diags)

    def __len__(self) -> int:
        return len(self._diags)

    def __bool__(self) -> bool:
        return bool(self._diags)

    @overload
    def __getitem__(self, idx: int) -> Diagnostic: ...

    @overload
    def __getitem__(self, idx: slice) -> List[Diagnostic]: ...

    def __getitem__(
        self, idx: Union[int, slice]
    ) -> Union[Diagnostic, List[Diagnostic]]:
        return self._diags[idx]

    # -- queries ---------------------------------------------------------

    def at_least(self, severity: Severity) -> List[Diagnostic]:
        """Diagnostics at or above ``severity``."""
        return [d for d in self._diags if d.severity >= severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self._diags if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [
            d for d in self._diags if d.severity == Severity.WARNING
        ]

    @property
    def has_errors(self) -> bool:
        return any(
            d.severity == Severity.ERROR for d in self._diags
        )

    @property
    def max_severity(self) -> Optional[Severity]:
        if not self._diags:
            return None
        return max(d.severity for d in self._diags)

    def codes(self) -> Set[str]:
        """The distinct diagnostic codes present."""
        return {d.code for d in self._diags}

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self._diags if d.code == code]

    def counts(self) -> Dict[str, int]:
        """Count of diagnostics per severity name."""
        out: Dict[str, int] = {str(s): 0 for s in Severity}
        for d in self._diags:
            out[str(d.severity)] += 1
        return out

    def sorted(self) -> List[Diagnostic]:
        """Diagnostics ordered by (module, location, code)."""
        return sorted(self._diags, key=_sort_key)

    # -- rendering -------------------------------------------------------

    def render(self) -> str:
        """Multi-line human-readable listing plus a summary line."""
        lines = [d.render() for d in self.sorted()]
        counts = self.counts()
        summary = ", ".join(
            f"{n} {name}{'s' if n != 1 else ''}"
            for name, n in (
                ("error", counts["error"]),
                ("warning", counts["warning"]),
                ("info", counts["info"]),
            )
            if n
        )
        lines.append(summary or "no findings")
        return "\n".join(lines)

    def to_list(self) -> List[dict]:
        return [d.to_dict() for d in self.sorted()]

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Machine-readable JSON rendering."""
        return json.dumps(
            {
                "diagnostics": self.to_list(),
                "counts": self.counts(),
            },
            indent=indent,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        c = self.counts()
        return (
            f"DiagnosticSet({c['error']}E/{c['warning']}W/"
            f"{c['info']}I)"
        )


class AnalysisError(Exception):
    """Raised by strict compilation when the analyzer finds errors.

    Attributes:
        diagnostics: the full :class:`DiagnosticSet` of the failing
            analysis run (errors and lower-severity findings alike).
        stage: which toolflow stage the analysis ran at.
    """

    def __init__(
        self, diagnostics: DiagnosticSet, stage: str = "input"
    ) -> None:
        self.diagnostics = diagnostics
        self.stage = stage
        errors = diagnostics.errors
        head = (
            f"static analysis found {len(errors)} error(s) at stage "
            f"{stage!r}"
        )
        detail = "\n".join(d.render() for d in errors[:10])
        if len(errors) > 10:
            detail += f"\n... and {len(errors) - 10} more"
        super().__init__(f"{head}:\n{detail}" if detail else head)
