"""Structured event traces for engine runs (schema ``repro.trace/1``).

An engine run emits :class:`TraceEvent` records — gate batches, movement
epochs, stalls, faults, and coarse blackbox spans — onto an
:class:`EventTrace`. The trace exports two ways:

* the **native payload** (:meth:`EventTrace.to_payload`): a versioned,
  JSON-safe document with per-track utilization and stall-breakdown
  stats, validated by :func:`validate_trace_payload`;
* the **Chrome trace-event format** (:func:`chrome_trace_events` /
  :func:`write_chrome_trace`): complete-duration (``"ph": "X"``) events
  plus process/thread metadata, loadable in ``chrome://tracing`` and
  Perfetto (https://ui.perfetto.dev). One engine cycle maps to one
  microsecond of trace time.

Event vocabulary (``cat``): ``gate`` (one SIMD region-timestep batch),
``move`` (one movement epoch), ``stall`` (EPR / bandwidth / fault
waits), ``fault`` (instantaneous fault markers), ``blackbox`` (coarse
placements of callee modules).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "TRACE_SCHEMA",
    "TraceEvent",
    "EventTrace",
    "chrome_trace_events",
    "write_chrome_trace",
    "validate_trace_payload",
]

#: Version tag of the native trace document layout.
TRACE_SCHEMA = "repro.trace/1"

#: Known event categories.
_CATEGORIES = ("gate", "move", "stall", "fault", "blackbox")


@dataclass(frozen=True)
class TraceEvent:
    """One traced span or marker.

    Attributes:
        name: display name (gate type, ``teleport-epoch``, stall
            reason, callee name ...).
        cat: one of ``gate``/``move``/``stall``/``fault``/``blackbox``.
        start: engine cycle the event begins at.
        duration: cycles covered (0 = instantaneous marker).
        track: lane the event renders on (``region0``..,
            ``memory``, ``coarse0``.. for blackbox rows).
        args: extra JSON-safe attributes (op counts, pair counts ...).
    """

    name: str
    cat: str
    start: int
    duration: int
    track: str
    args: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cat not in _CATEGORIES:
            raise ValueError(f"unknown trace category {self.cat!r}")
        if self.start < 0 or self.duration < 0:
            raise ValueError("trace events cannot have negative time")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "cat": self.cat,
            "start": self.start,
            "dur": self.duration,
            "track": self.track,
        }
        if self.args:
            out["args"] = self.args
        return out


class EventTrace:
    """An append-only event collection for one execution scope.

    Attributes:
        scope: the module (or program) the events belong to.
        core: owning core index for multi-core executions (``None``
            for single-core traces — the default, and the wire format
            then omits the field entirely).
        events: the events, in emission order.
    """

    def __init__(self, scope: str = "", core: Optional[int] = None) -> None:
        self.scope = scope
        self.core = core
        self.events: List[TraceEvent] = []

    def emit(
        self,
        name: str,
        cat: str,
        start: int,
        duration: int,
        track: str,
        **args: Any,
    ) -> None:
        self.events.append(
            TraceEvent(name, cat, start, duration, track, args)
        )

    def __len__(self) -> int:
        return len(self.events)

    def busy_by_track(self) -> Dict[str, int]:
        """Cycles covered by non-stall events, per track."""
        out: Dict[str, int] = {}
        for e in self.events:
            if e.cat in ("gate", "move", "blackbox"):
                out[e.track] = out.get(e.track, 0) + e.duration
        return out

    def stall_cycles(self) -> Dict[str, int]:
        """Stalled cycles broken down by stall reason (event name)."""
        out: Dict[str, int] = {}
        for e in self.events:
            if e.cat == "stall":
                out[e.name] = out.get(e.name, 0) + e.duration
        return out

    def to_payload(
        self,
        runtime: int,
        machine: Optional[Dict[str, Any]] = None,
        stats: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """The versioned native trace document for this scope."""
        return build_payload(
            [(self.scope, self)],
            runtime=runtime,
            machine=machine,
            stats=stats,
        )


def build_payload(
    sections: List[Tuple[str, EventTrace]],
    runtime: int,
    machine: Optional[Dict[str, Any]] = None,
    stats: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a ``repro.trace/1`` document from per-scope traces.

    Multi-scope payloads (one section per module of a program
    execution) keep each scope as a Chrome "process"; events carry
    their scope in a ``pid`` field.
    """
    events: List[Dict[str, Any]] = []
    for scope, trace in sections:
        for e in trace.events:
            record = e.to_dict()
            record["pid"] = scope or "program"
            if trace.core is not None:
                record["core"] = trace.core
            events.append(record)
    utilization = {}
    for scope, trace in sections:
        busy = trace.busy_by_track()
        if runtime > 0:
            utilization[scope or "program"] = {
                track: cycles / runtime
                for track, cycles in sorted(busy.items())
            }
    payload: Dict[str, Any] = {
        "schema": TRACE_SCHEMA,
        "generator": "repro.engine",
        "runtime_cycles": runtime,
        "machine": machine or {},
        "stats": {
            "events": len(events),
            "utilization": utilization,
            "stalls": _merge_stalls(sections),
            **(stats or {}),
        },
        "events": events,
    }
    return payload


def _merge_stalls(
    sections: List[Tuple[str, EventTrace]],
) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for _, trace in sections:
        for name, cycles in trace.stall_cycles().items():
            out[name] = out.get(name, 0) + cycles
    return out


# -- Chrome trace-event export ------------------------------------------


def chrome_trace_events(payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Convert a native payload to Chrome trace-event JSON records.

    Emits ``"ph": "X"`` complete events (1 cycle = 1 µs) plus ``"M"``
    metadata records naming each process (scope) and thread (track), so
    the result loads directly in ``chrome://tracing`` and Perfetto.
    Zero-duration events are emitted as instant (``"ph": "i"``)
    markers.

    Multi-core events (records carrying a ``core`` field) render one
    lane per core: the thread id is the core id (offset into a
    reserved band so it can never collide with the track lanes), named
    ``core<N>``. Single-core payloads carry no ``core`` fields and are
    exported exactly as before.
    """
    # Track lanes count up from 1; core lanes live at 1000 + core so
    # the two id spaces cannot collide within a process.
    core_lane_base = 1000
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, str], int] = {}
    core_lanes: set = set()
    out: List[Dict[str, Any]] = []
    for e in payload.get("events", []):
        scope = e.get("pid", "program")
        if scope not in pids:
            pids[scope] = len(pids) + 1
            out.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pids[scope],
                    "tid": 0,
                    "args": {"name": scope},
                }
            )
        core = e.get("core")
        if core is not None:
            tid = core_lane_base + core
            if (scope, core) not in core_lanes:
                core_lanes.add((scope, core))
                out.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": pids[scope],
                        "tid": tid,
                        "args": {"name": f"core{core}"},
                    }
                )
        else:
            key = (scope, e["track"])
            if key not in tids:
                tids[key] = len(tids) + 1
                out.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": pids[scope],
                        "tid": tids[key],
                        "args": {"name": e["track"]},
                    }
                )
            tid = tids[key]
        record = {
            "name": e["name"],
            "cat": e["cat"],
            "pid": pids[scope],
            "tid": tid,
            "ts": e["start"],
            "args": e.get("args", {}),
        }
        if e["dur"] > 0:
            record["ph"] = "X"
            record["dur"] = e["dur"]
        else:
            record["ph"] = "i"
            record["s"] = "t"
        out.append(record)
    return out


def write_chrome_trace(path: str, payload: Dict[str, Any]) -> int:
    """Write ``payload`` as a Chrome trace file; returns event count.

    The output is the object form (``{"traceEvents": [...]}``) with the
    native schema tag preserved in ``otherData`` for provenance.
    """
    events = chrome_trace_events(payload)
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": payload.get("schema", TRACE_SCHEMA),
            "generator": payload.get("generator", "repro.engine"),
            "runtime_cycles": payload.get("runtime_cycles"),
        },
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
    return len(events)


# -- validation ----------------------------------------------------------


def validate_trace_payload(payload: Any) -> List[str]:
    """Structural check of a ``repro.trace/1`` document.

    Returns a list of problems (empty when valid). Hand-rolled like
    :func:`repro.service.validate_sweep_payload`; the schema is
    documented in ``DESIGN.md``.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("schema") != TRACE_SCHEMA:
        problems.append(
            f"schema: expected {TRACE_SCHEMA!r}, got "
            f"{payload.get('schema')!r}"
        )
    runtime = payload.get("runtime_cycles")
    if not isinstance(runtime, int) or runtime < 0:
        problems.append(
            f"runtime_cycles: expected non-negative int, got {runtime!r}"
        )
    if not isinstance(payload.get("machine"), dict):
        problems.append("machine: expected object")
    stats = payload.get("stats")
    if not isinstance(stats, dict):
        problems.append("stats: expected object")
    else:
        for key in ("utilization", "stalls"):
            if not isinstance(stats.get(key), dict):
                problems.append(f"stats.{key}: expected object")
    events = payload.get("events")
    if not isinstance(events, list):
        return problems + ["events: expected array"]
    for idx, e in enumerate(events):
        where = f"events[{idx}]"
        if not isinstance(e, dict):
            problems.append(f"{where}: not an object")
            continue
        for key, types in (
            ("name", str),
            ("cat", str),
            ("track", str),
            ("start", int),
            ("dur", int),
        ):
            if not isinstance(e.get(key), types):
                problems.append(
                    f"{where}.{key}: expected {types.__name__}, got "
                    f"{type(e.get(key)).__name__}"
                )
        if e.get("cat") not in _CATEGORIES:
            problems.append(
                f"{where}.cat: unknown category {e.get('cat')!r}"
            )
        if "core" in e and not (
            isinstance(e["core"], int) and e["core"] >= 0
        ):
            problems.append(
                f"{where}.core: expected non-negative int, got "
                f"{e['core']!r}"
            )
        if isinstance(e.get("start"), int) and isinstance(
            e.get("dur"), int
        ):
            if e["start"] < 0 or e["dur"] < 0:
                problems.append(f"{where}: negative time")
            elif (
                isinstance(runtime, int)
                and e["start"] + e["dur"] > runtime
            ):
                problems.append(
                    f"{where}: extends past runtime_cycles "
                    f"({e['start']}+{e['dur']} > {runtime})"
                )
    return problems
