"""Stateful Multi-SIMD machine model for the execution engine.

Tracks, while a schedule executes:

* **qubit residency** — global memory, SIMD regions, scratchpad slots
  (the same location encoding as :class:`repro.arch.memory.MemoryMap`);
* **per-channel EPR pair pools** — pairs are generated at the global
  memory at a steady rate and consumed one per teleport
  (:class:`EPRPool` reproduces the eager-generation accounting of
  :func:`repro.arch.epr_schedule.plan_epr_distribution` exactly, so
  the engine's stalls agree with the static plan);
* **per-region activity** — busy cycles and executed op counts for
  utilization reporting.

State updates are *tolerant*: applying a move whose source disagrees
with the tracked location repairs the state and keeps going. Catching
such inconsistencies is the preflight's job
(:func:`repro.sched.replay.replay_schedule`); the engine is an
executor, not a validator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..arch.machine import MultiSIMD
from ..core.qubits import Qubit
from ..sched.types import Move

__all__ = ["EPRPool", "InterconnectState", "MachineState"]


def _loc_label(loc: tuple) -> str:
    return "global" if loc[0] == "global" else f"{loc[0]}{loc[1]}"


@dataclass
class EPRPool:
    """Eagerly generated EPR pairs, consumed by teleport epochs.

    The generator starts at cycle 0 and never idles: cumulative
    production at engine clock ``c`` is ``prestage + rate * c`` (the
    prestage covers demand pinned to cycle 0, which no finite rate
    could otherwise serve — matching
    :func:`~repro.arch.epr_schedule.plan_epr_distribution`). Failed
    generation attempts (fault injection) occupy production slots, so
    they delay later consumers at finite rates.

    Attributes:
        rate: steady generation rate in pairs/cycle (``inf`` =
            just-in-time generation, never stalls).
        prestage: pairs staged before cycle 0.
        consumed: good pairs consumed so far.
        wasted: failed generation attempts charged to the generator.
        channel_pairs: per ``(src, dst)`` label consumption counts.
    """

    rate: float = math.inf
    prestage: int = 0
    consumed: int = 0
    wasted: int = 0
    channel_pairs: Dict[Tuple[str, str], int] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")

    def stall_for(self, demand: int, clock: int) -> int:
        """Cycles to wait at ``clock`` before ``demand`` more units
        (pairs + wasted attempts) are available; 0 at infinite rate."""
        if math.isinf(self.rate) or demand <= 0:
            return 0
        need = self.consumed + self.wasted + demand
        produced = self.prestage + self.rate * clock
        if produced >= need:
            return 0
        return math.ceil((need - produced) / self.rate)

    def consume(
        self,
        moves: Iterable[Move],
        wasted_attempts: int = 0,
    ) -> None:
        """Account one epoch's teleports (plus failed attempts)."""
        for m in moves:
            key = (_loc_label(m.src), _loc_label(m.dst))
            self.channel_pairs[key] = self.channel_pairs.get(key, 0) + 1
            self.consumed += 1
        self.wasted += wasted_attempts

    def consume_pairs(
        self, count: int, channel: Tuple[str, str]
    ) -> None:
        """Account ``count`` pairs on one labelled channel (the
        inter-core interconnect path, where consumption arrives as a
        per-link load rather than a ``Move`` list)."""
        if count < 0:
            raise ValueError(f"cannot consume {count} pairs")
        if count:
            self.channel_pairs[channel] = (
                self.channel_pairs.get(channel, 0) + count
            )
            self.consumed += count

    @property
    def total_pairs(self) -> int:
        return self.consumed


class InterconnectState:
    """Per-link EPR pools of a multi-core interconnect.

    Each link of the core graph owns one :class:`EPRPool` generating
    pairs at ``epr_rate``; an inter-core epoch that needs more pairs
    than a link has produced stalls until generation catches up —
    the same rate arithmetic the intra-core pool uses, one pool per
    link.

    Attributes:
        pools: ``(a, b)`` normalized link -> its pool.
    """

    def __init__(
        self,
        links: Iterable[Tuple[int, int]],
        epr_rate: float = math.inf,
        prestage: int = 0,
    ) -> None:
        self.pools: Dict[Tuple[int, int], EPRPool] = {
            (min(a, b), max(a, b)): EPRPool(
                rate=epr_rate, prestage=prestage
            )
            for a, b in links
        }

    def _pool(self, link: Tuple[int, int]) -> EPRPool:
        key = (min(link), max(link))
        pool = self.pools.get(key)
        if pool is None:
            raise KeyError(f"no interconnect link {key}")
        return pool

    def stall_for(
        self, loads: Dict[Tuple[int, int], int], clock: int
    ) -> int:
        """Cycles to wait at ``clock`` before every link can serve its
        load (the epoch waits for its slowest link)."""
        return max(
            (
                self._pool(link).stall_for(load, clock)
                for link, load in loads.items()
            ),
            default=0,
        )

    def consume(self, loads: Dict[Tuple[int, int], int]) -> None:
        for link, load in loads.items():
            a, b = min(link), max(link)
            self._pool(link).consume_pairs(
                load, (f"core{a}", f"core{b}")
            )

    @property
    def total_pairs(self) -> int:
        return sum(pool.consumed for pool in self.pools.values())

    def link_pairs_labels(self) -> Dict[str, int]:
        """JSON-safe ``"coreA<->coreB"`` pair-consumption map."""
        return {
            f"core{a}<->core{b}": pool.consumed
            for (a, b), pool in sorted(self.pools.items())
            if pool.consumed
        }


class MachineState:
    """Mutable execution state of one Multi-SIMD(k,d) machine.

    Attributes:
        machine: the configuration being simulated.
        k: region count of the executing schedule.
        clock: current engine cycle.
        locations: qubit -> location (absent = global memory).
        pads: per-region scratchpad occupant sets.
        busy_cycles / ops_executed: per-region activity tallies.
    """

    def __init__(
        self,
        k: int,
        machine: MultiSIMD,
        epr_rate: float = math.inf,
        prestage: int = 0,
    ) -> None:
        self.machine = machine
        self.k = k
        self.clock = 0
        self.locations: Dict[Qubit, tuple] = {}
        self.pads: Dict[int, Set[Qubit]] = {r: set() for r in range(k)}
        self.peak_pad: Dict[int, int] = {r: 0 for r in range(k)}
        self.busy_cycles: List[int] = [0] * k
        self.ops_executed: List[int] = [0] * k
        self.epr = EPRPool(rate=epr_rate, prestage=prestage)

    # -- time ----------------------------------------------------------

    def advance(self, cycles: int) -> None:
        if cycles < 0:
            raise ValueError("cannot advance time backwards")
        self.clock += cycles

    # -- residency -----------------------------------------------------

    def location(self, qubit: Qubit) -> tuple:
        return self.locations.get(qubit, ("global",))

    def apply_move(self, move: Move) -> None:
        """Relocate one qubit, repairing any tracked-state drift."""
        actual = self.location(move.qubit)
        if actual[0] == "local" and actual[1] in self.pads:
            self.pads[actual[1]].discard(move.qubit)
        if move.dst[0] == "local":
            pad = self.pads.setdefault(move.dst[1], set())
            pad.add(move.qubit)
            if len(pad) > self.peak_pad.get(move.dst[1], 0):
                self.peak_pad[move.dst[1]] = len(pad)
        self.locations[move.qubit] = move.dst

    def apply_epoch(self, moves: Iterable[Move]) -> None:
        for move in moves:
            self.apply_move(move)

    # -- execution -----------------------------------------------------

    def execute_region(self, region: int, ops: int, cycles: int) -> None:
        """Record one region-timestep batch of ``ops`` operations."""
        if 0 <= region < self.k:
            self.busy_cycles[region] += cycles
            self.ops_executed[region] += ops

    # -- reporting -----------------------------------------------------

    def utilization(self, runtime: Optional[int] = None) -> Dict[int, float]:
        """Busy fraction per region over ``runtime`` (or the clock)."""
        total = self.clock if runtime is None else runtime
        if total <= 0:
            return {r: 0.0 for r in range(self.k)}
        return {
            r: self.busy_cycles[r] / total for r in range(self.k)
        }

    def channel_pairs_labels(self) -> Dict[str, int]:
        """JSON-safe ``"src->dst"`` pair-consumption map."""
        return {
            f"{src}->{dst}": count
            for (src, dst), count in sorted(
                self.epr.channel_pairs.items()
            )
        }
