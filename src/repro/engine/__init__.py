"""Discrete-event Multi-SIMD execution engine.

Runs movement-annotated schedules (and whole compile results) on a
stateful machine model with configurable EPR generation rate, NUMA
bandwidth limits and seeded fault injection, producing realized
runtimes, stall breakdowns, fault logs and exportable event traces
(``repro.trace/1`` native / Chrome trace-event format).
"""

from .config import EngineConfig
from .executor import (
    EngineError,
    EngineResult,
    PreflightError,
    ProgramExecution,
    StallBreakdown,
    execute_result,
    run_schedule,
    run_schedule_stream,
)
from .faults import FaultConfig, FaultEvent, FaultInjector, FaultLog
from .state import EPRPool, MachineState
from .trace import (
    TRACE_SCHEMA,
    EventTrace,
    TraceEvent,
    build_payload,
    chrome_trace_events,
    validate_trace_payload,
    write_chrome_trace,
)

__all__ = [
    "EngineConfig",
    "EngineError",
    "EngineResult",
    "EPRPool",
    "EventTrace",
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultLog",
    "MachineState",
    "PreflightError",
    "ProgramExecution",
    "StallBreakdown",
    "TRACE_SCHEMA",
    "TraceEvent",
    "build_payload",
    "chrome_trace_events",
    "execute_result",
    "run_schedule",
    "run_schedule_stream",
    "validate_trace_payload",
    "write_chrome_trace",
]
