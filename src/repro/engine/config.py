"""Execution-engine configuration."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..arch.numa import NUMAConfig
from .faults import FaultConfig

__all__ = ["EngineConfig"]


@dataclass(frozen=True)
class EngineConfig:
    """Knobs for one engine run (defaults reproduce the analytic model).

    Attributes:
        epr_rate: steady EPR generation rate in pairs/cycle (``inf`` =
            fully masked pre-distribution, the paper's idealisation).
        numa: distributed-global-memory configuration; ``None`` bills
            every teleport epoch one unserialized round (centralized
            memory, unbounded bandwidth).
        faults: fault-injection configuration; ``None`` disables
            injection entirely.
        seed: base RNG seed for fault injection (scoped per module).
        collect_trace: record per-event traces (disable for large
            sweeps where only the aggregate metrics matter).

    With the defaults — infinite rate, no NUMA limits, no faults — the
    realized runtime equals the analytic schedule runtime exactly; every
    tightened knob can only add stall cycles (tested invariants).
    """

    epr_rate: float = math.inf
    numa: Optional[NUMAConfig] = None
    faults: Optional[FaultConfig] = None
    seed: int = 0
    collect_trace: bool = True

    def __post_init__(self) -> None:
        if self.epr_rate <= 0:
            raise ValueError(
                f"epr_rate must be positive, got {self.epr_rate}"
            )

    @property
    def ideal(self) -> bool:
        """Whether this config reproduces the analytic model exactly."""
        return (
            math.isinf(self.epr_rate)
            and self.numa is None
            and (self.faults is None or not self.faults.enabled)
        )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "epr_rate": (
                "inf" if math.isinf(self.epr_rate) else self.epr_rate
            ),
            "seed": self.seed,
        }
        if self.numa is not None:
            out["numa"] = {
                "banks": self.numa.banks,
                "channel_bandwidth": (
                    "inf"
                    if math.isinf(self.numa.channel_bandwidth)
                    else self.numa.channel_bandwidth
                ),
                "bank_egress": (
                    "inf"
                    if math.isinf(self.numa.bank_egress)
                    else self.numa.bank_egress
                ),
                "placement": self.numa.placement,
            }
        if self.faults is not None:
            out["faults"] = self.faults.to_dict()
        return out
