"""Discrete-event execution of movement-annotated schedules.

The static pipeline *plans*: schedules, movement, EPR pre-distribution,
NUMA billing. This module *runs the plan* on a stateful
Multi-SIMD(k,d) machine model, advancing a cycle clock through every
movement epoch and gate timestep while tracking qubit residency, EPR
pool levels, and region activity.

The load-bearing invariant (tested across the whole benchmark
registry): with faults off, infinite EPR generation rate and unbounded
bandwidth, the realized runtime **equals** the analytic runtime
(``CommStats.runtime`` per leaf; the coarse-composed
``profiles[entry].runtime[k]`` per program) exactly. Each tightened
resource — finite generation rate, NUMA channel bandwidth / bank
egress, injected faults — only ever *adds* stall cycles, and the
stall breakdown attributes every added cycle to its cause:

* ``epr`` — waiting for pair generation to catch up with demand
  (agrees exactly with :func:`repro.arch.plan_epr_distribution`);
* ``bandwidth`` — extra teleport rounds from NUMA serialization
  (agrees exactly with :func:`repro.arch.numa_runtime`);
* ``fault`` — regenerated EPR attempts at finite rate plus transient
  region downtime.

Programs execute hierarchically, mirroring the compile pipeline: each
leaf schedule runs on the engine, realized leaf runtimes are fed back
into the coarse scheduler as blackbox dimensions, and the entry
module's coarse length becomes the program's realized runtime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..arch.machine import (
    GATE_CYCLES,
    MultiSIMD,
    TELEPORT_CYCLES,
    epoch_cycles,
    split_epoch,
)
from ..arch.numa import assign_banks, epoch_teleport_loads, serialize_rounds
from ..core.operation import Operation
from ..instrument import span
from ..sched.coarse import CoarseResult, schedule_coarse
from ..sched.replay import replay_schedule
from ..sched.types import Schedule
from ..toolflow import CompileResult
from .config import EngineConfig
from .faults import FaultConfig, FaultEvent, FaultInjector, FaultLog
from .state import MachineState
from .trace import EventTrace, build_payload

__all__ = [
    "EngineError",
    "PreflightError",
    "StallBreakdown",
    "EngineResult",
    "ProgramExecution",
    "run_schedule",
    "run_schedule_stream",
    "execute_result",
]


class EngineError(Exception):
    """The engine cannot execute the given schedule / compile result."""


class PreflightError(EngineError):
    """Preflight replay found physical-invariant violations.

    Attributes:
        violations: every ``(code, message, timestep)`` collected by
            :func:`repro.sched.replay.replay_schedule`.
    """

    def __init__(
        self, scope: str, violations: List[Tuple[str, str, int]]
    ) -> None:
        self.scope = scope
        self.violations = violations
        codes = sorted({code for code, _, _ in violations})
        super().__init__(
            f"preflight replay of {scope!r} found "
            f"{len(violations)} violation(s) ({', '.join(codes)}); "
            "refusing to execute (pass --no-preflight to override)"
        )


@dataclass
class StallBreakdown:
    """Cycles the machine spent waiting, by cause.

    Attributes:
        epr: waiting for EPR pair generation (demand outran the rate).
        bandwidth: extra teleport rounds forced by NUMA channel /
            bank-egress limits.
        fault: regenerated EPR attempts (at finite rate) and transient
            region downtime.
    """

    epr: int = 0
    bandwidth: int = 0
    fault: int = 0

    @property
    def total(self) -> int:
        return self.epr + self.bandwidth + self.fault

    def merge(self, other: "StallBreakdown") -> None:
        self.epr += other.epr
        self.bandwidth += other.bandwidth
        self.fault += other.fault

    def to_dict(self) -> Dict[str, int]:
        return {
            "epr": self.epr,
            "bandwidth": self.bandwidth,
            "fault": self.fault,
            "total": self.total,
        }


@dataclass
class EngineResult:
    """Outcome of executing one leaf schedule.

    Attributes:
        module: scope label (module name).
        k: region count executed at.
        realized_runtime: engine clock at completion.
        analytic_runtime: the schedule's static cost (gate timesteps +
            unserialized movement epochs) — equals ``realized_runtime``
            under an ideal config.
        gate_cycles / comm_cycles: the analytic split.
        stalls: added cycles by cause (``realized = analytic +
            stalls.total``).
        teleport_epochs / local_epochs / teleport_rounds: epoch tallies.
        epr_pairs: total pairs consumed.
        channel_pairs: pairs per ``"src->dst"`` channel.
        utilization: per-region busy fraction of the realized runtime.
        ops_executed: gates run, summed over regions.
        trace: the event trace (``None`` when collection is off).
        fault_log: every injected fault.
        preflight_violations: violations tolerated by preflight
            (``None`` when preflight was skipped).
    """

    module: str
    k: int
    realized_runtime: int
    analytic_runtime: int
    gate_cycles: int
    comm_cycles: int
    stalls: StallBreakdown
    teleport_epochs: int
    local_epochs: int
    teleport_rounds: int
    epr_pairs: int
    channel_pairs: Dict[str, int]
    utilization: Dict[int, float]
    ops_executed: int
    trace: Optional[EventTrace] = None
    fault_log: FaultLog = field(default_factory=FaultLog)
    preflight_violations: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "module": self.module,
            "k": self.k,
            "realized_runtime": self.realized_runtime,
            "analytic_runtime": self.analytic_runtime,
            "gate_cycles": self.gate_cycles,
            "comm_cycles": self.comm_cycles,
            "stalls": self.stalls.to_dict(),
            "teleport_epochs": self.teleport_epochs,
            "local_epochs": self.local_epochs,
            "teleport_rounds": self.teleport_rounds,
            "epr_pairs": self.epr_pairs,
            "channel_pairs": self.channel_pairs,
            "utilization": {
                str(r): round(u, 6)
                for r, u in sorted(self.utilization.items())
            },
            "ops_executed": self.ops_executed,
            "faults": self.fault_log.to_dict(),
            "preflight_violations": self.preflight_violations,
        }


def _preflight(
    sched: Schedule, machine: MultiSIMD, scope: str
) -> int:
    """Replay ``sched`` collecting violations; raise on any."""
    violations: List[Tuple[str, str, int]] = []
    with span("engine:preflight"):
        replay_schedule(
            sched,
            machine,
            on_violation=lambda code, msg, t: violations.append(
                (code, msg, t)
            ),
        )
    if violations:
        raise PreflightError(scope, violations)
    return 0


def run_schedule(
    sched: Schedule,
    machine: MultiSIMD,
    config: Optional[EngineConfig] = None,
    scope: str = "",
    preflight: bool = True,
) -> EngineResult:
    """Execute one movement-annotated leaf schedule.

    Args:
        sched: the schedule (moves attached via ``derive_movement``).
        machine: target machine; must offer at least ``sched.k``
            regions.
        config: engine knobs (default: the ideal analytic model).
        scope: label for traces / fault streams (module name).
        preflight: replay-validate first and refuse on violations.

    Raises:
        PreflightError: preflight found QL3xx violations.
        EngineError: the machine is too small for the schedule.
    """
    config = config or EngineConfig()
    scope = scope or (sched.algorithm or "schedule")
    if machine.k < sched.k:
        raise EngineError(
            f"schedule needs {sched.k} regions, machine has {machine.k}"
        )
    violations: Optional[int] = None
    if preflight:
        violations = _preflight(sched, machine, scope)

    fault_config = config.faults or FaultConfig()
    injector = FaultInjector(fault_config, seed=config.seed, scope=scope)
    log = FaultLog(seed=config.seed, scope=scope)
    prestage = sum(
        1 for m in sched.timesteps[0].moves if m.kind == "teleport"
    ) if sched.timesteps else 0
    state = MachineState(
        sched.k, machine, epr_rate=config.epr_rate, prestage=prestage
    )
    trace = EventTrace(scope) if config.collect_trace else None
    bank_of = (
        assign_banks(sched, config.numa)
        if config.numa is not None
        else None
    )

    stalls = StallBreakdown()
    gate_cycles = 0
    comm_cycles = 0
    teleport_epochs = 0
    local_epochs = 0
    teleport_rounds = 0

    with span("engine:execute"):
        for t, ts in enumerate(sched.timesteps):
            # --- movement epoch preceding the timestep ------------------
            teleports, locals_ = split_epoch(ts.moves)
            nt, nl = len(teleports), len(locals_)
            base_cost = epoch_cycles(nt, nl)
            comm_cycles += base_cost
            if nt:
                teleport_epochs += 1
                # Fault injection: failed generation attempts are
                # regenerated; they waste generator throughput.
                attempts = injector.epr_generation_attempts(nt)
                extra = attempts - nt
                if extra:
                    log.record(
                        FaultEvent(
                            "epr_regen",
                            cycle=state.clock,
                            timestep=t,
                            count=extra,
                            detail=f"{extra} failed generation "
                            f"attempt(s) for {nt} pair(s)",
                        )
                    )
                    if trace is not None:
                        trace.emit(
                            "epr-regen", "fault", state.clock, 0,
                            "memory", attempts=extra,
                        )
                # Stall until production covers demand; the part due to
                # regenerated attempts is attributed to faults.
                demand_wait = state.epr.stall_for(nt, state.clock)
                total_wait = state.epr.stall_for(attempts, state.clock)
                fault_wait = total_wait - demand_wait
                if demand_wait and trace is not None:
                    trace.emit(
                        "epr-stall", "stall", state.clock,
                        demand_wait, "memory", pairs=nt,
                    )
                if fault_wait and trace is not None:
                    trace.emit(
                        "fault-stall", "stall",
                        state.clock + demand_wait, fault_wait,
                        "memory", regenerations=extra,
                    )
                stalls.epr += demand_wait
                stalls.fault += fault_wait
                state.advance(total_wait)
                # NUMA serialization: oversubscribed channels / bank
                # egress split the epoch into extra teleport rounds.
                rounds = 1
                if config.numa is not None:
                    channel_load, bank_load = epoch_teleport_loads(
                        teleports, bank_of, config.numa, sched.k
                    )
                    rounds = serialize_rounds(
                        channel_load, bank_load, config.numa
                    )
                teleport_rounds += rounds
                epoch_cost = epoch_cycles(nt, nl, rounds)
                bandwidth_wait = epoch_cost - base_cost
                if trace is not None:
                    trace.emit(
                        "teleport-epoch", "move", state.clock,
                        base_cost, "memory",
                        pairs=nt, local_moves=nl, rounds=rounds,
                    )
                    if bandwidth_wait:
                        trace.emit(
                            "bandwidth-stall", "stall",
                            state.clock + base_cost, bandwidth_wait,
                            "memory", rounds=rounds,
                        )
                stalls.bandwidth += bandwidth_wait
                state.epr.consume(teleports, wasted_attempts=extra)
                state.apply_epoch(ts.moves)
                state.advance(epoch_cost)
            elif nl:
                local_epochs += 1
                if trace is not None:
                    trace.emit(
                        "local-epoch", "move", state.clock,
                        base_cost, "memory", local_moves=nl,
                    )
                state.apply_epoch(ts.moves)
                state.advance(base_cost)
            # --- transient region downtime ------------------------------
            active = [
                (r, nodes)
                for r, nodes in enumerate(ts.regions)
                if nodes
            ]
            if fault_config.region_failure_prob > 0:
                for r, _ in active:
                    if injector.region_goes_down(r):
                        down = fault_config.region_downtime
                        log.record(
                            FaultEvent(
                                "region_down",
                                cycle=state.clock,
                                timestep=t,
                                region=r,
                                detail=f"region {r} down for "
                                f"{down} cycles",
                            )
                        )
                        log.region_downtime_cycles += down
                        if trace is not None:
                            trace.emit(
                                "region-down", "fault", state.clock,
                                0, f"region{r}",
                            )
                            trace.emit(
                                "fault-stall", "stall", state.clock,
                                down, f"region{r}",
                            )
                        # Lock-step SIMD: a down region stalls the
                        # whole machine, not just its own lane.
                        stalls.fault += down
                        state.advance(down)
            # --- execute the timestep -----------------------------------
            for r, nodes in active:
                ops = len(nodes)
                gate = sched.operation(nodes[0]).gate
                errors = injector.sample_gate_errors(ops)
                log.expected_gate_errors += (
                    fault_config.gate_error_rate * ops
                )
                if errors:
                    log.record(
                        FaultEvent(
                            "gate_error",
                            cycle=state.clock,
                            timestep=t,
                            count=errors,
                            region=r,
                            detail=f"{errors}/{ops} {gate} gate(s) "
                            "errored (corrected)",
                        )
                    )
                state.execute_region(r, ops, GATE_CYCLES)
                if trace is not None:
                    args: Dict[str, Any] = {"ops": ops}
                    if errors:
                        args["errors"] = errors
                    trace.emit(
                        gate, "gate", state.clock, GATE_CYCLES,
                        f"region{r}", **args,
                    )
            gate_cycles += GATE_CYCLES
            state.advance(GATE_CYCLES)

    realized = state.clock
    return EngineResult(
        module=scope,
        k=sched.k,
        realized_runtime=realized,
        analytic_runtime=gate_cycles + comm_cycles,
        gate_cycles=gate_cycles,
        comm_cycles=comm_cycles,
        stalls=stalls,
        teleport_epochs=teleport_epochs,
        local_epochs=local_epochs,
        teleport_rounds=teleport_rounds,
        epr_pairs=state.epr.total_pairs,
        channel_pairs=state.channel_pairs_labels(),
        utilization=state.utilization(realized),
        ops_executed=sum(state.ops_executed),
        trace=trace,
        fault_log=log,
        preflight_violations=violations,
    )


def run_schedule_stream(
    epochs,
    k: int,
    machine: MultiSIMD,
    config: Optional[EngineConfig] = None,
    scope: str = "stream",
    sample_every: int = 1,
) -> EngineResult:
    """Execute a schedule delivered epoch-at-a-time.

    The streamed counterpart of :func:`run_schedule` for paper-scale
    schedules that never exist as one :class:`Schedule` object:
    ``epochs`` is an iterable of ``(moves, active)`` pairs — one per
    timestep, movement epoch first — where ``active`` lists
    ``(region, gate_name, op_count)`` per busy region. Both
    :func:`repro.service.stream_io.read_schedule_stream` epochs and
    :func:`repro.sched.stream.iter_schedule_epochs` output adapt to
    this shape in a line each; memory stays one epoch regardless of
    schedule length.

    Differences from :func:`run_schedule`, both inherent to not
    holding the full schedule:

    * no preflight (replay validation needs every timestep at once) —
      ``preflight_violations`` is ``None``;
    * no NUMA serialization (:func:`~repro.arch.numa.assign_banks`
      derives bank homes from whole-schedule affinity) — a config with
      ``numa`` set is refused.

    ``sample_every`` thins the *trace* only (gate/move events for one
    timestep in every ``sample_every``; stall and fault events are
    always kept — they are rare and carry the invariant): a 10^7-epoch
    run cannot emit 10^7 trace events, and the realized clock, stall
    breakdown and ``realized = analytic + stalls`` invariant are
    measured identically whatever the sampling.
    """
    config = config or EngineConfig()
    if machine.k < k:
        raise EngineError(
            f"schedule needs {k} regions, machine has {machine.k}"
        )
    if config.numa is not None:
        raise EngineError(
            "streamed execution cannot apply NUMA serialization "
            "(bank assignment needs the full schedule); use "
            "run_schedule on an inflated schedule instead"
        )
    if sample_every < 1:
        raise ValueError(f"sample_every must be >= 1, got {sample_every}")

    fault_config = config.faults or FaultConfig()
    injector = FaultInjector(fault_config, seed=config.seed, scope=scope)
    log = FaultLog(seed=config.seed, scope=scope)
    it = iter(epochs)
    try:
        first = next(it)
    except StopIteration:
        first = None
    prestage = (
        sum(1 for m in first[0] if m.kind == "teleport") if first else 0
    )
    state = MachineState(
        k, machine, epr_rate=config.epr_rate, prestage=prestage
    )
    trace = EventTrace(scope) if config.collect_trace else None

    stalls = StallBreakdown()
    gate_cycles = 0
    comm_cycles = 0
    teleport_epochs = 0
    local_epochs = 0
    teleport_rounds = 0

    def replay():
        if first is not None:
            yield first
        yield from it

    with span("engine:execute-stream"):
        for t, (moves, active) in enumerate(replay()):
            sampled = trace is not None and t % sample_every == 0
            teleports, locals_ = split_epoch(moves)
            nt, nl = len(teleports), len(locals_)
            base_cost = epoch_cycles(nt, nl)
            comm_cycles += base_cost
            if nt:
                teleport_epochs += 1
                teleport_rounds += 1
                attempts = injector.epr_generation_attempts(nt)
                extra = attempts - nt
                if extra:
                    log.record(
                        FaultEvent(
                            "epr_regen",
                            cycle=state.clock,
                            timestep=t,
                            count=extra,
                            detail=f"{extra} failed generation "
                            f"attempt(s) for {nt} pair(s)",
                        )
                    )
                    if trace is not None:
                        trace.emit(
                            "epr-regen", "fault", state.clock, 0,
                            "memory", attempts=extra,
                        )
                demand_wait = state.epr.stall_for(nt, state.clock)
                total_wait = state.epr.stall_for(attempts, state.clock)
                fault_wait = total_wait - demand_wait
                if demand_wait and trace is not None:
                    trace.emit(
                        "epr-stall", "stall", state.clock,
                        demand_wait, "memory", pairs=nt,
                    )
                if fault_wait and trace is not None:
                    trace.emit(
                        "fault-stall", "stall",
                        state.clock + demand_wait, fault_wait,
                        "memory", regenerations=extra,
                    )
                stalls.epr += demand_wait
                stalls.fault += fault_wait
                state.advance(total_wait)
                if sampled:
                    trace.emit(
                        "teleport-epoch", "move", state.clock,
                        base_cost, "memory",
                        pairs=nt, local_moves=nl, rounds=1,
                    )
                state.epr.consume(teleports, wasted_attempts=extra)
                state.apply_epoch(moves)
                state.advance(base_cost)
            elif nl:
                local_epochs += 1
                if sampled:
                    trace.emit(
                        "local-epoch", "move", state.clock,
                        base_cost, "memory", local_moves=nl,
                    )
                state.apply_epoch(moves)
                state.advance(base_cost)
            if fault_config.region_failure_prob > 0:
                for r, _, _ in active:
                    if injector.region_goes_down(r):
                        down = fault_config.region_downtime
                        log.record(
                            FaultEvent(
                                "region_down",
                                cycle=state.clock,
                                timestep=t,
                                region=r,
                                detail=f"region {r} down for "
                                f"{down} cycles",
                            )
                        )
                        log.region_downtime_cycles += down
                        if trace is not None:
                            trace.emit(
                                "region-down", "fault", state.clock,
                                0, f"region{r}",
                            )
                            trace.emit(
                                "fault-stall", "stall", state.clock,
                                down, f"region{r}",
                            )
                        stalls.fault += down
                        state.advance(down)
            for r, gate, ops in active:
                errors = injector.sample_gate_errors(ops)
                log.expected_gate_errors += (
                    fault_config.gate_error_rate * ops
                )
                if errors:
                    log.record(
                        FaultEvent(
                            "gate_error",
                            cycle=state.clock,
                            timestep=t,
                            count=errors,
                            region=r,
                            detail=f"{errors}/{ops} {gate} gate(s) "
                            "errored (corrected)",
                        )
                    )
                state.execute_region(r, ops, GATE_CYCLES)
                if sampled:
                    args: Dict[str, Any] = {"ops": ops}
                    if errors:
                        args["errors"] = errors
                    trace.emit(
                        gate, "gate", state.clock, GATE_CYCLES,
                        f"region{r}", **args,
                    )
            gate_cycles += GATE_CYCLES
            state.advance(GATE_CYCLES)

    realized = state.clock
    return EngineResult(
        module=scope,
        k=k,
        realized_runtime=realized,
        analytic_runtime=gate_cycles + comm_cycles,
        gate_cycles=gate_cycles,
        comm_cycles=comm_cycles,
        stalls=stalls,
        teleport_epochs=teleport_epochs,
        local_epochs=local_epochs,
        teleport_rounds=teleport_rounds,
        epr_pairs=state.epr.total_pairs,
        channel_pairs=state.channel_pairs_labels(),
        utilization=state.utilization(realized),
        ops_executed=sum(state.ops_executed),
        trace=trace,
        fault_log=log,
        preflight_violations=None,
    )


@dataclass
class ProgramExecution:
    """Hierarchical execution of a whole compile result.

    Attributes:
        entry: entry module name.
        k: machine width executed at.
        realized_runtime: entry module's realized cycles (>= 1, the
            same clamp the compile-time profiles apply).
        analytic_runtime: ``profiles[entry].runtime[k]`` — the static
            prediction the realized runtime is compared against.
        leaves: per-leaf-module engine results.
        coarse: per-non-leaf-module coarse replays over realized
            blackbox dimensions.
        coarse_traces: blackbox placement traces per non-leaf module.
        realized: realized cost per module (leaf and non-leaf).
        stalls: merged stall breakdown over all leaf runs.
        fault_log: merged fault log over all leaf runs.
        peak_width: regions simultaneously occupied by the entry's
            coarse replay (leaf entry: the schedule width).
    """

    entry: str
    k: int
    realized_runtime: int
    analytic_runtime: int
    leaves: Dict[str, EngineResult]
    coarse: Dict[str, CoarseResult]
    coarse_traces: Dict[str, EventTrace]
    realized: Dict[str, int]
    stalls: StallBreakdown
    fault_log: FaultLog
    peak_width: int
    config: EngineConfig
    machine: MultiSIMD

    @property
    def ideal_match(self) -> bool:
        """Whether realized == analytic (expected under ideal config)."""
        return self.realized_runtime == self.analytic_runtime

    @property
    def teleport_rounds(self) -> int:
        return sum(r.teleport_rounds for r in self.leaves.values())

    @property
    def utilization(self) -> float:
        """Aggregate busy fraction over every leaf run's region-cycles."""
        busy = sum(
            sum(r.utilization.values()) * r.realized_runtime
            for r in self.leaves.values()
        )
        capacity = sum(
            r.k * r.realized_runtime for r in self.leaves.values()
        )
        return busy / capacity if capacity else 0.0

    def to_trace_payload(self) -> Dict[str, Any]:
        """The merged ``repro.trace/1`` document for this execution."""
        sections: List[Tuple[str, EventTrace]] = []
        for name in sorted(self.leaves):
            result = self.leaves[name]
            if result.trace is not None:
                sections.append((name, result.trace))
        for name in sorted(self.coarse_traces):
            sections.append((name, self.coarse_traces[name]))
        runtime = max(
            [self.realized_runtime]
            + [r.realized_runtime for r in self.leaves.values()]
            + [c.total_length for c in self.coarse.values()]
        )
        return build_payload(
            sections,
            runtime=runtime,
            machine={
                "k": self.machine.k,
                "d": self.machine.d,
                "local_memory": self.machine.local_memory,
            },
            stats={
                "entry": self.entry,
                "realized_runtime": self.realized_runtime,
                "analytic_runtime": self.analytic_runtime,
                "modules": len(self.leaves) + len(self.coarse),
                "engine_config": self.config.to_dict(),
                "faults": self.fault_log.total_events,
            },
        )

    def metrics(self) -> Dict[str, Any]:
        """Flat engine columns for sweep rows / CLI JSON output."""
        return {
            "engine_runtime": self.realized_runtime,
            "engine_analytic_runtime": self.analytic_runtime,
            "engine_stall_cycles": self.stalls.total,
            "engine_stall_epr": self.stalls.epr,
            "engine_stall_bandwidth": self.stalls.bandwidth,
            "engine_stall_fault": self.stalls.fault,
            "engine_utilization": round(self.utilization, 6),
            "engine_teleport_rounds": self.teleport_rounds,
            "engine_faults": self.fault_log.total_events,
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "entry": self.entry,
            "k": self.k,
            "realized_runtime": self.realized_runtime,
            "analytic_runtime": self.analytic_runtime,
            "ideal_match": self.ideal_match,
            "stalls": self.stalls.to_dict(),
            "peak_width": self.peak_width,
            "utilization": round(self.utilization, 6),
            "teleport_rounds": self.teleport_rounds,
            "engine_config": self.config.to_dict(),
            "modules": {
                name: self.leaves[name].to_dict()
                if name in self.leaves
                else {
                    "module": name,
                    "realized_runtime": self.realized[name],
                    "coarse": True,
                }
                for name in sorted(self.realized)
            },
            "faults": self.fault_log.to_dict(),
        }


def _coarse_trace(module, result: CoarseResult) -> EventTrace:
    """Blackbox placement events for one coarse replay (greedy lane
    assignment, purely for rendering)."""
    trace = EventTrace(result.module)
    lanes: List[int] = []
    for p in sorted(
        result.placements, key=lambda p: (p.start, p.finish, p.node)
    ):
        stmt = module.body[p.node]
        label = (
            stmt.gate
            if isinstance(stmt, Operation)
            else f"call {stmt.callee}"
        )
        lane = next(
            (i for i, busy in enumerate(lanes) if busy <= p.start),
            None,
        )
        if lane is None:
            lane = len(lanes)
            lanes.append(0)
        lanes[lane] = p.finish
        trace.emit(
            label,
            "blackbox",
            p.start,
            p.finish - p.start,
            f"lane{lane}",
            width=p.width,
            node=p.node,
        )
    return trace


def execute_result(
    result: CompileResult,
    config: Optional[EngineConfig] = None,
    preflight: bool = True,
) -> ProgramExecution:
    """Execute a whole compile result, hierarchically.

    Every retained leaf schedule runs on the engine; realized leaf
    runtimes replace the analytic width-``k`` blackbox dimensions, and
    non-leaf modules are re-coarse-scheduled bottom-up over the
    realized dimensions — so stalls in a hot leaf propagate into the
    program-level realized runtime exactly the way the compile-time
    composition would have propagated its analytic cost.

    Raises:
        EngineError: the result carries no schedules (e.g. loaded from
            the compile cache, which strips them) — recompile with
            ``keep_schedules=True`` / ``use_cache=False``.
        PreflightError: preflight replay found violations.
    """
    config = config or EngineConfig()
    program = result.program
    if not result.schedules:
        raise EngineError(
            "compile result has no retained schedules (cache-loaded "
            "results strip them); recompile with keep_schedules=True"
        )
    k = result.machine.k
    leaves: Dict[str, EngineResult] = {}
    coarse: Dict[str, CoarseResult] = {}
    coarse_traces: Dict[str, EventTrace] = {}
    realized: Dict[str, int] = {}
    realized_dims: Dict[str, Dict[int, int]] = {}
    stalls = StallBreakdown()
    fault_log = FaultLog(seed=config.seed, scope=program.entry)

    for name in program.topological_order():
        mod = program.module(name)
        profile = result.profiles[name]
        if mod.is_leaf:
            sched = result.schedules.get(name)
            if sched is None:
                raise EngineError(
                    f"no retained schedule for leaf module {name!r}"
                )
            run = run_schedule(
                sched,
                result.machine,
                config=config,
                scope=name,
                preflight=preflight,
            )
            leaves[name] = run
            stalls.merge(run.stalls)
            fault_log.merge(run.fault_log)
            realized[name] = max(run.realized_runtime, 1)
        else:
            callees = sorted(mod.callees())
            dims = {c: realized_dims[c] for c in callees}
            with span("engine:coarse"):
                replay = schedule_coarse(
                    mod,
                    dims,
                    k=k,
                    gate_cost=GATE_CYCLES + TELEPORT_CYCLES,
                    call_overhead=TELEPORT_CYCLES,
                )
            coarse[name] = replay
            if config.collect_trace:
                coarse_traces[name] = _coarse_trace(mod, replay)
            realized[name] = max(replay.total_length, 1)
        # Downstream coarse schedules see the analytic dims with the
        # full-width entry replaced by the realized cost — the same
        # clamp the compile-time profiles apply.
        dims_table = dict(profile.runtime)
        dims_table[k] = realized[name]
        realized_dims[name] = dims_table

    entry = program.entry
    if entry in coarse:
        peak = coarse[entry].total_width
    else:
        peak = leaves[entry].k
    return ProgramExecution(
        entry=entry,
        k=k,
        realized_runtime=realized[entry],
        analytic_runtime=result.profiles[entry].runtime[k],
        leaves=leaves,
        coarse=coarse,
        coarse_traces=coarse_traces,
        realized=realized,
        stalls=stalls,
        fault_log=fault_log,
        peak_width=peak,
        config=config,
        machine=result.machine,
    )
