"""Seeded, deterministic fault injection for the execution engine.

Three fault classes, each mapped to a physical mechanism the paper's
analytic model idealises away:

* **EPR generation failure** — pair generation at the global memory is
  probabilistic in practice; a failed attempt is regenerated and
  retried (Section 2.3's pre-distribution assumes this is masked).
  Failed attempts waste generator throughput, so at a finite
  generation rate they surface as extra stall cycles; at an infinite
  rate regeneration is free but still logged.
* **Transient region downtime** — an operating region drops out for a
  fixed number of cycles (e.g. a recalibration). The machine is
  lock-step SIMD, so a down region stalls the whole timestep.
* **Per-gate logical errors** — every executed gate carries the
  logical error rate of the provisioned QECC level
  (:mod:`repro.arch.qecc`); the engine counts expected and sampled
  errors rather than corrupting state (errors are assumed corrected,
  at the cost already folded into the cycle time).

Determinism contract (tested): the injector derives its RNG stream
from ``(seed, scope)`` only — same seed, same schedule, same config
always produce an identical :class:`FaultLog`, trace, and realized
runtime, independent of ``PYTHONHASHSEED`` or process.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..arch.qecc import ConcatenatedCode

__all__ = [
    "FaultConfig",
    "FaultEvent",
    "FaultLog",
    "FaultInjector",
]


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection knobs (all off by default).

    Attributes:
        epr_failure_prob: probability one EPR generation attempt fails
            (failed attempts regenerate and retry).
        region_failure_prob: probability an *active* region goes down
            in a given timestep.
        region_downtime: cycles a down region stays down (the whole
            lock-step machine stalls for them).
        gate_error_rate: per-executed-gate logical error probability;
            use :meth:`from_qecc` to derive it from a concatenated-code
            provisioning.
    """

    epr_failure_prob: float = 0.0
    region_failure_prob: float = 0.0
    region_downtime: int = 8
    gate_error_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "epr_failure_prob",
            "region_failure_prob",
            "gate_error_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value}")
        if self.region_downtime < 1:
            raise ValueError(
                f"region_downtime must be >= 1, got {self.region_downtime}"
            )

    @property
    def enabled(self) -> bool:
        return (
            self.epr_failure_prob > 0
            or self.region_failure_prob > 0
            or self.gate_error_rate > 0
        )

    @classmethod
    def from_qecc(
        cls,
        level: int,
        physical_error: float = 1e-4,
        code: Optional[ConcatenatedCode] = None,
        **kwargs: Any,
    ) -> "FaultConfig":
        """A config whose gate error rate is the logical error of a
        concatenated code at ``level`` (Section 2.2's model)."""
        code = code or ConcatenatedCode()
        return cls(
            gate_error_rate=code.logical_error(level, physical_error),
            **kwargs,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "epr_failure_prob": self.epr_failure_prob,
            "region_failure_prob": self.region_failure_prob,
            "region_downtime": self.region_downtime,
            "gate_error_rate": self.gate_error_rate,
        }


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault occurrence.

    Attributes:
        kind: ``"epr_regen"``, ``"region_down"`` or ``"gate_error"``.
        cycle: engine clock when the fault struck.
        timestep: schedule timestep being processed.
        count: multiplicity (e.g. failed generation attempts in one
            epoch, errored gates in one region-timestep).
        region: affected region, where applicable.
        detail: human-readable description.
    """

    kind: str
    cycle: int
    timestep: int
    count: int = 1
    region: Optional[int] = None
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind,
            "cycle": self.cycle,
            "timestep": self.timestep,
            "count": self.count,
        }
        if self.region is not None:
            out["region"] = self.region
        if self.detail:
            out["detail"] = self.detail
        return out


@dataclass
class FaultLog:
    """Structured record of every fault injected during one run.

    Attributes:
        seed: the run's base seed.
        scope: the injector scope (module name for program runs).
        events: every fault occurrence, in injection order.
        epr_regenerations: failed generation attempts that were retried.
        region_down_events / region_downtime_cycles: downtime tallies.
        gate_errors: sampled per-gate logical errors.
        expected_gate_errors: sum of per-gate error probabilities (the
            analytic expectation the sample can be checked against).
    """

    seed: int = 0
    scope: str = ""
    events: List[FaultEvent] = field(default_factory=list)
    epr_regenerations: int = 0
    region_down_events: int = 0
    region_downtime_cycles: int = 0
    gate_errors: int = 0
    expected_gate_errors: float = 0.0

    def record(self, event: FaultEvent) -> None:
        self.events.append(event)
        if event.kind == "epr_regen":
            self.epr_regenerations += event.count
        elif event.kind == "region_down":
            self.region_down_events += 1
        elif event.kind == "gate_error":
            self.gate_errors += event.count

    @property
    def total_events(self) -> int:
        return len(self.events)

    def merge(self, other: "FaultLog") -> None:
        """Fold another log (e.g. a callee module's) into this one."""
        self.events.extend(other.events)
        self.epr_regenerations += other.epr_regenerations
        self.region_down_events += other.region_down_events
        self.region_downtime_cycles += other.region_downtime_cycles
        self.gate_errors += other.gate_errors
        self.expected_gate_errors += other.expected_gate_errors

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "scope": self.scope,
            "epr_regenerations": self.epr_regenerations,
            "region_down_events": self.region_down_events,
            "region_downtime_cycles": self.region_downtime_cycles,
            "gate_errors": self.gate_errors,
            "expected_gate_errors": self.expected_gate_errors,
            "events": [e.to_dict() for e in self.events],
        }


class FaultInjector:
    """Draws fault outcomes from a seeded, scope-isolated RNG stream.

    Seeding uses ``random.Random(f"{seed}:{scope}")`` — CPython seeds
    string arguments through SHA-512, so streams are stable across
    processes and hash-seed randomisation, and two modules executed
    under the same base seed get independent, order-insensitive
    streams.
    """

    def __init__(
        self, config: FaultConfig, seed: int = 0, scope: str = ""
    ) -> None:
        self.config = config
        self.seed = seed
        self.scope = scope
        self._rng = random.Random(f"{seed}:{scope}")

    def epr_generation_attempts(self, pairs: int) -> int:
        """Total generation attempts needed to produce ``pairs`` good
        pairs (geometric retries per pair); >= ``pairs``."""
        p = self.config.epr_failure_prob
        if p <= 0 or pairs <= 0:
            return pairs
        attempts = 0
        for _ in range(pairs):
            attempts += 1
            while self._rng.random() < p:
                attempts += 1
        return attempts

    def region_goes_down(self, region: int) -> bool:
        """Whether ``region`` suffers transient downtime this
        timestep."""
        p = self.config.region_failure_prob
        return p > 0 and self._rng.random() < p

    def sample_gate_errors(self, ops: int) -> int:
        """Errored gates among ``ops`` executed this region-timestep."""
        p = self.config.gate_error_rate
        if p <= 0 or ops <= 0:
            return 0
        return sum(1 for _ in range(ops) if self._rng.random() < p)
