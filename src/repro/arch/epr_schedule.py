"""Static EPR-pair pre-distribution planning (Section 2.3).

Teleportation consumes one pre-distributed EPR pair per move; pairs are
generated at the global memory and shipped to the endpoints *ahead* of
their consumption ("Our compiler schedules the pre-distribution of EPR
pairs statically"). Latency is masked as long as supply keeps up;
otherwise the computation stalls waiting for pairs. Longer distances do
not add latency, but they do add *bandwidth* pressure (more pairs in
flight per channel).

Given a movement-annotated schedule, this module derives:

* the per-epoch and per-channel pair demand timeline;
* the minimum steady generation rate that masks all distribution
  (no stalls);
* the stall cycles incurred at any lower rate, and the resulting
  effective runtime;
* the pair buffer each endpoint must provide when generation runs
  eagerly from cycle zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..sched.types import Schedule
from .machine import GATE_CYCLES, epoch_cycles, split_epoch

__all__ = ["EPRDemand", "EPRPlan", "epr_demand_timeline", "plan_epr_distribution"]


@dataclass(frozen=True)
class EPRDemand:
    """Pair demand of one movement epoch.

    Attributes:
        cycle: the cycle at which the epoch begins (pairs must be on
            site by then).
        pairs: total pairs consumed in this epoch.
        channels: per-(src,dst) channel consumption.
    """

    cycle: int
    pairs: int
    channels: Dict[Tuple[str, str], int]


@dataclass
class EPRPlan:
    """A static pre-distribution plan.

    Attributes:
        demands: the epoch demand timeline.
        total_pairs: pairs consumed over the whole schedule.
        base_runtime: schedule runtime with fully masked distribution.
        rate: the generation rate the plan was computed for
            (pairs/cycle).
        stall_cycles: added cycles spent waiting for pair generation.
        runtime: base_runtime + stall_cycles.
        prestage_pairs: pairs that must exist before cycle 0 (initial
            operand fetches) regardless of rate.
        min_masking_rate: smallest steady rate with zero stalls, given
            the prestaged pairs.
        peak_buffer: largest number of generated-but-unconsumed pairs
            outstanding under eager generation at ``rate`` (the storage
            the endpoints must provide).
        peak_channel_rate: busiest single-epoch channel demand.
    """

    demands: List[EPRDemand]
    total_pairs: int
    base_runtime: int
    rate: float
    stall_cycles: int
    prestage_pairs: int
    min_masking_rate: float
    peak_buffer: int
    peak_channel_rate: int

    @property
    def runtime(self) -> int:
        return self.base_runtime + self.stall_cycles


def _loc_label(loc: tuple) -> str:
    return "global" if loc[0] == "global" else f"{loc[0]}{loc[1]}"


def epr_demand_timeline(sched: Schedule) -> Tuple[List[EPRDemand], int]:
    """Walk a movement-annotated schedule and return (demands,
    base_runtime), where each demand is pinned to the cycle its epoch
    starts at."""
    demands: List[EPRDemand] = []
    cycle = 0
    for ts in sched.timesteps:
        teleports, locals_ = split_epoch(ts.moves)
        if teleports:
            channels: Dict[Tuple[str, str], int] = {}
            for m in teleports:
                key = (_loc_label(m.src), _loc_label(m.dst))
                channels[key] = channels.get(key, 0) + 1
            demands.append(
                EPRDemand(cycle=cycle, pairs=len(teleports),
                          channels=channels)
            )
        cycle += epoch_cycles(len(teleports), len(locals_))
        cycle += GATE_CYCLES
    return demands, cycle


def plan_epr_distribution(
    sched: Schedule, rate: float = math.inf
) -> EPRPlan:
    """Plan pre-distribution for ``sched`` at a steady generation
    ``rate`` (pairs per cycle).

    Generation is eager: the source starts producing at cycle 0 and
    never idles while pairs remain to produce. An epoch whose demand
    outruns cumulative production stalls the machine until the missing
    pairs exist; stalls themselves give the generator time to catch up.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    demands, base_runtime = epr_demand_timeline(sched)
    total_pairs = sum(d.pairs for d in demands)
    peak_channel = max(
        (max(d.channels.values()) for d in demands), default=0
    )

    # Initial operand fetches consume pairs at cycle 0; those must be
    # pre-staged regardless of rate.
    prestage = demands[0].pairs if demands and demands[0].cycle == 0 else 0

    # Minimum masking rate: with the prestage granted, demand through
    # epoch i (beyond the prestage) must be producible in c_i cycles.
    min_rate = 0.0
    cumulative = 0
    for d in demands:
        cumulative += d.pairs
        if d.cycle > 0:
            need = cumulative - prestage
            if need > 0:
                min_rate = max(min_rate, need / d.cycle)

    # Stall computation at the requested rate: production (prestage +
    # rate * elapsed) must cover cumulative demand at every epoch;
    # shortfalls stall the machine, which also buys production time.
    stalls = 0
    cumulative = 0
    peak_buffer = prestage
    for d in demands:
        cumulative += d.pairs
        elapsed = d.cycle + stalls
        if math.isinf(rate):
            # Just-in-time production: never stalls, never buffers more
            # than the prestage.
            continue
        produced = prestage + rate * elapsed
        if produced < cumulative:
            stalls += math.ceil((cumulative - produced) / rate)
        produced = min(prestage + rate * (d.cycle + stalls), total_pairs)
        peak_buffer = max(peak_buffer, int(produced) - (cumulative - d.pairs))
    return EPRPlan(
        demands=demands,
        total_pairs=total_pairs,
        base_runtime=base_runtime,
        rate=rate,
        stall_cycles=stalls,
        prestage_pairs=prestage,
        min_masking_rate=min_rate,
        peak_buffer=peak_buffer,
        peak_channel_rate=peak_channel,
    )
