"""Concatenated-code QECC overhead model.

The paper's motivation and conclusion lean on quantum error
correction's cost structure: logical gates "are assumed to incorporate
QECC sub-operations" under "some form of concatenated code"
(Section 2.2), and "since quantum error correction can have overhead
exponential in program execution time, these speedups can be even more
significant than they appear, because they offer important leverage in
allowing complex QC programs to complete with manageable levels of
QECC" (Section 7).

This module quantifies that leverage with the standard concatenated-
code model (Steane [[7,1,3]] by default):

* at concatenation level ``L`` the logical error rate per gate is
  ``p_th * (p / p_th) ** (2 ** L)`` — doubly exponential suppression;
* qubit overhead grows as ``7 ** L`` and time overhead as ``t ** L``
  for a per-level syndrome-cycle factor ``t``;
* a program with ``V = Q * runtime`` qubit-cycles of exposure needs a
  level whose logical error keeps the whole-program failure
  probability under budget.

Because the required level is a step function of the error budget, a
schedule speedup that crosses a level boundary pays off *exponentially*
in physical resources — the paper's leverage argument, made
computable (:func:`speedup_leverage`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = ["ConcatenatedCode", "QECCRequirement", "qecc_requirement", "speedup_leverage", "LeverageReport"]


@dataclass(frozen=True)
class ConcatenatedCode:
    """A concatenated QECC family.

    Attributes:
        name: label ("Steane [[7,1,3]]" by default).
        qubits_per_level: physical qubits per logical per level (7).
        time_per_level: execution-time factor per level (syndrome
            extraction rounds; ~5-10 in the literature).
        threshold: the fault-tolerance threshold error rate.
        max_level: refuse beyond this concatenation depth.
    """

    name: str = "Steane [[7,1,3]]"
    qubits_per_level: int = 7
    time_per_level: float = 6.0
    threshold: float = 1e-2
    max_level: int = 12

    def __post_init__(self) -> None:
        if self.qubits_per_level < 2:
            raise ValueError("qubits_per_level must be >= 2")
        if self.time_per_level <= 1:
            raise ValueError("time_per_level must be > 1")
        if not 0 < self.threshold < 1:
            raise ValueError("threshold must be in (0,1)")

    def logical_error(self, level: int, physical_error: float) -> float:
        """Per-gate logical error rate at concatenation ``level``."""
        if level < 0:
            raise ValueError("level must be >= 0")
        if physical_error >= self.threshold:
            # Below threshold concatenation cannot help; error stays.
            return physical_error
        return self.threshold * (
            physical_error / self.threshold
        ) ** (2 ** level)

    def required_level(
        self, target_error: float, physical_error: float
    ) -> int:
        """Smallest level with logical error <= ``target_error``.

        Raises:
            ValueError: if the physical error is at/above threshold (no
                level suffices) or ``max_level`` is exceeded.
        """
        if not 0 < target_error < 1:
            raise ValueError("target_error must be in (0,1)")
        if physical_error >= self.threshold:
            raise ValueError(
                f"physical error {physical_error:g} is not below the "
                f"threshold {self.threshold:g}"
            )
        for level in range(self.max_level + 1):
            if self.logical_error(level, physical_error) <= target_error:
                return level
        raise ValueError(
            f"target error {target_error:g} needs more than "
            f"{self.max_level} levels"
        )

    def qubit_overhead(self, level: int) -> int:
        """Physical qubits per logical qubit at ``level``."""
        return self.qubits_per_level ** level

    def time_overhead(self, level: int) -> float:
        """Wall-clock factor per logical timestep at ``level``."""
        return self.time_per_level ** level


@dataclass(frozen=True)
class QECCRequirement:
    """QECC provisioning for one program execution."""

    code: ConcatenatedCode
    level: int
    logical_error: float
    per_gate_budget: float
    qubit_overhead: int
    time_overhead: float
    physical_qubits: int
    physical_time: float


def qecc_requirement(
    qubit_cycles: int,
    code: Optional[ConcatenatedCode] = None,
    physical_error: float = 1e-4,
    target_success: float = 0.9,
    logical_qubits: int = 1,
    logical_time: int = 1,
) -> QECCRequirement:
    """Provision QECC for a computation exposing ``qubit_cycles``
    qubit-timesteps of state to decoherence.

    Args:
        qubit_cycles: total exposure, e.g. ``Q * runtime`` (or the gate
            count as a lower bound).
        code: the concatenated code family (default Steane).
        physical_error: per-physical-gate error rate.
        target_success: whole-program success probability target.
        logical_qubits / logical_time: used to report absolute physical
            qubit and time figures.
    """
    if qubit_cycles < 1:
        raise ValueError("qubit_cycles must be >= 1")
    code = code or ConcatenatedCode()
    per_gate_budget = -math.log(target_success) / qubit_cycles
    per_gate_budget = min(max(per_gate_budget, 1e-300), 0.5)
    level = code.required_level(per_gate_budget, physical_error)
    return QECCRequirement(
        code=code,
        level=level,
        logical_error=code.logical_error(level, physical_error),
        per_gate_budget=per_gate_budget,
        qubit_overhead=code.qubit_overhead(level),
        time_overhead=code.time_overhead(level),
        physical_qubits=logical_qubits * code.qubit_overhead(level),
        physical_time=logical_time * code.time_overhead(level),
    )


@dataclass(frozen=True)
class LeverageReport:
    """How a schedule speedup translates through QECC provisioning."""

    baseline: QECCRequirement
    accelerated: QECCRequirement
    logical_speedup: float
    physical_speedup: float
    qubit_saving: float

    @property
    def level_dropped(self) -> bool:
        return self.accelerated.level < self.baseline.level


def speedup_leverage(
    baseline_runtime: int,
    accelerated_runtime: int,
    logical_qubits: int,
    code: Optional[ConcatenatedCode] = None,
    physical_error: float = 1e-4,
    target_success: float = 0.9,
) -> LeverageReport:
    """Quantify the paper's Section 7 leverage argument.

    Both executions are provisioned to the same success target; the
    accelerated one exposes fewer qubit-cycles, may need a lower
    concatenation level, and its *physical* wall-clock speedup then
    exceeds the logical one by the time-overhead ratio.
    """
    if accelerated_runtime > baseline_runtime:
        raise ValueError("accelerated runtime exceeds baseline")
    code = code or ConcatenatedCode()
    base = qecc_requirement(
        logical_qubits * baseline_runtime,
        code,
        physical_error,
        target_success,
        logical_qubits=logical_qubits,
        logical_time=baseline_runtime,
    )
    fast = qecc_requirement(
        logical_qubits * accelerated_runtime,
        code,
        physical_error,
        target_success,
        logical_qubits=logical_qubits,
        logical_time=accelerated_runtime,
    )
    logical = baseline_runtime / accelerated_runtime
    physical = base.physical_time / fast.physical_time
    return LeverageReport(
        baseline=base,
        accelerated=fast,
        logical_speedup=logical,
        physical_speedup=physical,
        qubit_saving=base.qubit_overhead / fast.qubit_overhead,
    )
