"""Architectural model: the Multi-SIMD(k,d) machine, memory hierarchy,
teleportation cost accounting, static EPR pre-distribution planning,
and the distributed-global-memory (NUMA) extension."""

from .epr_schedule import (
    EPRDemand,
    EPRPlan,
    epr_demand_timeline,
    plan_epr_distribution,
)
from .machine import (
    GATE_CYCLES,
    LOCAL_MOVE_CYCLES,
    MultiSIMD,
    NAIVE_FACTOR,
    TELEPORT_CYCLES,
    epoch_cycles,
    split_epoch,
    split_machine,
)
from .memory import MemoryMap, Scratchpad
from .numa import (
    NUMAConfig,
    NUMAStats,
    assign_banks,
    epoch_teleport_loads,
    numa_runtime,
    serialize_rounds,
)
from .qecc import (
    ConcatenatedCode,
    LeverageReport,
    QECCRequirement,
    qecc_requirement,
    speedup_leverage,
)
from .teleport import EPRAccounting, teleportation_ops

__all__ = [
    "EPRAccounting",
    "EPRDemand",
    "EPRPlan",
    "GATE_CYCLES",
    "LOCAL_MOVE_CYCLES",
    "MemoryMap",
    "MultiSIMD",
    "NAIVE_FACTOR",
    "NUMAConfig",
    "NUMAStats",
    "ConcatenatedCode",
    "LeverageReport",
    "QECCRequirement",
    "Scratchpad",
    "TELEPORT_CYCLES",
    "assign_banks",
    "epoch_cycles",
    "epoch_teleport_loads",
    "epr_demand_timeline",
    "numa_runtime",
    "plan_epr_distribution",
    "serialize_rounds",
    "split_epoch",
    "split_machine",
    "qecc_requirement",
    "speedup_leverage",
    "teleportation_ops",
]
