"""Memory hierarchy: global quantum memory and per-region scratchpads.

The global memory is unbounded and teleport-connected; each SIMD region
may also have a small *local* scratchpad reached by 1-cycle ballistic
moves (Section 2.5). The scheduler's local-memory refinement pass
consults :class:`Scratchpad` occupancy to decide whether an evicted
qubit can be parked locally or must pay a global teleport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ..core.qubits import Qubit

__all__ = ["Scratchpad", "MemoryMap"]


class Scratchpad:
    """A capacity-limited local memory beside one SIMD region."""

    def __init__(self, capacity: float):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._held: Set[Qubit] = set()
        self.peak_occupancy = 0

    @property
    def occupancy(self) -> int:
        return len(self._held)

    @property
    def free_slots(self) -> float:
        return self.capacity - self.occupancy

    def holds(self, qubit: Qubit) -> bool:
        return qubit in self._held

    def try_store(self, qubit: Qubit) -> bool:
        """Store ``qubit`` if space remains; returns success."""
        if qubit in self._held:
            return True
        if self.occupancy + 1 > self.capacity:
            return False
        self._held.add(qubit)
        if self.occupancy > self.peak_occupancy:
            self.peak_occupancy = self.occupancy
        return True

    def retrieve(self, qubit: Qubit) -> None:
        """Remove ``qubit``; raises KeyError if it is not held."""
        self._held.remove(qubit)


@dataclass
class MemoryMap:
    """Tracks where every qubit currently lives during schedule
    simulation.

    Locations are encoded as:

    * ``("global",)`` — the global quantum memory;
    * ``("region", r)`` — inside SIMD region ``r`` (0-based);
    * ``("local", r)`` — region ``r``'s scratchpad.
    """

    k: int
    local_capacity: Optional[float] = None
    locations: Dict[Qubit, tuple] = field(default_factory=dict)
    scratchpads: Dict[int, Scratchpad] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.local_capacity is not None:
            self.scratchpads = {
                r: Scratchpad(self.local_capacity) for r in range(self.k)
            }

    def location(self, qubit: Qubit) -> tuple:
        """Current location (new qubits start in global memory, where
        ancillas are generated — Section 3.2)."""
        return self.locations.get(qubit, ("global",))

    def move(self, qubit: Qubit, dest: tuple) -> None:
        """Relocate ``qubit``, updating scratchpad occupancy."""
        src = self.location(qubit)
        if src[0] == "local":
            self.scratchpads[src[1]].retrieve(qubit)
        if dest[0] == "local":
            pad = self.scratchpads.get(dest[1])
            if pad is None or not pad.try_store(qubit):
                raise ValueError(
                    f"scratchpad {dest[1]} cannot hold {qubit!r}"
                )
        self.locations[qubit] = dest

    def local_has_space(self, region: int) -> bool:
        pad = self.scratchpads.get(region)
        return pad is not None and pad.free_slots >= 1
