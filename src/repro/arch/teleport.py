"""Quantum teleportation: the communication primitive (Section 2.3).

The Multi-SIMD architecture moves qubit state between regions and global
memory by teleportation (QT): an EPR pair is pre-distributed so sender
and receiver each hold half; two local gates, two measurements and a
classically-conditioned Pauli correction then transfer the state
(Figure 2). Latency is distance-insensitive but costs
:data:`~repro.arch.machine.TELEPORT_CYCLES` qubit-manipulation steps.

This module provides the teleportation circuit itself (verified by the
simulator in the test suite — state actually transfers) and EPR
bandwidth accounting: longer schedules with more teleport epochs demand
more pre-distributed pairs per region (Section 2.3 notes bandwidth, not
latency, scales with distance and movement volume).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.operation import Operation
from ..core.qubits import Qubit

__all__ = ["teleportation_ops", "EPRAccounting"]


def teleportation_ops(
    source: Qubit, epr_near: Qubit, epr_far: Qubit
) -> List[Operation]:
    """The Figure 2 teleportation network as a unitary circuit.

    Teleports the state of ``source`` onto ``epr_far``. ``epr_near`` and
    ``epr_far`` must start in ``|00>``; the circuit first creates their
    EPR pair (the pre-distribution step), then runs the standard
    protocol. Measurement + classically-controlled corrections are
    expressed coherently (CNOT / CZ from the measured qubits), which is
    unitarily equivalent and lets the simulator verify the transfer.
    """
    return [
        # EPR pair preparation (done at the global memory, Section 2.3).
        Operation("H", (epr_near,)),
        Operation("CNOT", (epr_near, epr_far)),
        # Bell measurement basis change on the source side.
        Operation("CNOT", (source, epr_near)),
        Operation("H", (source,)),
        # Conditional corrections at the destination (X from the middle
        # qubit's bit, Z from the source's bit).
        Operation("CNOT", (epr_near, epr_far)),
        Operation("CZ", (source, epr_far)),
    ]


@dataclass
class EPRAccounting:
    """Tallies EPR-pair consumption per (source, destination) channel.

    Every teleport move consumes one pre-distributed pair between its
    endpoints. ``peak_epoch_demand`` tracks the largest number of pairs
    consumed in a single movement epoch — the channel bandwidth a
    physical layout must sustain.
    """

    pair_counts: Dict[Tuple[str, str], int] = field(default_factory=dict)
    total_pairs: int = 0
    peak_epoch_demand: int = 0

    def record_epoch(self, moves: List[Tuple[str, str]]) -> None:
        """Record one movement epoch's teleports as (src, dst) labels."""
        for src, dst in moves:
            key = (src, dst)
            self.pair_counts[key] = self.pair_counts.get(key, 0) + 1
        self.total_pairs += len(moves)
        if len(moves) > self.peak_epoch_demand:
            self.peak_epoch_demand = len(moves)

    def busiest_channels(self, n: int = 5) -> List[Tuple[Tuple[str, str], int]]:
        """The ``n`` channels consuming the most pairs."""
        return sorted(
            self.pair_counts.items(), key=lambda kv: -kv[1]
        )[:n]
