"""The Multi-SIMD(k,d) architectural model (Section 2).

A machine has ``k`` SIMD operating regions, each able to apply *one* gate
type to up to ``d`` qubits per logical timestep, a teleportation-
connected global quantum memory, and optionally a small ballistic
scratchpad ("local memory") beside each region.

Cost model (Sections 2.3, 2.5, 3.2):

* every logical gate costs 1 timestep (the clock is set by the longest
  gate);
* a movement epoch that includes at least one teleportation costs 4
  timesteps (the four qubit-manipulation steps of Figure 2);
* an epoch with only ballistic local-memory moves costs 1 timestep;
* the *naive movement model* charges a teleport epoch around every
  timestep, quintupling runtime — the sequential/naive baseline of
  Figures 7 and 8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

__all__ = [
    "MultiSIMD",
    "GATE_CYCLES",
    "TELEPORT_CYCLES",
    "LOCAL_MOVE_CYCLES",
    "NAIVE_FACTOR",
    "parse_capacity",
    "capacity_label",
    "split_epoch",
    "epoch_cycles",
    "split_machine",
]

#: Cycles per logical gate (all gates normalised to the slowest — Sec 3.2).
GATE_CYCLES = 1
#: Cycles per teleportation movement epoch (the 4 steps of Figure 2).
TELEPORT_CYCLES = 4
#: Cycles per ballistic local-memory movement epoch (Section 2.5).
LOCAL_MOVE_CYCLES = 1
#: Naive model: every gate cycle pays a teleport epoch (1 + 4 = 5x).
NAIVE_FACTOR = GATE_CYCLES + TELEPORT_CYCLES


@dataclass(frozen=True)
class MultiSIMD:
    """A Multi-SIMD(k,d) machine configuration.

    Attributes:
        k: number of SIMD operating regions (>= 1).
        d: qubits a region can operate on per timestep; ``None`` means
            unbounded (the paper's ``d = infinity`` default).
        local_memory: per-region scratchpad capacity in qubits; ``None``
            disables local memories, ``math.inf`` models unbounded ones
            (Figure 8's "Inf" series).
    """

    k: int
    d: Optional[int] = None
    local_memory: Optional[float] = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.d is not None and self.d < 1:
            raise ValueError(f"d must be >= 1 or None, got {self.d}")
        if self.local_memory is not None and self.local_memory < 0:
            raise ValueError(
                f"local memory capacity must be >= 0, got "
                f"{self.local_memory}"
            )

    @property
    def has_local_memory(self) -> bool:
        return self.local_memory is not None and self.local_memory > 0

    @property
    def region_capacity(self) -> float:
        """Effective d as a float (inf when unbounded)."""
        return math.inf if self.d is None else float(self.d)

    def with_local_memory(self, capacity: Optional[float]) -> "MultiSIMD":
        """Same machine with a different scratchpad capacity."""
        return replace(self, local_memory=capacity)

    def with_k(self, k: int) -> "MultiSIMD":
        """Same machine with a different region count."""
        return replace(self, k=k)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        d = "inf" if self.d is None else str(self.d)
        lm = (
            ""
            if self.local_memory is None
            else f", local={self.local_memory:g}"
        )
        return f"Multi-SIMD({self.k},{d}{lm})"


def split_epoch(moves):
    """Partition one movement epoch's moves by kind.

    The canonical classification step every billing path shares
    (movement derivation, EPR planning, NUMA re-billing, replay, and
    the execution engine). ``moves`` is any iterable of objects with a
    ``kind`` attribute of ``"teleport"`` or ``"local"``.

    Returns:
        ``(teleports, local_moves)`` as two lists, preserving order.
    """
    teleports = [m for m in moves if m.kind == "teleport"]
    locals_ = [m for m in moves if m.kind == "local"]
    return teleports, locals_


def epoch_cycles(
    teleports: int, local_moves: int, teleport_rounds: int = 1
) -> int:
    """Canonical cost of one movement epoch.

    The paper's rule (Sections 2.5, 3.2): an epoch with any
    teleportation costs :data:`TELEPORT_CYCLES` ("If any SIMD regions
    in a timestep have a global move, the full four cycle move time is
    retained"), an epoch with only ballistic local moves costs
    :data:`LOCAL_MOVE_CYCLES`, and an empty epoch is free.

    Args:
        teleports / local_moves: move counts by kind.
        teleport_rounds: serialization factor for bandwidth-limited
            teleport epochs (see :func:`repro.arch.numa.numa_runtime`);
            1 for the unconstrained model.
    """
    if teleport_rounds < 1:
        raise ValueError(
            f"teleport_rounds must be >= 1, got {teleport_rounds}"
        )
    if teleports:
        return TELEPORT_CYCLES * teleport_rounds
    if local_moves:
        return LOCAL_MOVE_CYCLES
    return 0


def split_machine(machine: MultiSIMD, cores: int) -> MultiSIMD:
    """Divide a total Multi-SIMD(k,d) budget over ``cores`` cores.

    The region budget ``k`` is split evenly — comparisons between a
    single ``Multi-SIMD(k,d)`` chip and ``cores`` cores of
    ``Multi-SIMD(k/cores, d)`` then hold the total region count fixed.
    ``d`` and the local-memory capacity are per-region properties and
    carry over unchanged.

    Raises:
        ValueError: ``cores`` < 1, or ``k`` not divisible by ``cores``.
    """
    if cores < 1:
        raise ValueError(f"cores must be >= 1, got {cores}")
    if machine.k % cores:
        raise ValueError(
            f"cannot split k={machine.k} regions evenly over "
            f"{cores} core(s)"
        )
    return machine.with_k(machine.k // cores)


def parse_capacity(text: Optional[str]) -> Optional[float]:
    """Parse a local-memory capacity spelling.

    The one canonical encoding used by the CLI, the sweep grid, and the
    figure benches: ``None``/``"none"`` disables local memories,
    ``"inf"`` models unbounded ones, any other spelling must parse as a
    non-negative number.

    Raises:
        ValueError: on a non-numeric or negative spelling.
    """
    if text is None or text == "none":
        return None
    if text == "inf":
        return math.inf
    try:
        value = float(text)
    except ValueError:
        raise ValueError(
            f"bad local-memory capacity {text!r} "
            "(expected 'none', 'inf', or a number)"
        ) from None
    if value < 0:
        raise ValueError("local-memory capacity must be >= 0")
    return value


def capacity_label(value: Optional[float]) -> str:
    """Inverse of :func:`parse_capacity`, for reports and JSON keys."""
    if value is None:
        return "none"
    if math.isinf(value):
        return "inf"
    return f"{value:g}"
