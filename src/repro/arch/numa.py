"""Distributed global memory (the paper's stated future work).

Section 2.3: "To minimize EPR bandwidth requirements, future work will
investigate distributed global memory and compiler algorithms for
mapping to such a non-uniform memory architecture." This module
implements that extension:

* the global memory is split into ``banks`` banks laid out on a line
  beside the SIMD regions; each (bank, region) channel sustains
  ``channel_bandwidth`` EPR pairs per movement epoch, derated with
  distance (a pair crossing ``h`` hops occupies ``1 + h`` units of
  channel capacity — constant latency, linear bandwidth, per the
  paper's model of teleportation);
* qubits are mapped to banks by *affinity*: each qubit lives in the
  bank nearest the region that touches it most (the compiler mapping
  algorithm the paper anticipates), or round-robin as a baseline;
* movement epochs are re-billed: an epoch whose busiest channel (or
  busiest bank egress — one bank is one pair-generation site) demands
  more capacity than the bandwidth is serialised into multiple
  teleport rounds.

With ``banks=1`` and infinite bandwidth this degenerates exactly to
the paper's centralized-memory accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.qubits import Qubit
from ..sched.types import Schedule
from .machine import GATE_CYCLES, epoch_cycles, split_epoch

__all__ = [
    "NUMAConfig",
    "NUMAStats",
    "assign_banks",
    "epoch_teleport_loads",
    "serialize_rounds",
    "numa_runtime",
]


@dataclass(frozen=True)
class NUMAConfig:
    """A distributed-global-memory configuration.

    Attributes:
        banks: number of memory banks (>= 1).
        channel_bandwidth: pair-capacity units per (bank, region)
            channel per teleport round (``inf`` = unconstrained).
        bank_egress: total pair-capacity units one bank can source per
            teleport round, across all its channels (``inf`` =
            unconstrained). This is the constraint distribution
            actually relieves: a single centralized memory is a single
            generation site.
        placement: ``"affinity"`` (most-used region's nearest bank) or
            ``"round_robin"``.
    """

    banks: int = 1
    channel_bandwidth: float = math.inf
    bank_egress: float = math.inf
    placement: str = "affinity"

    def __post_init__(self) -> None:
        if self.banks < 1:
            raise ValueError(f"banks must be >= 1, got {self.banks}")
        if self.channel_bandwidth <= 0:
            raise ValueError("channel bandwidth must be positive")
        if self.bank_egress <= 0:
            raise ValueError("bank egress must be positive")
        if self.placement not in ("affinity", "round_robin"):
            raise ValueError(
                f"unknown placement policy {self.placement!r}"
            )

    def nearest_bank(self, region: int, k: int) -> int:
        """The bank physically adjacent to ``region`` on the line."""
        if k <= 0:
            return 0
        return min(self.banks - 1, region * self.banks // max(k, 1))

    def distance(self, bank: int, region: int, k: int) -> int:
        """Hop distance between a bank and a region on the line."""
        home = self.nearest_bank(region, k)
        return abs(bank - home)


@dataclass
class NUMAStats:
    """Runtime accounting under distributed global memory.

    Attributes:
        runtime: total cycles with bandwidth-serialised epochs.
        teleport_rounds: total teleport rounds billed (>= epochs).
        peak_channel_load: largest single-epoch channel demand, in
            capacity units.
        bank_loads: total capacity units consumed per bank.
        bank_of: the qubit -> bank placement used.
    """

    runtime: int
    teleport_rounds: int
    peak_channel_load: float
    bank_loads: Dict[int, float] = field(default_factory=dict)
    bank_of: Dict[Qubit, int] = field(default_factory=dict)


def assign_banks(
    sched: Schedule, config: NUMAConfig
) -> Dict[Qubit, int]:
    """Map every qubit the schedule touches to a memory bank."""
    usage: Dict[Qubit, Dict[int, int]] = {}
    order: List[Qubit] = []
    for ts in sched.timesteps:
        for r, nodes in enumerate(ts.regions):
            for n in nodes:
                for q in sched.operation(n).qubits:
                    if q not in usage:
                        usage[q] = {}
                        order.append(q)
                    usage[q][r] = usage[q].get(r, 0) + 1
    bank_of: Dict[Qubit, int] = {}
    for i, q in enumerate(order):
        if config.placement == "round_robin":
            bank_of[q] = i % config.banks
        else:
            home_region = max(
                usage[q].items(), key=lambda kv: (kv[1], -kv[0])
            )[0]
            bank_of[q] = config.nearest_bank(home_region, sched.k)
    return bank_of


def epoch_teleport_loads(
    teleports,
    bank_of: Dict[Qubit, int],
    config: NUMAConfig,
    k: int,
) -> Tuple[Dict[Tuple[int, int], float], Dict[int, float]]:
    """Per-channel and per-bank capacity loads of one epoch's teleports.

    A pair crossing ``h`` hops occupies ``1 + h`` units of channel (and
    bank-egress) capacity. Moves between two regions are routed through
    the destination region's nearest bank (pairs are generated at
    memory, Section 2.3). Shared by :func:`numa_runtime` and the
    execution engine so both bill from one implementation.

    Returns:
        ``(channel_load, bank_load)`` keyed by ``(bank, region)`` and
        ``bank`` respectively.
    """
    channel_load: Dict[Tuple[int, int], float] = {}
    bank_load: Dict[int, float] = {}
    for m in teleports:
        region = _endpoint_region(m)
        bank = bank_of.get(m.qubit, 0)
        cost = 1.0 + config.distance(bank, region, k)
        key = (bank, region)
        channel_load[key] = channel_load.get(key, 0.0) + cost
        bank_load[bank] = bank_load.get(bank, 0.0) + cost
    return channel_load, bank_load


def serialize_rounds(
    channel_load: Dict[Tuple[int, int], float],
    bank_load: Dict[int, float],
    config: NUMAConfig,
) -> int:
    """Teleport rounds one epoch serializes into, given its loads.

    The busiest channel and the busiest bank egress each bound the
    epoch; the round count is the larger of the two ceilings (1 when
    both limits are unconstrained or the epoch is empty).
    """
    rounds = 1
    if channel_load and not math.isinf(config.channel_bandwidth):
        rounds = max(
            rounds,
            math.ceil(
                max(channel_load.values()) / config.channel_bandwidth
            ),
        )
    if bank_load and not math.isinf(config.bank_egress):
        rounds = max(
            rounds,
            math.ceil(max(bank_load.values()) / config.bank_egress),
        )
    return rounds


def numa_runtime(
    sched: Schedule,
    config: NUMAConfig,
    bank_of: Optional[Dict[Qubit, int]] = None,
) -> NUMAStats:
    """Re-bill a movement-annotated schedule's epochs under distributed
    memory with bandwidth-limited channels.

    Moves between two regions are routed through the destination
    region's nearest bank (pairs are generated at memory, Section 2.3).
    """
    if bank_of is None:
        bank_of = assign_banks(sched, config)
    runtime = 0
    rounds = 0
    peak = 0.0
    bank_loads: Dict[int, float] = {b: 0.0 for b in range(config.banks)}

    for ts in sched.timesteps:
        teleports, locals_ = split_epoch(ts.moves)
        epoch_rounds = 1
        if teleports:
            channel_load, epoch_bank_load = epoch_teleport_loads(
                teleports, bank_of, config, sched.k
            )
            for bank, load in epoch_bank_load.items():
                bank_loads[bank] += load
            peak = max(peak, max(channel_load.values()))
            epoch_rounds = serialize_rounds(
                channel_load, epoch_bank_load, config
            )
            rounds += epoch_rounds
        runtime += epoch_cycles(
            len(teleports), len(locals_), epoch_rounds
        )
        runtime += GATE_CYCLES
    return NUMAStats(
        runtime=runtime,
        teleport_rounds=rounds,
        peak_channel_load=peak,
        bank_loads=bank_loads,
        bank_of=bank_of,
    )


def _endpoint_region(move) -> int:
    """The region side of a teleport (bank side is the qubit's home)."""
    if move.dst[0] == "region":
        return move.dst[1]
    if move.src[0] == "region":
        return move.src[1]
    if move.dst[0] == "local":
        return move.dst[1]
    if move.src[0] == "local":
        return move.src[1]
    return 0
