"""The compilation service: content-addressed cached compiles.

:class:`CompileService` wraps :func:`repro.toolflow.compile_and_schedule`
with two cache tiers keyed by request fingerprint:

1. an **in-memory LRU** holding live :class:`CompileResult` objects
   (schedule bodies included) for same-process reuse — this is what
   replaced the unbounded ``functools.lru_cache`` the figure benches
   used to rely on;
2. an **on-disk artifact store** holding JSON exports
   (:func:`~repro.sched.report.compile_result_to_dict` plus the span
   timings recorded during the original compute), shared across
   processes and runs.

Every fresh compute runs under a span recorder
(:mod:`repro.instrument`), so per-stage timings travel with the
artifact: a warm lookup still reports how long each stage of the
original compute took.

A disk hit reconstructs a *metrics-equivalent* result
(:func:`~repro.sched.report.compile_result_from_dict`): every headline
number, per-module profile and diagnostic round-trips exactly. Schedule
bodies live in a gzip **sidecar** next to the main artifact (kept out
of the metrics JSON because they dominate its size) and are rehydrated
on disk hits, so engine consumers get live schedules from the cache
instead of recompiling; results loaded from pre-sidecar stores still
come back with empty ``schedules``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..arch.machine import MultiSIMD
from ..core.module import Program
from ..instrument import record_spans
from ..passes.decompose import DecomposeConfig
from ..passes.flatten import DEFAULT_FTH
from ..toolflow import CompileResult, SchedulerConfig, compile_and_schedule
from ..sched.report import (
    compile_result_from_dict,
    compile_result_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from .fingerprint import PIPELINE_VERSION, fingerprint_request
from .store import ArtifactStore, CacheStats, LRUCache

__all__ = ["CompileService", "ServiceEntry"]


@dataclass
class ServiceEntry:
    """One service lookup: the result plus cache/timing provenance.

    Attributes:
        result: the (possibly reconstructed) compile result.
        fingerprint: content fingerprint of the request.
        cached: ``None`` for a fresh compute, ``"memory"`` or ``"disk"``
            for a cache hit.
        elapsed_s: wall-clock seconds of the *original* compute (carried
            through the artifact for cache hits).
        spans: per-stage timing spans of the original compute
            (``{name: {"calls": n, "seconds": s}}``).
    """

    result: CompileResult
    fingerprint: str
    cached: Optional[str]
    elapsed_s: float
    spans: Dict[str, Dict[str, float]] = field(default_factory=dict)


def _rehydrate_schedules(store: ArtifactStore, fp: str, result) -> None:
    """Attach sidecar schedule bodies to a disk-loaded result (no-op
    when the sidecar is missing or stale — consumers that need live
    schedules then fall back to recompiling)."""
    if result.schedules:
        return
    payload = store.load_schedules(fp)
    if payload is None:
        return
    result.schedules = {
        name: schedule_from_dict(s) for name, s in payload.items()
    }


class CompileService:
    """Content-addressed compile cache over the full toolflow.

    Args:
        cache_dir: artifact store directory; ``None`` disables the disk
            tier (memory LRU only).
        max_memory_entries: in-memory LRU capacity.
        pipeline_version: override for cache-invalidation tests.
    """

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        max_memory_entries: int = 128,
        pipeline_version: str = PIPELINE_VERSION,
    ) -> None:
        self.stats = CacheStats()
        self.memory: LRUCache = LRUCache(
            max_entries=max_memory_entries, stats=self.stats
        )
        self.store: Optional[ArtifactStore] = (
            ArtifactStore(
                Path(cache_dir),
                pipeline_version=pipeline_version,
                stats=self.stats,
            )
            if cache_dir is not None
            else None
        )

    # -- cache plumbing ------------------------------------------------

    def invalidate(self, fingerprint: str) -> None:
        """Drop one fingerprint from both tiers."""
        self.memory.pop(fingerprint)
        if self.store is not None:
            self.store.invalidate(fingerprint)

    def clear(self) -> None:
        """Drop everything from both tiers."""
        self.memory.clear()
        if self.store is not None:
            self.store.clear()

    def peek(self, fingerprint: str) -> Optional[ServiceEntry]:
        """Cache-only lookup by fingerprint: memory, then disk.

        Never computes — the server's admission path uses this to
        serve completed work straight from the content-addressed store
        without occupying a worker. Hits count toward the shared
        stats; a miss counts as a miss (the subsequent compute happens
        elsewhere, typically in a pool worker).
        """
        entry = self.memory.get(fingerprint)
        if entry is not None:
            self.stats.memory_hits += 1
            return ServiceEntry(
                result=entry["result"],
                fingerprint=fingerprint,
                cached="memory",
                elapsed_s=entry["elapsed_s"],
                spans=entry["spans"],
            )
        if self.store is not None:
            payload = self.store.load(fingerprint)
            if payload is not None:
                self.stats.disk_hits += 1
                result = compile_result_from_dict(payload["result"])
                _rehydrate_schedules(self.store, fingerprint, result)
                entry = {
                    "result": result,
                    "elapsed_s": payload.get("elapsed_s", 0.0),
                    "spans": payload.get("spans", {}),
                }
                self.memory.put(fingerprint, entry)
                return ServiceEntry(
                    result=result,
                    fingerprint=fingerprint,
                    cached="disk",
                    elapsed_s=entry["elapsed_s"],
                    spans=entry["spans"],
                )
        self.stats.misses += 1
        return None

    # -- the service call ----------------------------------------------

    def compile(
        self,
        program: Program,
        machine: MultiSIMD,
        scheduler: Optional[SchedulerConfig] = None,
        fth: int = DEFAULT_FTH,
        decompose: bool = True,
        decompose_config: Optional[DecomposeConfig] = None,
        optimize: bool = False,
        strict: bool = False,
        use_cache: bool = True,
    ) -> CompileResult:
        """Cached equivalent of
        :func:`~repro.toolflow.compile_and_schedule`."""
        return self.lookup(
            program,
            machine,
            scheduler,
            fth=fth,
            decompose=decompose,
            decompose_config=decompose_config,
            optimize=optimize,
            strict=strict,
            use_cache=use_cache,
        ).result

    def lookup(
        self,
        program: Program,
        machine: MultiSIMD,
        scheduler: Optional[SchedulerConfig] = None,
        fth: int = DEFAULT_FTH,
        decompose: bool = True,
        decompose_config: Optional[DecomposeConfig] = None,
        optimize: bool = False,
        strict: bool = False,
        use_cache: bool = True,
    ) -> ServiceEntry:
        """Serve a compile request through the cache tiers.

        ``use_cache=False`` forces a fresh compute (and still stores
        the artifact, refreshing both tiers).
        """
        scheduler = scheduler or SchedulerConfig()
        fp = fingerprint_request(
            program,
            machine,
            scheduler,
            fth=fth,
            decompose=decompose,
            decompose_config=decompose_config,
            optimize=optimize,
            strict=strict,
        )
        if use_cache:
            entry = self.memory.get(fp)
            if entry is not None:
                self.stats.memory_hits += 1
                return ServiceEntry(
                    result=entry["result"],
                    fingerprint=fp,
                    cached="memory",
                    elapsed_s=entry["elapsed_s"],
                    spans=entry["spans"],
                )
            if self.store is not None:
                payload = self.store.load(fp)
                if payload is not None:
                    self.stats.disk_hits += 1
                    result = compile_result_from_dict(payload["result"])
                    _rehydrate_schedules(self.store, fp, result)
                    entry = {
                        "result": result,
                        "elapsed_s": payload.get("elapsed_s", 0.0),
                        "spans": payload.get("spans", {}),
                    }
                    self.memory.put(fp, entry)
                    return ServiceEntry(
                        result=result,
                        fingerprint=fp,
                        cached="disk",
                        elapsed_s=entry["elapsed_s"],
                        spans=entry["spans"],
                    )
            self.stats.misses += 1

        start = time.perf_counter()
        with record_spans() as rec:
            result = compile_and_schedule(
                program,
                machine,
                scheduler,
                fth=fth,
                decompose=decompose,
                decompose_config=decompose_config,
                optimize=optimize,
                strict=strict,
            )
        elapsed = time.perf_counter() - start
        spans = rec.to_dict()
        self.memory.put(
            fp, {"result": result, "elapsed_s": elapsed, "spans": spans}
        )
        if self.store is not None:
            self.store.save(
                fp,
                {
                    "result": compile_result_to_dict(result),
                    "spans": spans,
                    "elapsed_s": elapsed,
                },
            )
            if result.schedules:
                self.store.save_schedules(
                    fp,
                    {
                        name: schedule_to_dict(s)
                        for name, s in sorted(result.schedules.items())
                    },
                )
        return ServiceEntry(
            result=result,
            fingerprint=fp,
            cached=None,
            elapsed_s=elapsed,
            spans=spans,
        )

    def stats_dict(self) -> Dict[str, Any]:
        """JSON-safe counter snapshot (both tiers share the counters)."""
        return self.stats.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = self.store.root if self.store else "memory-only"
        return (
            f"CompileService({where}, {len(self.memory)} in memory, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )
