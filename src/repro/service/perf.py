"""The ``perf`` harness: pinned-grid pipeline benchmarking.

The scheduler fast path (:mod:`repro.fastpath`) promises wall-clock
improvements with bit-identical output. This module makes that claim
*measurable and regression-guarded*:

* a **pinned grid** — every benchmark x {rcp, lpfs} at one fixed
  Multi-SIMD(4,4) configuration — run serially, uncached, through the
  existing sweep runner (:func:`repro.service.sweep.run_sweep`);
* per-stage **wall time** aggregated from the pipeline's
  :mod:`~repro.instrument` spans, and process **peak RSS** sampled per
  job via ``resource.getrusage`` (no third-party profiler);
* the same grid measured on the **reference pipeline**
  (:func:`repro.fastpath.reference_pipeline`), yielding an honest
  fast-vs-reference speedup from one run on one machine;
* a schema-versioned report (``repro.bench-perf/2`` —
  ``BENCH_perf.json``) with a hand-rolled validator, mirroring the
  sweep report's conventions;
* **scale jobs** (schema ``/2``): the synthetic paper-scale generators
  (:mod:`repro.benchmarks.scale`) pushed through the streamed *and*
  materialized leaf pipelines in fresh subprocesses, so each job's
  ``ru_maxrss`` is its own high-water mark — yielding
  ``peak_rss_kb_per_mgate``, the memory-per-gate figure the streaming
  pipeline exists to bound, plus the streamed/materialized throughput
  ratio;
* a **baseline comparison** for CI: because the committed baseline was
  measured on different hardware, stage times are first rescaled by the
  ratio of the two *reference-pipeline* totals (the reference acts as a
  built-in machine-speed probe), then any stage slower than the scaled
  baseline by more than ``tolerance`` is flagged. Scale-job memory is
  gated the same way, rescaled by the ratio of the two documents'
  fresh-interpreter RSS (the memory analogue of the speed probe) and
  keyed by the full job label — which embeds the pipeline mode, so a
  streamed measurement is never compared against a materialized
  baseline or vice versa.

Timings take the **minimum across repeats** (the minimum is the
standard low-noise estimator for benchmark wall times); peak RSS takes
the maximum.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

from ..fastpath import fast_path_enabled, reference_pipeline
from .fingerprint import PIPELINE_VERSION
from .sweep import JobSpec, SweepGrid, SweepRun, execute_job, run_sweep

__all__ = [
    "PERF_SCHEMA",
    "ACCEPTED_PERF_SCHEMAS",
    "STAGE_FLOOR_S",
    "perf_grid",
    "perf_worker",
    "run_perf",
    "scale_perf_jobs",
    "run_scale_perf",
    "build_perf_payload",
    "validate_perf_payload",
    "compare_perf_payloads",
]

#: Version tag of the ``BENCH_perf.json`` document layout.
PERF_SCHEMA = "repro.bench-perf/2"

#: Schemas :func:`validate_perf_payload` accepts. ``/1`` documents
#: (no scale section, no pipeline labels) remain valid baselines; the
#: scale memory gate simply has nothing to compare against them.
ACCEPTED_PERF_SCHEMAS = (PERF_SCHEMA, "repro.bench-perf/1")

#: Baseline stages faster than this (after machine rescaling) are too
#: noisy to gate on and are skipped by :func:`compare_perf_payloads`.
STAGE_FLOOR_S = 0.1

#: Allowed slowdown before a stage counts as a regression (25%).
DEFAULT_TOLERANCE = 0.25

#: Allowed growth in scale-job ``peak_rss_kb_per_mgate`` before it
#: counts as a memory regression (35% — RSS is noisier than time).
DEFAULT_MEMORY_TOLERANCE = 0.35

#: Default post-decompose gate target for the perf scale jobs. Small
#: enough for CI smoke, large enough that per-gate memory dominates
#: the interpreter baseline.
DEFAULT_SCALE_GATES = 200_000

#: Default ingestion window for streamed scale jobs.
DEFAULT_SCALE_WINDOW = 65536


def perf_grid() -> SweepGrid:
    """The pinned measurement grid.

    Every benchmark in the registry, both fine-grained schedulers, at
    one representative machine point — Multi-SIMD(k=4, d=4) with a
    4-qubit scratchpad, the paper's favoured configuration family. The
    grid is pinned so ``BENCH_perf.json`` documents are comparable
    across commits; changing it invalidates committed baselines.
    """
    from ..benchmarks import benchmark_names

    return SweepGrid(
        benchmarks=tuple(benchmark_names()),
        algorithms=("rcp", "lpfs"),
        ks=(4,),
        ds=(4,),
        local_memories=(4.0,),
    )


def _peak_rss_kb() -> Optional[int]:
    """Process high-water RSS in KiB (None where unsupported).

    Prefers ``/proc/self/status`` ``VmHWM``, which is per-address-space
    and therefore *resets on exec*. ``ru_maxrss`` does not: Linux folds
    the pre-exec (forked-parent copy) watermark into the child's
    accounting, so a scale subprocess spawned from a fat parent would
    inherit the parent's peak and the per-job figure would be
    meaningless.
    """
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):  # pragma: no cover
        pass
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF)
    rss = usage.ru_maxrss
    if rss <= 0:  # pragma: no cover - defensive
        return None
    # Linux reports KiB; macOS reports bytes.
    import sys

    if sys.platform == "darwin":  # pragma: no cover - platform
        rss //= 1024
    return int(rss)


def perf_worker(
    job: JobSpec,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
) -> Dict[str, Any]:
    """:func:`~repro.service.sweep.execute_job` plus a peak-RSS sample.

    ``ru_maxrss`` is a process-lifetime high-water mark, so the sample
    is monotone across a serial run; the report keeps the maximum,
    which is exactly that watermark.
    """
    outcome = execute_job(job, cache_dir, use_cache)
    outcome["peak_rss_kb"] = _peak_rss_kb()
    return outcome


def scale_perf_jobs(
    target_gates: int = DEFAULT_SCALE_GATES,
    algorithm: str = "lpfs",
    window: int = DEFAULT_SCALE_WINDOW,
    k: int = 4,
    d: int = 4,
    kinds: Optional[Sequence[str]] = None,
) -> List[Dict[str, Any]]:
    """The pinned scale-job list: every synthetic kind through both
    pipeline modes at one machine point.

    The label embeds everything the baseline gate keys on — kind,
    gate target, machine, algorithm, window and **pipeline mode** — so
    streamed and materialized measurements can never cross-compare.
    """
    from ..benchmarks.scale import SCALE_KINDS

    jobs: List[Dict[str, Any]] = []
    for kind in kinds if kinds is not None else SCALE_KINDS:
        for pipeline in ("streamed", "materialized"):
            win = window if pipeline == "streamed" else None
            label = (
                f"scale:{kind}@{target_gates}/k{k}d{d}/{algorithm}"
                f"/{pipeline}"
                + (f"[w={win}]" if win is not None else "")
            )
            jobs.append(
                {
                    "label": label,
                    "kind": kind,
                    "target_gates": target_gates,
                    "algorithm": algorithm,
                    "k": k,
                    "d": d,
                    "window": win,
                    "pipeline": pipeline,
                }
            )
    return jobs


def _measure_scale_job(job: Dict[str, Any]) -> Dict[str, Any]:
    """Run one scale job in-process and return its measurement row.

    Meant to run in a *fresh* interpreter (see :func:`run_scale_perf`)
    so ``ru_maxrss`` is this job's own high-water mark; ``interp_rss_kb``
    is sampled before any benchmark work as the machine's memory
    baseline probe.
    """
    interp_rss = _peak_rss_kb()
    t0 = time.perf_counter()

    from ..arch.machine import MultiSIMD
    from ..benchmarks.scale import build_scale
    from ..core.dag import DependenceDAG
    from ..passes.stream import leaf_stream
    from ..sched.comm import derive_movement
    from ..sched.stream import (
        build_columns,
        derive_movement_stream,
        schedule_columns,
    )
    from ..toolflow import SchedulerConfig

    program, total = build_scale(job["kind"], job["target_gates"])
    machine = MultiSIMD(k=job["k"], d=job["d"])
    scheduler = SchedulerConfig(job["algorithm"])
    build_s = time.perf_counter() - t0

    t1 = time.perf_counter()
    if job["pipeline"] == "streamed":
        cols = build_columns(
            leaf_stream(program, program.entry, length_hint=total),
            window=job["window"],
        )
        ssched = schedule_columns(
            cols,
            scheduler.algorithm,
            k=job["k"],
            d=job["d"],
            lpfs_l=scheduler.lpfs_l,
            lpfs_simd=scheduler.lpfs_simd,
            lpfs_refill=scheduler.lpfs_refill,
        )
        schedule_s = time.perf_counter() - t1
        t2 = time.perf_counter()
        stats = derive_movement_stream(cols, ssched, machine)
        length = ssched.length
    else:
        ops = list(leaf_stream(program, program.entry))
        dag = DependenceDAG(ops)
        sched = scheduler.schedule(dag, k=job["k"], d=job["d"])
        schedule_s = time.perf_counter() - t1
        t2 = time.perf_counter()
        stats = derive_movement(sched, machine)
        length = sched.length
    movement_s = time.perf_counter() - t2

    peak = _peak_rss_kb()
    elapsed = time.perf_counter() - t0
    return {
        "label": job["label"],
        "kind": job["kind"],
        "target_gates": job["target_gates"],
        "total_gates": total,
        "algorithm": job["algorithm"],
        "k": job["k"],
        "d": job["d"],
        "window": job["window"],
        "pipeline": job["pipeline"],
        "status": "ok",
        "build_s": build_s,
        "schedule_s": schedule_s,
        "movement_s": movement_s,
        "elapsed_s": elapsed,
        "schedule_length": length,
        "runtime": stats.runtime,
        "interp_rss_kb": interp_rss,
        "peak_rss_kb": peak,
        "peak_rss_kb_per_mgate": (
            peak / (total / 1e6) if peak is not None and total else None
        ),
    }


#: Driver the scale subprocess runs: one job dict (JSON) on stdin, one
#: measurement row (JSON) on stdout. ``python -c`` rather than
#: ``multiprocessing`` spawn because spawn re-executes the parent's
#: ``__main__`` — fragile under pytest, REPLs, and piped scripts.
_SCALE_DRIVER = (
    "import json, sys\n"
    "from repro.service.perf import _measure_scale_job\n"
    "row = _measure_scale_job(json.load(sys.stdin))\n"
    "json.dump(row, sys.stdout)\n"
)


def _run_scale_subprocess(
    job: Dict[str, Any], timeout_s: float
) -> Dict[str, Any]:
    import json
    import os
    import subprocess
    import sys

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    try:
        proc = subprocess.run(
            [sys.executable, "-c", _SCALE_DRIVER],
            input=json.dumps(job),
            capture_output=True,
            text=True,
            timeout=timeout_s,
            env=env,
        )
    except subprocess.TimeoutExpired:
        return {
            "label": job["label"],
            "pipeline": job.get("pipeline"),
            "status": "timeout",
            "error": f"no result within {timeout_s:g}s",
        }
    if proc.returncode != 0:
        return {
            "label": job["label"],
            "pipeline": job.get("pipeline"),
            "status": "error",
            "error": f"subprocess exited with code {proc.returncode}: "
            + proc.stderr.strip()[-500:],
        }
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return {
            "label": job["label"],
            "pipeline": job.get("pipeline"),
            "status": "error",
            "error": "subprocess wrote no parseable result",
        }


def run_scale_perf(
    jobs: Optional[Sequence[Dict[str, Any]]] = None,
    fresh_process: bool = True,
    timeout_s: float = 600.0,
) -> Dict[str, Any]:
    """Measure the scale jobs, each in a fresh subprocess.

    A process-lifetime ``ru_maxrss`` is only meaningful per job when
    each job gets its own process; ``fresh_process=False`` (tests,
    environments that cannot exec) measures inline and marks the
    section accordingly — the RSS columns then read as the parent's
    watermark, monotone across jobs.
    """
    job_list = list(jobs) if jobs is not None else scale_perf_jobs()
    rows: List[Dict[str, Any]] = []
    isolated = fresh_process
    for job in job_list:
        if fresh_process:
            try:
                rows.append(_run_scale_subprocess(job, timeout_s))
                continue
            except OSError:  # pragma: no cover - exec unavailable
                isolated = False
                fresh_process = False
        rows.append(_measure_scale_job(dict(job)))
    return {"process_isolated": isolated, "jobs": rows}


def _aggregate(runs: Sequence[SweepRun]) -> Dict[str, Any]:
    """Fold repeated runs of one grid into stage/total statistics.

    Per-stage seconds and the compute total take the minimum across
    repeats; call counts must agree across repeats (the pipeline is
    deterministic) and peak RSS takes the maximum.
    """
    totals: List[float] = []
    walls: List[float] = []
    stage_runs: List[Dict[str, Dict[str, float]]] = []
    peak_rss: Optional[int] = None
    failures: List[str] = []
    for run in runs:
        total = 0.0
        stages: Dict[str, Dict[str, float]] = {}
        for outcome in run.outcomes:
            if outcome["status"] != "ok":
                failures.append(outcome["label"])
                continue
            total += outcome["compute_s"]
            rss = outcome.get("peak_rss_kb")
            if rss is not None and (peak_rss is None or rss > peak_rss):
                peak_rss = rss
            for name, stat in outcome["spans"].items():
                agg = stages.get(name)
                if agg is None:
                    agg = stages[name] = {"calls": 0, "seconds": 0.0}
                agg["calls"] += stat["calls"]
                agg["seconds"] += stat["seconds"]
        totals.append(total)
        walls.append(run.wall_s)
        stage_runs.append(stages)
    names = sorted({name for stages in stage_runs for name in stages})
    stages_min: Dict[str, Dict[str, float]] = {}
    for name in names:
        per_repeat = [s[name] for s in stage_runs if name in s]
        stages_min[name] = {
            "calls": max(int(s["calls"]) for s in per_repeat),
            "seconds": min(s["seconds"] for s in per_repeat),
        }
    return {
        "repeats": len(runs),
        "total_compute_s": min(totals) if totals else 0.0,
        "wall_s": min(walls) if walls else 0.0,
        "peak_rss_kb": peak_rss,
        "stages": stages_min,
        "failed_jobs": sorted(set(failures)),
        "per_job": [
            {
                # The pipeline mode is part of the label (and a field of
                # its own) so baseline gates key on it: a materialized
                # grid time never gates a streamed measurement.
                "label": f"{outcome['label']}/materialized",
                "pipeline": "materialized",
                "compute_s": min(
                    run.outcomes[i]["compute_s"] for run in runs
                ),
                "status": outcome["status"],
            }
            for i, outcome in enumerate(runs[0].outcomes)
        ],
    }


def run_perf(
    repeats: int = 2,
    include_reference: bool = True,
    jobs: Optional[Sequence[JobSpec]] = None,
    include_scale: bool = True,
    scale_jobs: Optional[Sequence[Dict[str, Any]]] = None,
    scale_fresh_process: bool = True,
) -> Dict[str, Any]:
    """Measure the pinned grid and return the ``BENCH_perf`` payload.

    The grid runs serially and uncached (the point is to measure
    compute, not the artifact store), ``repeats`` times on the fast
    path and — unless ``include_reference`` is false — ``repeats``
    times on the reference pipeline in the same process. Unless
    ``include_scale`` is false, the scale jobs then run once each in
    fresh subprocesses (:func:`run_scale_perf`) for the per-gate memory
    columns.

    Raises:
        ValueError: when ``repeats < 1``.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    grid = perf_grid() if jobs is None else None
    job_list = list(jobs) if jobs is not None else grid.expand()

    def _measure() -> List[SweepRun]:
        return [
            run_sweep(
                job_list,
                cache_dir=None,
                parallel=False,
                use_cache=False,
                worker=perf_worker,
            )
            for _ in range(repeats)
        ]

    if not fast_path_enabled():  # pragma: no cover - defensive
        raise RuntimeError(
            "run_perf must start on the fast path "
            "(unset REPRO_FASTPATH=0)"
        )
    # Warm-up: one unmeasured job so first-touch costs (module imports,
    # lazily built tables) do not land inside the first measured job's
    # spans and inflate small stages like pass:decompose.
    if job_list:
        perf_worker(job_list[0], None, False)
    fast = _aggregate(_measure())
    reference = None
    if include_reference:
        with reference_pipeline():
            reference = _aggregate(_measure())
    scale = None
    if include_scale:
        scale = run_scale_perf(
            jobs=scale_jobs, fresh_process=scale_fresh_process
        )
    return build_perf_payload(grid, repeats, fast, reference, scale)


def _streamed_overhead(scale: Optional[Dict[str, Any]]) -> Optional[float]:
    """Worst streamed/materialized elapsed ratio across scale kinds
    measured in both modes (the tentpole's 1.3x throughput target), or
    ``None`` when no kind has a complete pair."""
    if not scale:
        return None
    by_mode: Dict[Any, Dict[str, float]] = {}
    for row in scale.get("jobs", ()):
        if row.get("status") != "ok":
            continue
        key = (row["kind"], row["target_gates"], row["algorithm"])
        by_mode.setdefault(key, {})[row["pipeline"]] = row["elapsed_s"]
    ratios = [
        modes["streamed"] / modes["materialized"]
        for modes in by_mode.values()
        if "streamed" in modes
        and modes.get("materialized", 0) > 0
    ]
    return max(ratios) if ratios else None


def build_perf_payload(
    grid: Optional[SweepGrid],
    repeats: int,
    fast: Dict[str, Any],
    reference: Optional[Dict[str, Any]],
    scale: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the versioned ``BENCH_perf.json`` document."""
    speedup = None
    if (
        reference is not None
        and fast["total_compute_s"] > 0
        and not fast["failed_jobs"]
        and not reference["failed_jobs"]
    ):
        speedup = reference["total_compute_s"] / fast["total_compute_s"]
    return {
        "schema": PERF_SCHEMA,
        "pipeline_version": PIPELINE_VERSION,
        "created_unix": time.time(),
        "grid": grid.to_dict() if grid is not None else None,
        "repeats": repeats,
        "fast": fast,
        "reference": reference,
        "speedup": speedup,
        "scale": scale,
        "streamed_overhead": _streamed_overhead(scale),
    }


def validate_perf_payload(payload: Dict[str, Any]) -> List[str]:
    """Structural check of a ``BENCH_perf.json`` document.

    Returns a list of problems (empty when valid). Hand-rolled rather
    than a jsonschema dependency, like
    :func:`~repro.service.sweep.validate_sweep_payload`.
    """
    problems: List[str] = []

    def need(obj: Dict[str, Any], key: str, types, where: str) -> Any:
        if key not in obj:
            problems.append(f"{where}: missing key {key!r}")
            return None
        value = obj[key]
        if types is not None and not isinstance(value, types):
            problems.append(
                f"{where}.{key}: expected {types}, got "
                f"{type(value).__name__}"
            )
            return None
        return value

    def check_side(side: Dict[str, Any], where: str) -> None:
        need(side, "repeats", int, where)
        need(side, "total_compute_s", (int, float), where)
        need(side, "wall_s", (int, float), where)
        if "peak_rss_kb" not in side:
            problems.append(f"{where}: missing key 'peak_rss_kb'")
        need(side, "failed_jobs", list, where)
        stages = need(side, "stages", dict, where)
        for name, stat in (stages or {}).items():
            if not isinstance(stat, dict):
                problems.append(f"{where}.stages[{name!r}]: not an object")
                continue
            need(stat, "calls", int, f"{where}.stages[{name!r}]")
            need(
                stat, "seconds", (int, float), f"{where}.stages[{name!r}]"
            )
        per_job = need(side, "per_job", list, where)
        for i, job in enumerate(per_job or []):
            if not isinstance(job, dict):
                problems.append(f"{where}.per_job[{i}]: not an object")
                continue
            need(job, "label", str, f"{where}.per_job[{i}]")
            need(job, "compute_s", (int, float), f"{where}.per_job[{i}]")
            need(job, "status", str, f"{where}.per_job[{i}]")

    def check_scale(scale: Dict[str, Any], where: str) -> None:
        if "process_isolated" not in scale:
            problems.append(f"{where}: missing key 'process_isolated'")
        rows = need(scale, "jobs", list, where)
        for i, row in enumerate(rows or []):
            at = f"{where}.jobs[{i}]"
            if not isinstance(row, dict):
                problems.append(f"{at}: not an object")
                continue
            need(row, "label", str, at)
            status = need(row, "status", str, at)
            need(row, "pipeline", str, at)
            if status != "ok":
                continue
            need(row, "kind", str, at)
            need(row, "target_gates", int, at)
            need(row, "total_gates", int, at)
            need(row, "elapsed_s", (int, float), at)
            need(row, "schedule_length", int, at)
            if "peak_rss_kb" not in row:
                problems.append(f"{at}: missing key 'peak_rss_kb'")
            if "peak_rss_kb_per_mgate" not in row:
                problems.append(
                    f"{at}: missing key 'peak_rss_kb_per_mgate'"
                )
            if row.get("pipeline") not in ("streamed", "materialized"):
                problems.append(
                    f"{at}.pipeline: expected 'streamed' or "
                    f"'materialized', got {row.get('pipeline')!r}"
                )
            if row.get("pipeline", "") not in row.get("label", ""):
                problems.append(
                    f"{at}: label must embed the pipeline mode"
                )

    if not isinstance(payload, dict):
        return ["payload is not an object"]
    schema = payload.get("schema")
    if schema not in ACCEPTED_PERF_SCHEMAS:
        problems.append(
            f"schema: expected one of {ACCEPTED_PERF_SCHEMAS!r}, got "
            f"{schema!r}"
        )
    need(payload, "pipeline_version", str, "$")
    need(payload, "created_unix", (int, float), "$")
    need(payload, "repeats", int, "$")
    fast = need(payload, "fast", dict, "$")
    if fast is not None:
        check_side(fast, "fast")
    if "reference" not in payload:
        problems.append("$: missing key 'reference'")
    elif payload["reference"] is not None:
        if not isinstance(payload["reference"], dict):
            problems.append("$.reference: expected dict or null")
        else:
            check_side(payload["reference"], "reference")
    if "speedup" not in payload:
        problems.append("$: missing key 'speedup'")
    elif payload["speedup"] is not None and not isinstance(
        payload["speedup"], (int, float)
    ):
        problems.append("$.speedup: expected number or null")
    if schema == PERF_SCHEMA:
        if "scale" not in payload:
            problems.append("$: missing key 'scale'")
        elif payload["scale"] is not None:
            if not isinstance(payload["scale"], dict):
                problems.append("$.scale: expected dict or null")
            else:
                check_scale(payload["scale"], "scale")
    return problems


def compare_perf_payloads(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    floor_s: float = STAGE_FLOOR_S,
    memory_tolerance: float = DEFAULT_MEMORY_TOLERANCE,
) -> List[str]:
    """Regression check of ``current`` against a committed ``baseline``.

    The two documents generally come from different machines, so raw
    seconds are not comparable. Both documents carry a
    reference-pipeline measurement of the same pinned grid; the ratio
    of the two reference totals is a machine-speed scale, and baseline
    stage times are rescaled by it before comparison. A stage regresses
    when::

        current_stage > baseline_stage * scale * (1 + tolerance)

    Stages below ``floor_s`` seconds (after rescaling) are skipped as
    noise. Returns human-readable regression descriptions (empty =
    pass). Documents without reference measurements fall back to
    ``scale = 1`` (same-machine comparison).

    Scale-job **memory** is gated analogously: baseline
    ``peak_rss_kb_per_mgate`` is rescaled by the ratio of the two
    documents' fresh-interpreter RSS (pointer width and allocator
    differences move both the baseline interpreter and the workload
    roughly together) and compared per job, keyed by the full label.
    Labels embed the pipeline mode, so a streamed row only ever gates
    against a streamed baseline row — materialized memory (which grows
    without bound by design) can never mask or trip the streamed gate.
    Jobs present on one side only are skipped, so ``/1`` baselines
    simply don't exercise the memory gate.
    """
    problems: List[str] = []
    cur_fast = current.get("fast") or {}
    base_fast = baseline.get("fast") or {}
    cur_ref = current.get("reference") or {}
    base_ref = baseline.get("reference") or {}

    scale = 1.0
    cur_ref_total = cur_ref.get("total_compute_s") or 0.0
    base_ref_total = base_ref.get("total_compute_s") or 0.0
    if cur_ref_total > 0 and base_ref_total > 0:
        scale = cur_ref_total / base_ref_total

    def regressed(name: str, cur_s: float, base_s: float) -> None:
        budget = base_s * scale
        if budget < floor_s:
            return
        if cur_s > budget * (1.0 + tolerance):
            problems.append(
                f"{name}: {cur_s:.3f}s vs budget {budget:.3f}s "
                f"(baseline {base_s:.3f}s x machine scale {scale:.2f} "
                f"+ {tolerance:.0%})"
            )

    base_stages = base_fast.get("stages") or {}
    cur_stages = cur_fast.get("stages") or {}
    for name, stat in sorted(base_stages.items()):
        cur = cur_stages.get(name)
        if cur is None:
            # A stage present in the baseline but absent now usually
            # means the pipeline changed shape; not a perf regression.
            continue
        regressed(f"stage {name}", cur["seconds"], stat["seconds"])
    regressed(
        "total compute",
        cur_fast.get("total_compute_s") or 0.0,
        base_fast.get("total_compute_s") or 0.0,
    )

    # -- scale-job memory gate (schema /2 on both sides) ----------------
    cur_rows = {
        row["label"]: row
        for row in (current.get("scale") or {}).get("jobs", ())
        if row.get("status") == "ok"
    }
    base_rows = {
        row["label"]: row
        for row in (baseline.get("scale") or {}).get("jobs", ())
        if row.get("status") == "ok"
    }
    interp_pairs = [
        (cur_rows[label].get("interp_rss_kb"),
         base_rows[label].get("interp_rss_kb"))
        for label in cur_rows.keys() & base_rows.keys()
    ]
    interp_pairs = [
        (c, b) for c, b in interp_pairs if c and b
    ]
    mem_scale = 1.0
    if interp_pairs:
        mem_scale = sum(c for c, _ in interp_pairs) / sum(
            b for _, b in interp_pairs
        )
    for label in sorted(cur_rows.keys() & base_rows.keys()):
        cur_row, base_row = cur_rows[label], base_rows[label]
        # Keyed by the full label (pipeline mode included), and double-
        # checked: a mode mismatch means the documents disagree about
        # what the label measures, which must never gate silently.
        if cur_row.get("pipeline") != base_row.get("pipeline"):
            problems.append(
                f"scale {label}: pipeline mode mismatch "
                f"({cur_row.get('pipeline')!r} vs "
                f"{base_row.get('pipeline')!r}); refusing to compare"
            )
            continue
        cur_mem = cur_row.get("peak_rss_kb_per_mgate")
        base_mem = base_row.get("peak_rss_kb_per_mgate")
        if not cur_mem or not base_mem:
            continue
        budget = base_mem * mem_scale
        if cur_mem > budget * (1.0 + memory_tolerance):
            problems.append(
                f"scale {label}: {cur_mem:.0f} KiB/Mgate vs budget "
                f"{budget:.0f} KiB/Mgate (baseline {base_mem:.0f} "
                f"x memory scale {mem_scale:.2f} "
                f"+ {memory_tolerance:.0%})"
            )
    return problems
