"""The ``perf`` harness: pinned-grid pipeline benchmarking.

The scheduler fast path (:mod:`repro.fastpath`) promises wall-clock
improvements with bit-identical output. This module makes that claim
*measurable and regression-guarded*:

* a **pinned grid** — every benchmark x {rcp, lpfs} at one fixed
  Multi-SIMD(4,4) configuration — run serially, uncached, through the
  existing sweep runner (:func:`repro.service.sweep.run_sweep`);
* per-stage **wall time** aggregated from the pipeline's
  :mod:`~repro.instrument` spans, and process **peak RSS** sampled per
  job via ``resource.getrusage`` (no third-party profiler);
* the same grid measured on the **reference pipeline**
  (:func:`repro.fastpath.reference_pipeline`), yielding an honest
  fast-vs-reference speedup from one run on one machine;
* a schema-versioned report (``repro.bench-perf/1`` —
  ``BENCH_perf.json``) with a hand-rolled validator, mirroring the
  sweep report's conventions;
* a **baseline comparison** for CI: because the committed baseline was
  measured on different hardware, stage times are first rescaled by the
  ratio of the two *reference-pipeline* totals (the reference acts as a
  built-in machine-speed probe), then any stage slower than the scaled
  baseline by more than ``tolerance`` is flagged.

Timings take the **minimum across repeats** (the minimum is the
standard low-noise estimator for benchmark wall times); peak RSS takes
the maximum.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

from ..fastpath import fast_path_enabled, reference_pipeline
from .fingerprint import PIPELINE_VERSION
from .sweep import JobSpec, SweepGrid, SweepRun, execute_job, run_sweep

__all__ = [
    "PERF_SCHEMA",
    "STAGE_FLOOR_S",
    "perf_grid",
    "perf_worker",
    "run_perf",
    "build_perf_payload",
    "validate_perf_payload",
    "compare_perf_payloads",
]

#: Version tag of the ``BENCH_perf.json`` document layout.
PERF_SCHEMA = "repro.bench-perf/1"

#: Baseline stages faster than this (after machine rescaling) are too
#: noisy to gate on and are skipped by :func:`compare_perf_payloads`.
STAGE_FLOOR_S = 0.1

#: Allowed slowdown before a stage counts as a regression (25%).
DEFAULT_TOLERANCE = 0.25


def perf_grid() -> SweepGrid:
    """The pinned measurement grid.

    Every benchmark in the registry, both fine-grained schedulers, at
    one representative machine point — Multi-SIMD(k=4, d=4) with a
    4-qubit scratchpad, the paper's favoured configuration family. The
    grid is pinned so ``BENCH_perf.json`` documents are comparable
    across commits; changing it invalidates committed baselines.
    """
    from ..benchmarks import benchmark_names

    return SweepGrid(
        benchmarks=tuple(benchmark_names()),
        algorithms=("rcp", "lpfs"),
        ks=(4,),
        ds=(4,),
        local_memories=(4.0,),
    )


def _peak_rss_kb() -> Optional[int]:
    """Process high-water RSS in KiB (None where unsupported)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF)
    rss = usage.ru_maxrss
    if rss <= 0:  # pragma: no cover - defensive
        return None
    # Linux reports KiB; macOS reports bytes.
    import sys

    if sys.platform == "darwin":  # pragma: no cover - platform
        rss //= 1024
    return int(rss)


def perf_worker(
    job: JobSpec,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
) -> Dict[str, Any]:
    """:func:`~repro.service.sweep.execute_job` plus a peak-RSS sample.

    ``ru_maxrss`` is a process-lifetime high-water mark, so the sample
    is monotone across a serial run; the report keeps the maximum,
    which is exactly that watermark.
    """
    outcome = execute_job(job, cache_dir, use_cache)
    outcome["peak_rss_kb"] = _peak_rss_kb()
    return outcome


def _aggregate(runs: Sequence[SweepRun]) -> Dict[str, Any]:
    """Fold repeated runs of one grid into stage/total statistics.

    Per-stage seconds and the compute total take the minimum across
    repeats; call counts must agree across repeats (the pipeline is
    deterministic) and peak RSS takes the maximum.
    """
    totals: List[float] = []
    walls: List[float] = []
    stage_runs: List[Dict[str, Dict[str, float]]] = []
    peak_rss: Optional[int] = None
    failures: List[str] = []
    for run in runs:
        total = 0.0
        stages: Dict[str, Dict[str, float]] = {}
        for outcome in run.outcomes:
            if outcome["status"] != "ok":
                failures.append(outcome["label"])
                continue
            total += outcome["compute_s"]
            rss = outcome.get("peak_rss_kb")
            if rss is not None and (peak_rss is None or rss > peak_rss):
                peak_rss = rss
            for name, stat in outcome["spans"].items():
                agg = stages.get(name)
                if agg is None:
                    agg = stages[name] = {"calls": 0, "seconds": 0.0}
                agg["calls"] += stat["calls"]
                agg["seconds"] += stat["seconds"]
        totals.append(total)
        walls.append(run.wall_s)
        stage_runs.append(stages)
    names = sorted({name for stages in stage_runs for name in stages})
    stages_min: Dict[str, Dict[str, float]] = {}
    for name in names:
        per_repeat = [s[name] for s in stage_runs if name in s]
        stages_min[name] = {
            "calls": max(int(s["calls"]) for s in per_repeat),
            "seconds": min(s["seconds"] for s in per_repeat),
        }
    return {
        "repeats": len(runs),
        "total_compute_s": min(totals) if totals else 0.0,
        "wall_s": min(walls) if walls else 0.0,
        "peak_rss_kb": peak_rss,
        "stages": stages_min,
        "failed_jobs": sorted(set(failures)),
        "per_job": [
            {
                "label": outcome["label"],
                "compute_s": min(
                    run.outcomes[i]["compute_s"] for run in runs
                ),
                "status": outcome["status"],
            }
            for i, outcome in enumerate(runs[0].outcomes)
        ],
    }


def run_perf(
    repeats: int = 2,
    include_reference: bool = True,
    jobs: Optional[Sequence[JobSpec]] = None,
) -> Dict[str, Any]:
    """Measure the pinned grid and return the ``BENCH_perf`` payload.

    The grid runs serially and uncached (the point is to measure
    compute, not the artifact store), ``repeats`` times on the fast
    path and — unless ``include_reference`` is false — ``repeats``
    times on the reference pipeline in the same process.

    Raises:
        ValueError: when ``repeats < 1``.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    grid = perf_grid() if jobs is None else None
    job_list = list(jobs) if jobs is not None else grid.expand()

    def _measure() -> List[SweepRun]:
        return [
            run_sweep(
                job_list,
                cache_dir=None,
                parallel=False,
                use_cache=False,
                worker=perf_worker,
            )
            for _ in range(repeats)
        ]

    if not fast_path_enabled():  # pragma: no cover - defensive
        raise RuntimeError(
            "run_perf must start on the fast path "
            "(unset REPRO_FASTPATH=0)"
        )
    # Warm-up: one unmeasured job so first-touch costs (module imports,
    # lazily built tables) do not land inside the first measured job's
    # spans and inflate small stages like pass:decompose.
    if job_list:
        perf_worker(job_list[0], None, False)
    fast = _aggregate(_measure())
    reference = None
    if include_reference:
        with reference_pipeline():
            reference = _aggregate(_measure())
    return build_perf_payload(grid, repeats, fast, reference)


def build_perf_payload(
    grid: Optional[SweepGrid],
    repeats: int,
    fast: Dict[str, Any],
    reference: Optional[Dict[str, Any]],
) -> Dict[str, Any]:
    """Assemble the versioned ``BENCH_perf.json`` document."""
    speedup = None
    if (
        reference is not None
        and fast["total_compute_s"] > 0
        and not fast["failed_jobs"]
        and not reference["failed_jobs"]
    ):
        speedup = reference["total_compute_s"] / fast["total_compute_s"]
    return {
        "schema": PERF_SCHEMA,
        "pipeline_version": PIPELINE_VERSION,
        "created_unix": time.time(),
        "grid": grid.to_dict() if grid is not None else None,
        "repeats": repeats,
        "fast": fast,
        "reference": reference,
        "speedup": speedup,
    }


def validate_perf_payload(payload: Dict[str, Any]) -> List[str]:
    """Structural check of a ``BENCH_perf.json`` document.

    Returns a list of problems (empty when valid). Hand-rolled rather
    than a jsonschema dependency, like
    :func:`~repro.service.sweep.validate_sweep_payload`.
    """
    problems: List[str] = []

    def need(obj: Dict[str, Any], key: str, types, where: str) -> Any:
        if key not in obj:
            problems.append(f"{where}: missing key {key!r}")
            return None
        value = obj[key]
        if types is not None and not isinstance(value, types):
            problems.append(
                f"{where}.{key}: expected {types}, got "
                f"{type(value).__name__}"
            )
            return None
        return value

    def check_side(side: Dict[str, Any], where: str) -> None:
        need(side, "repeats", int, where)
        need(side, "total_compute_s", (int, float), where)
        need(side, "wall_s", (int, float), where)
        if "peak_rss_kb" not in side:
            problems.append(f"{where}: missing key 'peak_rss_kb'")
        need(side, "failed_jobs", list, where)
        stages = need(side, "stages", dict, where)
        for name, stat in (stages or {}).items():
            if not isinstance(stat, dict):
                problems.append(f"{where}.stages[{name!r}]: not an object")
                continue
            need(stat, "calls", int, f"{where}.stages[{name!r}]")
            need(
                stat, "seconds", (int, float), f"{where}.stages[{name!r}]"
            )
        per_job = need(side, "per_job", list, where)
        for i, job in enumerate(per_job or []):
            if not isinstance(job, dict):
                problems.append(f"{where}.per_job[{i}]: not an object")
                continue
            need(job, "label", str, f"{where}.per_job[{i}]")
            need(job, "compute_s", (int, float), f"{where}.per_job[{i}]")
            need(job, "status", str, f"{where}.per_job[{i}]")

    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("schema") != PERF_SCHEMA:
        problems.append(
            f"schema: expected {PERF_SCHEMA!r}, got "
            f"{payload.get('schema')!r}"
        )
    need(payload, "pipeline_version", str, "$")
    need(payload, "created_unix", (int, float), "$")
    need(payload, "repeats", int, "$")
    fast = need(payload, "fast", dict, "$")
    if fast is not None:
        check_side(fast, "fast")
    if "reference" not in payload:
        problems.append("$: missing key 'reference'")
    elif payload["reference"] is not None:
        if not isinstance(payload["reference"], dict):
            problems.append("$.reference: expected dict or null")
        else:
            check_side(payload["reference"], "reference")
    if "speedup" not in payload:
        problems.append("$: missing key 'speedup'")
    elif payload["speedup"] is not None and not isinstance(
        payload["speedup"], (int, float)
    ):
        problems.append("$.speedup: expected number or null")
    return problems


def compare_perf_payloads(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    floor_s: float = STAGE_FLOOR_S,
) -> List[str]:
    """Regression check of ``current`` against a committed ``baseline``.

    The two documents generally come from different machines, so raw
    seconds are not comparable. Both documents carry a
    reference-pipeline measurement of the same pinned grid; the ratio
    of the two reference totals is a machine-speed scale, and baseline
    stage times are rescaled by it before comparison. A stage regresses
    when::

        current_stage > baseline_stage * scale * (1 + tolerance)

    Stages below ``floor_s`` seconds (after rescaling) are skipped as
    noise. Returns human-readable regression descriptions (empty =
    pass). Documents without reference measurements fall back to
    ``scale = 1`` (same-machine comparison).
    """
    problems: List[str] = []
    cur_fast = current.get("fast") or {}
    base_fast = baseline.get("fast") or {}
    cur_ref = current.get("reference") or {}
    base_ref = baseline.get("reference") or {}

    scale = 1.0
    cur_ref_total = cur_ref.get("total_compute_s") or 0.0
    base_ref_total = base_ref.get("total_compute_s") or 0.0
    if cur_ref_total > 0 and base_ref_total > 0:
        scale = cur_ref_total / base_ref_total

    def regressed(name: str, cur_s: float, base_s: float) -> None:
        budget = base_s * scale
        if budget < floor_s:
            return
        if cur_s > budget * (1.0 + tolerance):
            problems.append(
                f"{name}: {cur_s:.3f}s vs budget {budget:.3f}s "
                f"(baseline {base_s:.3f}s x machine scale {scale:.2f} "
                f"+ {tolerance:.0%})"
            )

    base_stages = base_fast.get("stages") or {}
    cur_stages = cur_fast.get("stages") or {}
    for name, stat in sorted(base_stages.items()):
        cur = cur_stages.get(name)
        if cur is None:
            # A stage present in the baseline but absent now usually
            # means the pipeline changed shape; not a perf regression.
            continue
        regressed(f"stage {name}", cur["seconds"], stat["seconds"])
    regressed(
        "total compute",
        cur_fast.get("total_compute_s") or 0.0,
        base_fast.get("total_compute_s") or 0.0,
    )
    return problems
