"""repro.service — the compilation-service subsystem.

Three pillars on top of the core toolflow:

1. **content-addressed caching** (:mod:`.fingerprint`, :mod:`.store`,
   :mod:`.core`) — compile requests are canonically serialized and
   SHA-256 fingerprinted; results live in an in-memory LRU backed by an
   on-disk JSON artifact store shared across processes and runs;
2. **parallel batch sweeps** (:mod:`.sweep`) — configuration grids fan
   out over a process pool with per-job timeouts, crash retry, and
   graceful serial degradation, emitting a versioned
   ``BENCH_sweep.json`` report;
3. **instrumentation** (:mod:`repro.instrument`, re-exported here) —
   per-stage span timings recorded during every fresh compute and
   carried with the cached artifact.

Exposed on the CLI as ``python -m repro bench``.
"""

from ..instrument import SpanRecorder, record_spans, span
from .core import CompileService, ServiceEntry
from .perf import (
    ACCEPTED_PERF_SCHEMAS,
    PERF_SCHEMA,
    build_perf_payload,
    compare_perf_payloads,
    perf_grid,
    perf_worker,
    run_perf,
    run_scale_perf,
    scale_perf_jobs,
    validate_perf_payload,
)
from .fingerprint import (
    PIPELINE_VERSION,
    canonical_program,
    canonical_request,
    fingerprint_program,
    fingerprint_request,
)
from .stream_io import (
    STREAM_SCHEMA,
    execute_schedule_stream,
    inflate_schedule_stream,
    read_schedule_stream,
    validate_schedule_stream,
    write_schedule_stream,
)
from .store import (
    ARTIFACT_SCHEMA,
    STATS_SNAPSHOT_SCHEMA,
    ArtifactStore,
    CacheStats,
    LRUCache,
    default_cache_dir,
    inspect_store,
    read_stats_snapshot,
    write_stats_snapshot,
)
from .sweep import (
    ACCEPTED_SCHEMAS,
    SWEEP_SCHEMA,
    JobSpec,
    SweepGrid,
    SweepRun,
    build_sweep_payload,
    execute_job,
    run_sweep,
    validate_sweep_payload,
)

__all__ = [
    "ACCEPTED_SCHEMAS",
    "ARTIFACT_SCHEMA",
    "ArtifactStore",
    "CacheStats",
    "CompileService",
    "JobSpec",
    "LRUCache",
    "PERF_SCHEMA",
    "PIPELINE_VERSION",
    "STATS_SNAPSHOT_SCHEMA",
    "STREAM_SCHEMA",
    "SWEEP_SCHEMA",
    "ServiceEntry",
    "SpanRecorder",
    "SweepGrid",
    "SweepRun",
    "ACCEPTED_PERF_SCHEMAS",
    "build_perf_payload",
    "build_sweep_payload",
    "canonical_program",
    "canonical_request",
    "compare_perf_payloads",
    "default_cache_dir",
    "execute_job",
    "execute_schedule_stream",
    "inflate_schedule_stream",
    "fingerprint_program",
    "fingerprint_request",
    "inspect_store",
    "perf_grid",
    "perf_worker",
    "read_schedule_stream",
    "read_stats_snapshot",
    "record_spans",
    "run_perf",
    "run_scale_perf",
    "scale_perf_jobs",
    "run_sweep",
    "span",
    "validate_perf_payload",
    "validate_schedule_stream",
    "write_schedule_stream",
    "write_stats_snapshot",
]
