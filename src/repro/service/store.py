"""On-disk artifact store and the in-memory LRU that fronts it.

Artifacts are JSON documents keyed by request fingerprint (see
:mod:`.fingerprint`), sharded into two-character prefix directories
(``<root>/ab/abcdef....json``) so a large store never puts tens of
thousands of files in one directory. Writes go through a temp file +
:func:`os.replace` so concurrent sweep workers racing to store the same
fingerprint can never leave a torn artifact.

Every artifact embeds the pipeline version it was produced under;
:meth:`ArtifactStore.load` refuses (and deletes) artifacts from any
other version — stale results can never be served after a behavioural
change.
"""

from __future__ import annotations

import gzip
import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from ..core.canonical import PIPELINE_VERSION

__all__ = [
    "ARTIFACT_SCHEMA",
    "STATS_SNAPSHOT_SCHEMA",
    "ArtifactStore",
    "CacheStats",
    "LRUCache",
    "default_cache_dir",
    "inspect_store",
    "read_stats_snapshot",
    "write_stats_snapshot",
]

#: Version tag of the artifact JSON layout itself.
ARTIFACT_SCHEMA = "repro.artifact/1"

#: Version tag of the persisted cache-counter snapshot layout.
STATS_SNAPSHOT_SCHEMA = "repro.cache-stats/1"

#: Snapshot filename inside a cache directory.
_STATS_SNAPSHOT_NAME = "stats.json"


def default_cache_dir() -> Path:
    """The shared artifact directory: ``$REPRO_CACHE_DIR`` if set, else
    ``.repro-cache`` under the current working directory. Used by both
    the ``repro bench`` CLI and the figure benches so they share
    artifacts."""
    env = os.environ.get("REPRO_CACHE_DIR")
    return Path(env) if env else Path(".repro-cache")


@dataclass
class CacheStats:
    """Hit/miss/evict counters for one cache instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    stores: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when no lookups yet)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "stores": self.stores,
            "hit_rate": self.hit_rate,
        }


@dataclass
class LRUCache:
    """A bounded least-recently-used mapping (fingerprint -> object).

    Thread-safe: every operation holds an internal lock, so concurrent
    readers/writers (e.g. the server's event loop racing a drain-time
    stats flush, or threaded test harnesses) can never observe a
    half-applied recency update or evict the same entry twice. The
    lock is re-entrant so ``stats`` callbacks can safely re-enter.
    """

    max_entries: int = 128
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: "OrderedDict[str, Any]" = field(default_factory=OrderedDict)
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def get(self, key: str) -> Optional[Any]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def pop(self, key: str) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries


class ArtifactStore:
    """Content-addressed JSON artifact storage on disk.

    Args:
        root: store directory (created lazily on first save).
        pipeline_version: artifacts saved/accepted under this version;
            defaults to the package's current
            :data:`~repro.service.fingerprint.PIPELINE_VERSION`.
    """

    def __init__(
        self,
        root: Path,
        pipeline_version: str = PIPELINE_VERSION,
        stats: Optional[CacheStats] = None,
    ) -> None:
        self.root = Path(root)
        self.pipeline_version = pipeline_version
        self.stats = stats if stats is not None else CacheStats()

    def _path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def _sched_path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.sched.json.gz"

    def save_schedules(
        self, fingerprint: str, schedules: Dict[str, Any]
    ) -> Path:
        """Persist schedule bodies as a gzip sidecar to the artifact.

        Kept out of the main JSON so metrics-only loads stay cheap; the
        sidecar is read only when a consumer (the engine) needs live
        schedules for a disk-hit result. Same temp-file + replace
        discipline as :meth:`save`.
        """
        path = self._sched_path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "schema": ARTIFACT_SCHEMA,
            "pipeline_version": self.pipeline_version,
            "fingerprint": fingerprint,
            "schedules": schedules,
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with gzip.open(tmp, "wt", encoding="utf-8") as fh:
            fh.write(json.dumps(doc, separators=(",", ":")))
        os.replace(tmp, path)
        return path

    def load_schedules(
        self, fingerprint: str
    ) -> Optional[Dict[str, Any]]:
        """The schedule sidecar, or ``None`` when absent / stale.

        A stale or corrupt sidecar is deleted without touching the main
        artifact — the caller falls back to recompiling, never to
        serving wrong schedules.
        """
        path = self._sched_path(fingerprint)
        try:
            with gzip.open(path, "rt", encoding="utf-8") as fh:
                doc = json.loads(fh.read())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, EOFError):
            try:
                path.unlink()
            except FileNotFoundError:
                pass
            return None
        if (
            doc.get("schema") != ARTIFACT_SCHEMA
            or doc.get("pipeline_version") != self.pipeline_version
        ):
            try:
                path.unlink()
            except FileNotFoundError:
                pass
            return None
        return doc["schedules"]

    def save(self, fingerprint: str, payload: Dict[str, Any]) -> Path:
        """Atomically persist ``payload`` under ``fingerprint``.

        The payload is wrapped in an envelope recording the artifact
        schema and pipeline version.
        """
        path = self._path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "schema": ARTIFACT_SCHEMA,
            "pipeline_version": self.pipeline_version,
            "fingerprint": fingerprint,
            "payload": payload,
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(doc, separators=(",", ":")))
        os.replace(tmp, path)
        self.stats.stores += 1
        return path

    def load(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The stored payload, or ``None`` on miss / stale version.

        Artifacts whose envelope doesn't match the current artifact
        schema and pipeline version are deleted (explicit invalidation
        on code-version change) and counted in
        ``stats.invalidations``.
        """
        path = self._path(fingerprint)
        try:
            doc = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            self.invalidate(fingerprint)
            return None
        if (
            doc.get("schema") != ARTIFACT_SCHEMA
            or doc.get("pipeline_version") != self.pipeline_version
        ):
            self.invalidate(fingerprint)
            return None
        return doc["payload"]

    def invalidate(self, fingerprint: str) -> None:
        """Delete one artifact and its schedule sidecar (no-op when
        absent)."""
        try:
            self._path(fingerprint).unlink()
            self.stats.invalidations += 1
        except FileNotFoundError:
            pass
        try:
            self._sched_path(fingerprint).unlink()
        except FileNotFoundError:
            pass

    def fingerprints(self) -> Iterator[str]:
        """Iterate the fingerprints currently on disk (sorted)."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("??/*.json")):
            yield path.stem

    def clear(self) -> int:
        """Delete every artifact; returns the number removed."""
        removed = 0
        for fp in list(self.fingerprints()):
            self.invalidate(fp)
            removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.fingerprints())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArtifactStore({str(self.root)!r})"


# -- operator surfaces --------------------------------------------------


def write_stats_snapshot(
    root: Path,
    stats: CacheStats,
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Atomically persist a counter snapshot into a cache directory.

    The server writes one on graceful drain (and ``repro bench`` could
    do the same) so ``repro cache-stats`` can report the hit/miss
    profile of the last run without talking to a live process.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    path = root / _STATS_SNAPSHOT_NAME
    doc = {
        "schema": STATS_SNAPSHOT_SCHEMA,
        "pipeline_version": PIPELINE_VERSION,
        "written_unix": time.time(),
        "stats": stats.to_dict(),
        **({"extra": extra} if extra else {}),
    }
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(doc, indent=2))
    os.replace(tmp, path)
    return path


def read_stats_snapshot(root: Path) -> Optional[Dict[str, Any]]:
    """The last persisted counter snapshot, or ``None``.

    Unreadable or wrong-schema snapshots read as ``None`` (the verb
    degrades to disk-only inspection rather than failing).
    """
    path = Path(root) / _STATS_SNAPSHOT_NAME
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(doc, dict) or doc.get("schema") != STATS_SNAPSHOT_SCHEMA:
        return None
    return doc


def inspect_store(
    root: Path,
    pipeline_version: str = PIPELINE_VERSION,
) -> Dict[str, Any]:
    """Walk a sharded artifact store and summarize what is on disk.

    Returns a JSON-safe report: artifact/shard counts, total bytes,
    artifacts grouped by pipeline version, and how many are stale
    (i.e. would be invalidated on their next load). Missing or empty
    directories report zero artifacts rather than erroring, so the
    ``cache-stats`` verb is safe to point at a fresh checkout.
    """
    root = Path(root)
    report: Dict[str, Any] = {
        "root": str(root),
        "exists": root.is_dir(),
        "pipeline_version": pipeline_version,
        "artifacts": 0,
        "stale_artifacts": 0,
        "unreadable_artifacts": 0,
        "total_bytes": 0,
        "shards": 0,
        "by_pipeline_version": {},
        "snapshot": read_stats_snapshot(root),
    }
    if not root.is_dir():
        return report
    by_version: Dict[str, int] = {}
    shards = set()
    for path in sorted(root.glob("??/*.json")):
        report["artifacts"] += 1
        shards.add(path.parent.name)
        try:
            report["total_bytes"] += path.stat().st_size
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            report["unreadable_artifacts"] += 1
            report["stale_artifacts"] += 1
            continue
        version = str(doc.get("pipeline_version"))
        by_version[version] = by_version.get(version, 0) + 1
        if (
            doc.get("schema") != ARTIFACT_SCHEMA
            or doc.get("pipeline_version") != pipeline_version
        ):
            report["stale_artifacts"] += 1
    report["shards"] = len(shards)
    report["by_pipeline_version"] = dict(sorted(by_version.items()))
    return report
