"""Out-of-core schedule export: the ``repro.schedule-stream/1`` format.

A streamed schedule at paper scale (10^7 gates, ~7*10^6 epochs) cannot
round-trip through :func:`repro.sched.report.schedule_to_dict` — that
is one JSON document holding every statement and timestep at once. The
stream format is JSON *Lines*, written epoch-at-a-time as movement
derivation retires each epoch and readable epoch-at-a-time by the
execution engine, so neither side ever holds more than one epoch:

* line 1 — header: schema, module/algorithm/k/d, totals, and the
  interned ``qubits`` and ``gates`` name tables (every later line
  refers to ids);
* one line per timestep: ``{"t": .., "moves": [[qid, src, dst, kind],
  ..], "regions": [[r, [[node, gid, [qid, ..]], ..]], ..]}`` — the
  movement epoch *preceding* the timestep, then the region contents
  (an op entry gains a 4th element when it carries an angle). Locations
  are ``["global"]``, ``["region", r]`` or ``["local", r]``;
* footer: the :class:`~repro.sched.comm.CommStats` dict (same shape as
  the single-document export) and the timestep count, which doubles as
  a truncation check.

Files ending in ``.gz`` are transparently gzip-compressed (the CI
artifact form). Small files can be inflated back to a boxed
:class:`~repro.sched.types.Schedule` for the differential battery.
"""

from __future__ import annotations

import gzip
import json
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..arch.machine import MultiSIMD
from ..core.dag import DependenceDAG
from ..core.operation import Operation
from ..core.qubits import Qubit
from ..sched.comm import CommStats
from ..sched.report import _comm_from_dict, _comm_to_dict, _qubit_name
from ..sched.stream import (
    StreamColumns,
    StreamedSchedule,
    derive_movement_stream,
)
from ..sched.types import Move, Schedule

__all__ = [
    "STREAM_SCHEMA",
    "write_schedule_stream",
    "read_schedule_stream",
    "stream_ops",
    "validate_schedule_stream",
    "inflate_schedule_stream",
    "execute_schedule_stream",
]

STREAM_SCHEMA = "repro.schedule-stream/1"


def _open(path: str, mode: str):
    if path.endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _loc_to_json(loc: tuple) -> List[Any]:
    return list(loc)


def _loc_from_json(loc: List[Any]) -> tuple:
    return tuple(loc)


def write_schedule_stream(
    path: str,
    cols: StreamColumns,
    ssched: StreamedSchedule,
    machine: MultiSIMD,
    module: str = "",
) -> CommStats:
    """Derive movement for ``ssched`` and export it epoch-at-a-time.

    Returns the communication profile (also written to the footer).
    Memory is bounded by one epoch plus the derivation state — the file
    is written as the epochs retire, never assembled.
    """
    qubit_ids = {id(q): i for i, q in enumerate(cols.qubits)}
    angles = cols.angles
    op_q, op_off = cols.op_q, cols.op_off
    gate_ids = cols.gate_ids

    with _open(path, "w") as fh:
        header = {
            "schema": STREAM_SCHEMA,
            "module": module,
            "algorithm": ssched.algorithm,
            "k": ssched.k,
            "d": ssched.d,
            "op_count": ssched.op_count,
            "length": ssched.length,
            "max_width": ssched.max_width,
            "qubits": [_qubit_name(q) for q in cols.qubits],
            "gates": list(cols.gate_names),
        }
        fh.write(json.dumps(header, separators=(",", ":")))
        fh.write("\n")

        def sink(
            t: int,
            epoch: List[Move],
            regions: List[Tuple[int, List[int]]],
        ) -> None:
            moves = [
                [
                    qubit_ids[id(m.qubit)],
                    _loc_to_json(m.src),
                    _loc_to_json(m.dst),
                    m.kind,
                ]
                for m in epoch
            ]
            regs = []
            for r, nodes in regions:
                ops = []
                for node in nodes:
                    entry: List[Any] = [
                        node,
                        gate_ids[node],
                        list(op_q[op_off[node] : op_off[node + 1]]),
                    ]
                    angle = angles.get(node)
                    if angle is not None:
                        entry.append(angle)
                    ops.append(entry)
                regs.append([r, ops])
            fh.write(
                json.dumps(
                    {"t": t, "moves": moves, "regions": regs},
                    separators=(",", ":"),
                )
            )
            fh.write("\n")

        stats = derive_movement_stream(cols, ssched, machine, sink=sink)
        footer = {
            "comm": _comm_to_dict(stats),
            "timesteps": ssched.length,
        }
        fh.write(json.dumps(footer, separators=(",", ":")))
        fh.write("\n")
    return stats


class StreamEpoch:
    """One decoded timestep: the preceding movement epoch plus region
    contents, with ids resolved to boxed objects."""

    __slots__ = ("t", "moves", "regions")

    def __init__(
        self,
        t: int,
        moves: List[Move],
        regions: List[Tuple[int, List[Tuple[int, Operation]]]],
    ):
        self.t = t
        self.moves = moves
        self.regions = regions


def read_schedule_stream(
    path: str,
) -> Tuple[Dict[str, Any], Iterator[StreamEpoch], List[Optional[CommStats]]]:
    """Open a stream export: ``(header, epoch iterator, footer box)``.

    The iterator yields :class:`StreamEpoch` one line at a time; after
    it is exhausted, ``footer_box[0]`` holds the footer's
    :class:`CommStats` (None until then, and a missing footer raises —
    a truncated file never passes silently).
    """
    fh = _open(path, "r")
    header = json.loads(fh.readline())
    if header.get("schema") != STREAM_SCHEMA:
        fh.close()
        raise ValueError(
            f"not a {STREAM_SCHEMA} file: {header.get('schema')!r}"
        )
    from ..sched.report import _parse_qubit

    qubits = [_parse_qubit(name) for name in header["qubits"]]
    gates = header["gates"]
    footer_box: List[Optional[CommStats]] = [None]

    def epochs() -> Iterator[StreamEpoch]:
        try:
            expected = header["length"]
            seen = 0
            for line in fh:
                data = json.loads(line)
                if "comm" in data:
                    if data.get("timesteps") != seen:
                        raise ValueError(
                            f"stream footer says {data.get('timesteps')} "
                            f"timesteps, read {seen}"
                        )
                    footer_box[0] = _comm_from_dict(data["comm"])
                    return
                moves = [
                    Move(
                        qubits[qid],
                        _loc_from_json(src),
                        _loc_from_json(dst),
                        kind,
                    )
                    for qid, src, dst, kind in data["moves"]
                ]
                regions: List[Tuple[int, List[Tuple[int, Operation]]]] = []
                for r, ops in data["regions"]:
                    boxed = [
                        (
                            entry[0],
                            Operation(
                                gates[entry[1]],
                                tuple(qubits[q] for q in entry[2]),
                                entry[3] if len(entry) > 3 else None,
                            ),
                        )
                        for entry in ops
                    ]
                    regions.append((r, boxed))
                yield StreamEpoch(data["t"], moves, regions)
                seen += 1
            raise ValueError(
                f"stream truncated: no footer after {seen}/{expected} "
                "timesteps"
            )
        finally:
            fh.close()

    return header, epochs(), footer_box


def stream_ops(path: str) -> Tuple[Dict[str, Any], Iterator[Operation]]:
    """Replay-order operations of a stream export, one line at a time.

    Yields each scheduled op in execution order — timestep-major,
    region index ascending, insertion order within a region (the order
    :func:`execute_schedule_stream` and the reversible-simulator replay
    both walk). Returns ``(header, op iterator)``; the iterator still
    enforces the footer/truncation checks of
    :func:`read_schedule_stream`, so a clipped file raises instead of
    silently verifying a prefix.
    """
    header, epochs, _footer = read_schedule_stream(path)

    def ops() -> Iterator[Operation]:
        for epoch in epochs:
            for _r, boxed in epoch.regions:
                for _node, op in boxed:
                    yield op

    return header, ops()


def validate_schedule_stream(path: str) -> Dict[str, Any]:
    """Fully scan a stream export and return its summary (header fields
    plus counted totals). Raises on schema mismatch, truncation, or an
    op-count/timestep disagreement."""
    header, epochs, footer_box = read_schedule_stream(path)
    op_count = 0
    timesteps = 0
    moves = 0
    for epoch in epochs:
        if epoch.t != timesteps:
            raise ValueError(
                f"epoch line out of order: t={epoch.t} at position "
                f"{timesteps}"
            )
        timesteps += 1
        moves += len(epoch.moves)
        for _, ops in epoch.regions:
            op_count += len(ops)
    if timesteps != header["length"]:
        raise ValueError(
            f"header says length={header['length']}, read {timesteps}"
        )
    if op_count != header["op_count"]:
        raise ValueError(
            f"header says op_count={header['op_count']}, read {op_count}"
        )
    stats = footer_box[0]
    assert stats is not None
    return {
        "schema": header["schema"],
        "module": header["module"],
        "algorithm": header["algorithm"],
        "k": header["k"],
        "d": header["d"],
        "op_count": op_count,
        "timesteps": timesteps,
        "moves": moves,
        "runtime": stats.runtime,
    }


def execute_schedule_stream(
    path: str,
    machine: MultiSIMD,
    config=None,
    sample_every: int = 1,
) -> Tuple[Dict[str, Any], Any, Optional[CommStats]]:
    """Run the engine directly over a stream export.

    Feeds :func:`repro.engine.executor.run_schedule_stream` one decoded
    epoch at a time — the schedule is never inflated, so a 10^7-gate
    export executes in bounded memory. Returns ``(header, EngineResult,
    CommStats)``; the stats come from the footer and are therefore the
    compile-time communication profile, not re-derived.
    """
    from ..engine.executor import run_schedule_stream

    header, epochs, footer_box = read_schedule_stream(path)

    def adapt():
        for epoch in epochs:
            yield epoch.moves, [
                (r, ops[0][1].gate, len(ops))
                for r, ops in epoch.regions
                if ops
            ]

    result = run_schedule_stream(
        adapt(),
        header["k"],
        machine,
        config=config,
        scope=header.get("module") or "stream",
        sample_every=sample_every,
    )
    return header, result, footer_box[0]


def inflate_schedule_stream(path: str) -> Tuple[Schedule, CommStats]:
    """Rebuild a boxed :class:`Schedule` (with moves) from a stream
    export — small files only; this rematerializes everything."""
    header, epochs, footer_box = read_schedule_stream(path)
    n = header["op_count"]
    statements: List[Optional[Operation]] = [None] * n
    placements: List[Tuple[List[Move], List[Tuple[int, List[int]]]]] = []
    for epoch in epochs:
        regions: List[Tuple[int, List[int]]] = []
        for r, ops in epoch.regions:
            nodes = []
            for node, op in ops:
                statements[node] = op
                nodes.append(node)
            regions.append((r, nodes))
        placements.append((epoch.moves, regions))
    missing = sum(1 for s in statements if s is None)
    if missing:
        raise ValueError(f"stream schedules only {n - missing}/{n} ops")
    dag = DependenceDAG(statements)
    sched = Schedule(
        dag, k=header["k"], d=header["d"], algorithm=header["algorithm"]
    )
    for moves, regions in placements:
        ts = sched.append_timestep()
        ts.moves = moves
        for r, nodes in regions:
            ts.regions[r].extend(nodes)
    stats = footer_box[0]
    assert stats is not None
    return sched, stats
