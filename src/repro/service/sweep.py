"""Parallel batch sweeps over benchmark x configuration grids.

The paper's evaluation is a family of grids — (benchmark x scheduler x
k x d x FTh x local-memory) — and this module is the execution layer
for them: expand a :class:`SweepGrid` into :class:`JobSpec` jobs, fan
them out over a :class:`~concurrent.futures.ProcessPoolExecutor`
(sharing one on-disk artifact store), and collect a deterministic,
schema-versioned report (``BENCH_sweep.json``).

Failure semantics of :func:`run_sweep`:

* **per-job timeout** — a job that exceeds ``timeout`` seconds is
  reported with status ``"timeout"`` and the sweep continues;
* **worker crash** — if the process pool breaks (a worker died), every
  job still outstanding is retried exactly once in a fresh pool;
* **graceful degradation** — if the pool breaks again, the remaining
  jobs run serially in-process (``degraded_to_serial`` is set on the
  run);
* results are keyed by job index throughout, so the output order is
  the grid expansion order regardless of completion order.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..analysis import AnalysisError
from ..arch.machine import MultiSIMD, capacity_label, parse_capacity
from ..benchmarks import BENCHMARKS, benchmark_names
from ..core.module import ProgramValidationError
from ..core.qasm import QasmSyntaxError
from ..core.scaffold import ScaffoldSyntaxError
from ..sched.replay import ReplayError
from ..sched.types import ScheduleError
from ..toolflow import SchedulerConfig
from .core import CompileService
from .fingerprint import PIPELINE_VERSION

__all__ = [
    "ACCEPTED_SCHEMAS",
    "SWEEP_SCHEMA",
    "JobSpec",
    "SweepGrid",
    "SweepRun",
    "execute_job",
    "run_sweep",
    "build_sweep_payload",
    "validate_sweep_payload",
]

#: Version tag of the ``BENCH_sweep.json`` document layout. ``/2``
#: added the opt-in engine columns (``engine_*`` metrics, ``engine`` /
#: ``epr_rate`` job fields); ``/3`` added the multi-core axis
#: (``topology`` / ``cores`` / ``link_bw`` job fields and the
#: ``multicore_*`` metric columns). Older documents remain valid.
SWEEP_SCHEMA = "repro.bench-sweep/3"

#: Schema tags :func:`validate_sweep_payload` accepts.
ACCEPTED_SCHEMAS = (
    "repro.bench-sweep/1",
    "repro.bench-sweep/2",
    SWEEP_SCHEMA,
)

#: Scalar metrics exported per job (attribute names on CompileResult).
_METRIC_FIELDS = (
    "total_gates",
    "critical_path",
    "schedule_length",
    "runtime",
    "naive_runtime",
    "parallel_speedup",
    "cp_speedup",
    "comm_aware_speedup",
    "flattened_percent",
)

#: Engine metrics added per job when ``engine=True`` (schema ``/2``).
_ENGINE_METRIC_FIELDS = (
    "engine_runtime",
    "engine_analytic_runtime",
    "engine_stall_cycles",
    "engine_stall_epr",
    "engine_stall_bandwidth",
    "engine_stall_fault",
    "engine_utilization",
    "engine_teleport_rounds",
    "engine_faults",
)

#: Multi-core metrics added per job when ``topology`` is set
#: (schema ``/3``; attribute names on ``MulticoreCompileResult``).
_MULTICORE_METRIC_FIELDS = (
    "multicore_cores",
    "multicore_makespan",
    "multicore_intercore_cycles",
    "multicore_intercore_teleports",
    "multicore_intercore_pairs",
    "multicore_cut_weight",
    "multicore_max_hops",
)


@dataclass(frozen=True)
class JobSpec:
    """One point of a sweep grid.

    ``fth=None`` means "use the benchmark registry's per-benchmark
    flattening threshold". ``engine=True`` additionally executes the
    compiled schedules on the discrete-event engine
    (:mod:`repro.engine`) at EPR generation rate ``epr_rate``
    (``None`` = infinite), adding the ``engine_*`` metric columns.

    ``topology`` (schema ``/3``) routes the job through the multi-core
    pipeline (:mod:`repro.multicore`): ``cores`` cores of
    ``Multi-SIMD(k,d)`` each — ``k`` is *per core* — joined by the
    named interconnect with ``link_bw`` EPR pairs per teleport round
    per link, adding the ``multicore_*`` metric columns. With
    ``engine=True``, ``epr_rate`` throttles both the per-core pools
    and the interconnect links.
    """

    benchmark: str
    algorithm: str = "lpfs"
    k: int = 4
    d: Optional[int] = None
    local_memory: Optional[float] = None
    fth: Optional[int] = None
    engine: bool = False
    epr_rate: Optional[float] = None
    topology: Optional[str] = None
    cores: int = 1
    link_bw: float = 1.0

    @property
    def label(self) -> str:
        d = "inf" if self.d is None else str(self.d)
        parts = [
            self.benchmark,
            self.algorithm,
            f"k={self.k}",
            f"d={d}",
            f"local={capacity_label(self.local_memory)}",
        ]
        if self.fth is not None:
            parts.append(f"fth={self.fth}")
        if self.topology is not None:
            parts.append(
                f"{self.topology}x{self.cores}(bw={self.link_bw:g})"
            )
        if self.engine:
            rate = (
                "inf" if self.epr_rate is None else f"{self.epr_rate:g}"
            )
            parts.append(f"engine(rate={rate})")
        return " ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "benchmark": self.benchmark,
            "algorithm": self.algorithm,
            "k": self.k,
            "d": self.d,
            "local_memory": capacity_label(self.local_memory),
            "fth": self.fth,
        }
        if self.topology is not None:
            out["topology"] = self.topology
            out["cores"] = self.cores
            out["link_bw"] = self.link_bw
        if self.engine:
            out["engine"] = True
            out["epr_rate"] = self.epr_rate
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        return cls(
            benchmark=data["benchmark"],
            algorithm=data.get("algorithm", "lpfs"),
            k=data.get("k", 4),
            d=data.get("d"),
            local_memory=parse_capacity(data.get("local_memory")),
            fth=data.get("fth"),
            engine=bool(data.get("engine", False)),
            epr_rate=data.get("epr_rate"),
            topology=data.get("topology"),
            cores=data.get("cores", 1),
            link_bw=data.get("link_bw", 1.0),
        )


@dataclass(frozen=True)
class SweepGrid:
    """A cross-product sweep specification."""

    benchmarks: Tuple[str, ...]
    algorithms: Tuple[str, ...] = ("lpfs",)
    ks: Tuple[int, ...] = (4,)
    ds: Tuple[Optional[int], ...] = (None,)
    local_memories: Tuple[Optional[float], ...] = (None,)
    fth: Optional[int] = None
    engine: bool = False
    epr_rate: Optional[float] = None
    topologies: Tuple[Optional[str], ...] = (None,)
    cores: Tuple[int, ...] = (1,)
    link_bw: float = 1.0

    def __post_init__(self) -> None:
        unknown = [b for b in self.benchmarks if b not in BENCHMARKS]
        if unknown:
            raise ValueError(
                f"unknown benchmark(s) {unknown} "
                f"(have {', '.join(benchmark_names())})"
            )
        bad = [
            a
            for a in self.algorithms
            if a not in ("sequential", "rcp", "lpfs")
        ]
        if bad:
            raise ValueError(f"unknown scheduler(s) {bad}")
        if not self.benchmarks:
            raise ValueError("grid selects no benchmarks")
        if any(k < 1 for k in self.ks):
            raise ValueError("k must be >= 1")
        if any(d is not None and d < 1 for d in self.ds):
            raise ValueError("d must be >= 1 or 'inf'")
        if self.epr_rate is not None and self.epr_rate <= 0:
            raise ValueError("epr_rate must be positive or 'inf'")
        from ..multicore.topology import TOPOLOGIES

        bad_topo = [
            t
            for t in self.topologies
            if t is not None and t not in TOPOLOGIES
        ]
        if bad_topo:
            raise ValueError(
                f"unknown topology(ies) {bad_topo} "
                f"(have {', '.join(TOPOLOGIES)})"
            )
        if any(c < 1 for c in self.cores):
            raise ValueError("cores must be >= 1")
        if not self.link_bw > 0:
            raise ValueError("link_bw must be positive")

    @classmethod
    def parse(
        cls,
        benchmarks: str = "all",
        schedulers: str = "lpfs",
        ks: str = "4",
        ds: str = "inf",
        local_memories: str = "none",
        fth: Optional[int] = None,
        engine: bool = False,
        epr_rate: Optional[str] = None,
        topologies: str = "none",
        cores: str = "1",
        link_bw: str = "1",
    ) -> "SweepGrid":
        """Build a grid from comma-separated CLI spellings.

        ``benchmarks`` is ``"all"`` or a comma-separated subset of the
        registry; ``ds`` entries are integers or ``"inf"``;
        ``local_memories`` entries follow
        :func:`~repro.arch.machine.parse_capacity`; ``epr_rate`` is a
        number or ``"inf"`` (only meaningful with ``engine=True``);
        ``topologies`` is ``"none"`` (single-core) or a comma-separated
        subset of :data:`repro.multicore.TOPOLOGIES` (``none`` mixes in
        as the single-core point); ``cores`` lists core counts (only
        meaningful with a topology); ``link_bw`` is one positive
        number shared by every multi-core job.

        Raises:
            ValueError: on any unknown or malformed entry.
        """
        keys = (
            tuple(benchmark_names())
            if benchmarks.strip() == "all"
            else tuple(b.strip() for b in benchmarks.split(",") if b.strip())
        )

        def _ints(text: str) -> Tuple[int, ...]:
            try:
                return tuple(int(v) for v in text.split(",") if v.strip())
            except ValueError:
                raise ValueError(f"bad integer list {text!r}") from None

        def _d(text: str) -> Optional[int]:
            if text.strip() in ("inf", "none"):
                return None
            try:
                return int(text)
            except ValueError:
                raise ValueError(f"bad d value {text!r}") from None

        rate: Optional[float] = None
        if epr_rate is not None and epr_rate.strip() not in ("", "inf"):
            try:
                rate = float(epr_rate)
            except ValueError:
                raise ValueError(
                    f"bad epr_rate {epr_rate!r} (number or 'inf')"
                ) from None
        topos = tuple(
            None if t.strip() == "none" else t.strip()
            for t in topologies.split(",")
            if t.strip()
        ) or (None,)
        try:
            bw = float(link_bw)
        except ValueError:
            raise ValueError(
                f"bad link_bw {link_bw!r} (positive number)"
            ) from None
        return cls(
            benchmarks=keys,
            algorithms=tuple(
                s.strip() for s in schedulers.split(",") if s.strip()
            ),
            ks=_ints(ks),
            ds=tuple(_d(v) for v in ds.split(",") if v.strip()),
            local_memories=tuple(
                parse_capacity(v.strip())
                for v in local_memories.split(",")
                if v.strip()
            ),
            fth=fth,
            engine=engine,
            epr_rate=rate,
            topologies=topos,
            cores=_ints(cores),
            link_bw=bw,
        )

    def expand(self) -> List[JobSpec]:
        """The grid's jobs in deterministic (document) order.

        The cores axis only multiplies multi-core points: a ``None``
        topology contributes exactly one single-core job per
        (benchmark, algorithm, k, d, local) point.
        """
        return [
            JobSpec(
                benchmark=b,
                algorithm=alg,
                k=k,
                d=d,
                local_memory=local,
                fth=self.fth,
                engine=self.engine,
                epr_rate=self.epr_rate,
                topology=topo,
                cores=n,
                link_bw=self.link_bw,
            )
            for b in self.benchmarks
            for alg in self.algorithms
            for k in self.ks
            for d in self.ds
            for local in self.local_memories
            for topo in self.topologies
            for n in (self.cores if topo is not None else (1,))
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "benchmarks": list(self.benchmarks),
            "algorithms": list(self.algorithms),
            "ks": list(self.ks),
            "ds": [d if d is not None else "inf" for d in self.ds],
            "local_memories": [
                capacity_label(v) for v in self.local_memories
            ],
            "fth": self.fth,
            "engine": self.engine,
            "epr_rate": self.epr_rate,
            "topologies": [
                t if t is not None else "none" for t in self.topologies
            ],
            "cores": list(self.cores),
            "link_bw": self.link_bw,
        }


# -- the worker ---------------------------------------------------------

#: Per-process service instances, keyed by cache dir, so one worker
#: serves many jobs from a warm memory LRU.
_SERVICES: Dict[Optional[str], CompileService] = {}


def _service_for(cache_dir: Optional[str]) -> CompileService:
    service = _SERVICES.get(cache_dir)
    if service is None:
        service = CompileService(cache_dir=cache_dir)
        _SERVICES[cache_dir] = service
    return service


def _error_kind(exc: BaseException) -> str:
    from ..engine import PreflightError

    if isinstance(exc, AnalysisError):
        return "analysis"
    if isinstance(
        exc,
        (ScaffoldSyntaxError, QasmSyntaxError, ProgramValidationError),
    ):
        return "parse"
    if isinstance(exc, (ScheduleError, ReplayError, PreflightError)):
        return "schedule"
    return "error"


def execute_job(
    job: JobSpec,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
) -> Dict[str, Any]:
    """Run one sweep job through the compile service.

    Returns a JSON-safe outcome dict; never raises (failures are
    encoded as ``status="error"`` with a classified kind, so one bad
    job cannot take down a sweep).
    """
    started = time.perf_counter()
    outcome: Dict[str, Any] = {
        "job": job.to_dict(),
        "label": job.label,
        "status": "ok",
        "cached": None,
        "fingerprint": None,
        "elapsed_s": 0.0,
        "compute_s": 0.0,
        "spans": {},
        "metrics": None,
        "error": None,
        "attempts": 1,
    }
    if job.topology is not None:
        return _execute_multicore_job(job, outcome, started)
    try:
        spec = BENCHMARKS[job.benchmark]
        machine = MultiSIMD(
            k=job.k, d=job.d, local_memory=job.local_memory
        )
        service = _service_for(cache_dir)
        entry = service.lookup(
            spec.build(),
            machine,
            SchedulerConfig(job.algorithm),
            fth=job.fth if job.fth is not None else spec.fth,
            use_cache=use_cache,
        )
    except Exception as exc:  # noqa: BLE001 - classified and reported
        outcome["status"] = "error"
        outcome["error"] = {
            "kind": _error_kind(exc),
            "message": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(limit=10),
        }
        outcome["elapsed_s"] = time.perf_counter() - started
        return outcome

    result = entry.result
    outcome["cached"] = entry.cached
    outcome["fingerprint"] = entry.fingerprint
    outcome["compute_s"] = entry.elapsed_s
    outcome["spans"] = entry.spans
    outcome["metrics"] = {
        name: getattr(result, name) for name in _METRIC_FIELDS
    }
    outcome["metrics"]["diagnostics"] = len(result.diagnostics)
    if job.engine:
        try:
            outcome["metrics"].update(
                _engine_metrics(job, result, service, machine, spec)
            )
        except Exception as exc:  # noqa: BLE001 - classified, reported
            outcome["status"] = "error"
            outcome["error"] = {
                "kind": _error_kind(exc),
                "message": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(limit=10),
            }
    outcome["elapsed_s"] = time.perf_counter() - started
    return outcome


def _execute_multicore_job(
    job: JobSpec, outcome: Dict[str, Any], started: float
) -> Dict[str, Any]:
    """The multi-core arm of :func:`execute_job` (schema ``/3``).

    Multi-core results carry live per-core schedules the artifact
    store cannot serialize, so these jobs bypass the compile cache and
    always compute fresh (``cached`` stays ``None``).
    """
    import math

    from ..instrument import record_spans
    from ..multicore import (
        MulticoreConfig,
        compile_and_schedule_multicore,
        execute_multicore_result,
        parse_topology,
    )

    try:
        spec = BENCHMARKS[job.benchmark]
        machine = MultiSIMD(
            k=job.k, d=job.d, local_memory=job.local_memory
        )
        graph = parse_topology(job.topology, job.cores, job.link_bw)
        rate = (
            job.epr_rate if job.epr_rate is not None else math.inf
        )
        config = MulticoreConfig(graph=graph, link_epr_rate=rate)
        with record_spans() as rec:
            result = compile_and_schedule_multicore(
                spec.build(),
                machine,
                config,
                SchedulerConfig(job.algorithm),
                fth=job.fth if job.fth is not None else spec.fth,
            )
            metrics = {
                name: getattr(result, name) for name in _METRIC_FIELDS
            }
            metrics["diagnostics"] = 0
            metrics.update(result.metrics())
            if job.engine:
                from ..engine import EngineConfig

                execution = execute_multicore_result(
                    result,
                    config=EngineConfig(
                        epr_rate=rate, collect_trace=False
                    ),
                )
                metrics.update(execution.metrics())
    except Exception as exc:  # noqa: BLE001 - classified and reported
        outcome["status"] = "error"
        outcome["error"] = {
            "kind": _error_kind(exc),
            "message": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(limit=10),
        }
        outcome["elapsed_s"] = time.perf_counter() - started
        return outcome
    outcome["spans"] = rec.to_dict()
    outcome["metrics"] = metrics
    outcome["compute_s"] = time.perf_counter() - started
    outcome["elapsed_s"] = outcome["compute_s"]
    return outcome


def _engine_metrics(job, result, service, machine, spec):
    """Execute a job's compile result on the engine and return the
    ``engine_*`` metric columns.

    Disk-cached results come back with schedules rehydrated from the
    store's gzip sidecar, so a cache hit feeds the engine directly —
    no recompile, and the hit still counts in the cache stats. The
    recompile below is the fallback for results loaded from pre-sidecar
    stores (or a deleted/corrupt sidecar), where live schedules are
    genuinely absent.
    """
    import math

    from ..engine import EngineConfig, execute_result

    if not result.schedules:
        entry = service.lookup(
            spec.build(),
            machine,
            SchedulerConfig(job.algorithm),
            fth=job.fth if job.fth is not None else spec.fth,
            use_cache=False,
        )
        result = entry.result
    config = EngineConfig(
        epr_rate=job.epr_rate if job.epr_rate is not None else math.inf,
        collect_trace=False,
    )
    return execute_result(result, config).metrics()


def _timeout_outcome(job: JobSpec, timeout: float) -> Dict[str, Any]:
    return {
        "job": job.to_dict(),
        "label": job.label,
        "status": "timeout",
        "cached": None,
        "fingerprint": None,
        "elapsed_s": timeout,
        "compute_s": 0.0,
        "spans": {},
        "metrics": None,
        "error": {
            "kind": "timeout",
            "message": f"job exceeded {timeout:g}s",
        },
        "attempts": 1,
    }


# -- the runner ---------------------------------------------------------

Worker = Callable[..., Dict[str, Any]]


@dataclass
class SweepRun:
    """The collected outcomes of one sweep execution."""

    jobs: List[JobSpec]
    outcomes: List[Dict[str, Any]]
    parallel: bool
    workers: int
    degraded_to_serial: bool = False
    pool_restarts: int = 0
    wall_s: float = 0.0

    @property
    def ok(self) -> List[Dict[str, Any]]:
        return [o for o in self.outcomes if o["status"] == "ok"]

    @property
    def failed(self) -> List[Dict[str, Any]]:
        return [o for o in self.outcomes if o["status"] != "ok"]

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.ok if o.get("cached"))

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / len(self.ok) if self.ok else 0.0


def run_sweep(
    jobs: Sequence[JobSpec],
    cache_dir: Optional[Union[str, Path]] = None,
    parallel: bool = True,
    max_workers: Optional[int] = None,
    timeout: Optional[float] = None,
    use_cache: bool = True,
    worker: Worker = execute_job,
) -> SweepRun:
    """Execute ``jobs``, in parallel where possible.

    Args:
        jobs: grid points (see :meth:`SweepGrid.expand`).
        cache_dir: shared artifact store for all workers (``None``
            disables the disk tier — each worker still has a memory
            LRU).
        parallel: fan out over a process pool; serial in-process
            otherwise.
        max_workers: pool size (default: executor's CPU-count policy).
        timeout: per-job seconds; ``None`` waits indefinitely.
        use_cache: forwarded to :func:`execute_job`.
        worker: the job callable — injectable for fault-injection
            tests; must be picklable and return an outcome dict.
    """
    cache = str(cache_dir) if cache_dir is not None else None
    jobs = list(jobs)
    run = SweepRun(
        jobs=jobs,
        outcomes=[{} for _ in jobs],
        parallel=parallel,
        workers=max_workers or 0,
    )
    started = time.perf_counter()

    def _serial(pending: List[Tuple[int, JobSpec]], attempt: int) -> None:
        for i, job in pending:
            outcome = worker(job, cache, use_cache)
            outcome["attempts"] = attempt
            run.outcomes[i] = outcome

    if not parallel:
        _serial(list(enumerate(jobs)), attempt=1)
        run.wall_s = time.perf_counter() - started
        return run

    pending: List[Tuple[int, JobSpec]] = list(enumerate(jobs))
    attempt = 0
    # One initial attempt plus one retry after a pool break.
    while pending and attempt < 2:
        attempt += 1
        crashed: List[Tuple[int, JobSpec]] = []
        executor = ProcessPoolExecutor(max_workers=max_workers)
        try:
            futures = {}
            try:
                for i, job in pending:
                    futures[i] = executor.submit(
                        worker, job, cache, use_cache
                    )
            except BrokenProcessPool:
                pass  # unsubmitted jobs fall through to the retry list
            for i, job in pending:
                if i not in futures:
                    crashed.append((i, job))
                    continue
                try:
                    outcome = futures[i].result(timeout=timeout)
                    outcome["attempts"] = attempt
                    run.outcomes[i] = outcome
                except FutureTimeout:
                    futures[i].cancel()
                    run.outcomes[i] = _timeout_outcome(job, timeout or 0.0)
                    run.outcomes[i]["attempts"] = attempt
                except BrokenProcessPool:
                    crashed.append((i, job))
                except Exception as exc:  # unpicklable result, etc.
                    run.outcomes[i] = {
                        **_timeout_outcome(job, 0.0),
                        "status": "error",
                        "error": {
                            "kind": "worker",
                            "message": f"{type(exc).__name__}: {exc}",
                        },
                        "attempts": attempt,
                    }
        finally:
            # Never block on a hung worker: abandon what cannot be
            # cancelled instead of wedging the sweep.
            executor.shutdown(wait=False, cancel_futures=True)
        if crashed:
            run.pool_restarts += 1
        pending = crashed

    if pending:
        # The pool broke twice: degrade gracefully to serial mode.
        run.degraded_to_serial = True
        _serial(pending, attempt=attempt + 1)

    run.wall_s = time.perf_counter() - started
    return run


# -- the report ---------------------------------------------------------


def build_sweep_payload(
    run: SweepRun,
    grid: Optional[SweepGrid] = None,
    cache_stats: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the versioned ``BENCH_sweep.json`` document."""
    return {
        "schema": SWEEP_SCHEMA,
        "pipeline_version": PIPELINE_VERSION,
        "created_unix": time.time(),
        "grid": grid.to_dict() if grid is not None else None,
        "execution": {
            "parallel": run.parallel,
            "workers": run.workers,
            "degraded_to_serial": run.degraded_to_serial,
            "pool_restarts": run.pool_restarts,
            "wall_s": run.wall_s,
        },
        "cache": {
            "jobs_total": len(run.outcomes),
            "jobs_ok": len(run.ok),
            "jobs_failed": len(run.failed),
            "hits": run.cache_hits,
            "hit_rate": run.hit_rate,
            **({"service": cache_stats} if cache_stats else {}),
        },
        "jobs": run.outcomes,
    }


def validate_sweep_payload(payload: Dict[str, Any]) -> List[str]:
    """Structural check of a ``BENCH_sweep.json`` document.

    Returns a list of problems (empty when valid). Hand-rolled rather
    than a jsonschema dependency; the schema itself is documented in
    ``DESIGN.md``.
    """
    problems: List[str] = []

    def need(obj: Dict[str, Any], key: str, types, where: str) -> Any:
        if key not in obj:
            problems.append(f"{where}: missing key {key!r}")
            return None
        value = obj[key]
        if types is not None and not isinstance(value, types):
            problems.append(
                f"{where}.{key}: expected {types}, got "
                f"{type(value).__name__}"
            )
            return None
        return value

    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("schema") not in ACCEPTED_SCHEMAS:
        problems.append(
            f"schema: expected one of {ACCEPTED_SCHEMAS}, got "
            f"{payload.get('schema')!r}"
        )
    need(payload, "pipeline_version", str, "$")
    need(payload, "created_unix", (int, float), "$")
    need(payload, "execution", dict, "$")
    cache = need(payload, "cache", dict, "$")
    if cache is not None:
        for key in ("jobs_total", "jobs_ok", "jobs_failed", "hits"):
            need(cache, key, int, "cache")
        need(cache, "hit_rate", (int, float), "cache")
    jobs = need(payload, "jobs", list, "$")
    for idx, outcome in enumerate(jobs or []):
        where = f"jobs[{idx}]"
        if not isinstance(outcome, dict):
            problems.append(f"{where}: not an object")
            continue
        job = need(outcome, "job", dict, where)
        if job is not None:
            need(job, "benchmark", str, f"{where}.job")
            need(job, "algorithm", str, f"{where}.job")
            need(job, "k", int, f"{where}.job")
        status = need(outcome, "status", str, where)
        if status not in (None, "ok", "timeout", "error"):
            problems.append(f"{where}.status: unknown value {status!r}")
        need(outcome, "elapsed_s", (int, float), where)
        need(outcome, "spans", dict, where)
        if status == "ok":
            metrics = need(outcome, "metrics", dict, where)
            for name in _METRIC_FIELDS:
                if metrics is not None:
                    need(metrics, name, (int, float), f"{where}.metrics")
            if (
                metrics is not None
                and job is not None
                and job.get("engine")
            ):
                for name in _ENGINE_METRIC_FIELDS:
                    need(metrics, name, (int, float), f"{where}.metrics")
            if (
                metrics is not None
                and job is not None
                and job.get("topology") is not None
            ):
                need(job, "cores", int, f"{where}.job")
                need(job, "link_bw", (int, float), f"{where}.job")
                for name in _MULTICORE_METRIC_FIELDS:
                    need(metrics, name, (int, float), f"{where}.metrics")
            if outcome.get("cached") not in (None, "memory", "disk"):
                problems.append(
                    f"{where}.cached: unknown value "
                    f"{outcome.get('cached')!r}"
                )
        elif status in ("timeout", "error"):
            need(outcome, "error", dict, where)
    return problems
