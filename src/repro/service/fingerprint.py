"""Content-addressed fingerprints for compile requests.

A *compile request* — ``(Program, MultiSIMD, SchedulerConfig, FTh,
decomposition settings, pipeline version)`` — is reduced to a canonical
JSON document and hashed with SHA-256. Two requests that would produce
the same :class:`~repro.toolflow.CompileResult` fingerprint identically,
and the fingerprint is stable across processes, interpreter hash seeds,
and module insertion orders.

The program/statement canonicalisation rules (and
:data:`PIPELINE_VERSION`, which is mixed in so that behavioural changes
to passes/schedulers invalidate previously stored artifacts) live in
:mod:`repro.core.canonical` — shared with the analysis summary cache —
and are re-exported here; this module adds the request-level pieces:
machine, scheduler, and decomposition configuration.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..arch.machine import MultiSIMD
from ..core.canonical import (
    PIPELINE_VERSION,
    canonical_number as _num,
    canonical_program,
    canonical_qubit as _qubit,
    canonical_statement as _statement,
    digest as _digest,
    fingerprint_program,
)
from ..core.module import Program
from ..passes.decompose import DecomposeConfig
from ..passes.flatten import DEFAULT_FTH
from ..toolflow import SchedulerConfig

__all__ = [
    "PIPELINE_VERSION",
    "canonical_program",
    "canonical_machine",
    "canonical_scheduler",
    "canonical_request",
    "fingerprint_request",
    "fingerprint_program",
]


def canonical_machine(machine: MultiSIMD) -> Dict[str, Any]:
    return {
        "k": machine.k,
        "d": machine.d,
        "local_memory": _num(machine.local_memory),
    }


def canonical_scheduler(scheduler: SchedulerConfig) -> Dict[str, Any]:
    return {
        "algorithm": scheduler.algorithm,
        "lpfs_l": scheduler.lpfs_l,
        "lpfs_simd": scheduler.lpfs_simd,
        "lpfs_refill": scheduler.lpfs_refill,
    }


def _canonical_decompose(config: Optional[DecomposeConfig]) -> Dict[str, Any]:
    config = config or DecomposeConfig()
    return {
        "epsilon": _num(config.epsilon),
        "length_scale": _num(config.length_scale),
        "length_offset": config.length_offset,
    }


def canonical_request(
    program: Program,
    machine: MultiSIMD,
    scheduler: Optional[SchedulerConfig] = None,
    fth: int = DEFAULT_FTH,
    decompose: bool = True,
    decompose_config: Optional[DecomposeConfig] = None,
    optimize: bool = False,
    strict: bool = False,
) -> Dict[str, Any]:
    """Canonical form of a full compile request (pre-hash)."""
    return {
        "pipeline": PIPELINE_VERSION,
        "program": canonical_program(program),
        "machine": canonical_machine(machine),
        "scheduler": canonical_scheduler(scheduler or SchedulerConfig()),
        "fth": fth,
        "decompose": decompose,
        "decompose_config": _canonical_decompose(decompose_config),
        "optimize": optimize,
        "strict": strict,
    }


def fingerprint_request(
    program: Program,
    machine: MultiSIMD,
    scheduler: Optional[SchedulerConfig] = None,
    fth: int = DEFAULT_FTH,
    decompose: bool = True,
    decompose_config: Optional[DecomposeConfig] = None,
    optimize: bool = False,
    strict: bool = False,
) -> str:
    """SHA-256 hex fingerprint of a full compile request."""
    return _digest(
        canonical_request(
            program,
            machine,
            scheduler,
            fth=fth,
            decompose=decompose,
            decompose_config=decompose_config,
            optimize=optimize,
            strict=strict,
        )
    )
