"""Content-addressed fingerprints for compile requests.

A *compile request* — ``(Program, MultiSIMD, SchedulerConfig, FTh,
decomposition settings, pipeline version)`` — is reduced to a canonical
JSON document and hashed with SHA-256. Two requests that would produce
the same :class:`~repro.toolflow.CompileResult` fingerprint identically,
and the fingerprint is stable across processes, interpreter hash seeds,
and module insertion orders.

Determinism rules the canonical form enforces (the hash must never see
an iteration-order or ``repr`` leak):

* modules are emitted **sorted by name**, never in ``Program.modules``
  insertion order;
* statement bodies keep their (semantically meaningful) order; every
  statement is emitted as an explicit list, never via ``repr``;
* qubits are emitted as ``[register, index]`` pairs;
* ``set``-typed structures (e.g. :meth:`Module.callees`) are never
  consumed — the canonical form only reads ordered fields;
* floats (gate angles, local-memory capacities, decomposition epsilon)
  are emitted via :func:`float.hex` — exact, locale-independent, and
  immune to repr changes;
* non-semantic metadata (source locations) is excluded: a program
  parsed from a file and the identical program built in memory
  fingerprint the same;
* :data:`PIPELINE_VERSION` is mixed in so that behavioural changes to
  passes/schedulers invalidate previously stored artifacts.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Dict, List, Optional

from ..arch.machine import MultiSIMD
from ..core.module import Module, Program
from ..core.operation import CallSite, Operation
from ..core.qubits import Qubit
from ..passes.decompose import DecomposeConfig
from ..passes.flatten import DEFAULT_FTH
from ..toolflow import SchedulerConfig

__all__ = [
    "PIPELINE_VERSION",
    "canonical_program",
    "canonical_machine",
    "canonical_scheduler",
    "canonical_request",
    "fingerprint_request",
    "fingerprint_program",
]

#: Version of the compilation pipeline's *behaviour*. Bump whenever a
#: pass, scheduler, or the cost model changes in a way that alters
#: results — every stored artifact fingerprinted under the old version
#: becomes unreachable (see ``DESIGN.md``, "Fingerprint recipe").
PIPELINE_VERSION = "2025.2"


def _num(value: Optional[float]) -> Any:
    """Canonical JSON encoding for an optional numeric field."""
    if value is None:
        return None
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        return value.hex()
    return value


def _qubit(q: Qubit) -> List[Any]:
    return [q.register, q.index]


def _statement(stmt) -> List[Any]:
    if isinstance(stmt, Operation):
        return [
            "op",
            stmt.gate,
            [_qubit(q) for q in stmt.qubits],
            _num(stmt.angle),
        ]
    if isinstance(stmt, CallSite):
        return [
            "call",
            stmt.callee,
            [_qubit(q) for q in stmt.args],
            stmt.iterations,
        ]
    raise TypeError(f"unknown statement type {type(stmt).__name__}")


def _module(mod: Module) -> Dict[str, Any]:
    return {
        "name": mod.name,
        "params": [_qubit(q) for q in mod.params],
        "body": [_statement(s) for s in mod.body],
    }


def canonical_program(program: Program) -> Dict[str, Any]:
    """The canonical (order-stable, repr-free) form of a program."""
    return {
        "entry": program.entry,
        "modules": [
            _module(program.modules[name])
            for name in sorted(program.modules)
        ],
    }


def canonical_machine(machine: MultiSIMD) -> Dict[str, Any]:
    return {
        "k": machine.k,
        "d": machine.d,
        "local_memory": _num(machine.local_memory),
    }


def canonical_scheduler(scheduler: SchedulerConfig) -> Dict[str, Any]:
    return {
        "algorithm": scheduler.algorithm,
        "lpfs_l": scheduler.lpfs_l,
        "lpfs_simd": scheduler.lpfs_simd,
        "lpfs_refill": scheduler.lpfs_refill,
    }


def _canonical_decompose(config: Optional[DecomposeConfig]) -> Dict[str, Any]:
    config = config or DecomposeConfig()
    return {
        "epsilon": _num(config.epsilon),
        "length_scale": _num(config.length_scale),
        "length_offset": config.length_offset,
    }


def canonical_request(
    program: Program,
    machine: MultiSIMD,
    scheduler: Optional[SchedulerConfig] = None,
    fth: int = DEFAULT_FTH,
    decompose: bool = True,
    decompose_config: Optional[DecomposeConfig] = None,
    optimize: bool = False,
    strict: bool = False,
) -> Dict[str, Any]:
    """Canonical form of a full compile request (pre-hash)."""
    return {
        "pipeline": PIPELINE_VERSION,
        "program": canonical_program(program),
        "machine": canonical_machine(machine),
        "scheduler": canonical_scheduler(scheduler or SchedulerConfig()),
        "fth": fth,
        "decompose": decompose,
        "decompose_config": _canonical_decompose(decompose_config),
        "optimize": optimize,
        "strict": strict,
    }


def _digest(doc: Any) -> str:
    text = json.dumps(
        doc, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(text.encode("ascii")).hexdigest()


def fingerprint_program(program: Program) -> str:
    """SHA-256 over the canonical program alone (no machine/config)."""
    return _digest(canonical_program(program))


def fingerprint_request(
    program: Program,
    machine: MultiSIMD,
    scheduler: Optional[SchedulerConfig] = None,
    fth: int = DEFAULT_FTH,
    decompose: bool = True,
    decompose_config: Optional[DecomposeConfig] = None,
    optimize: bool = False,
    strict: bool = False,
) -> str:
    """SHA-256 hex fingerprint of a full compile request."""
    return _digest(
        canonical_request(
            program,
            machine,
            scheduler,
            fth=fth,
            decompose=decompose,
            decompose_config=decompose_config,
            optimize=optimize,
            strict=strict,
        )
    )
