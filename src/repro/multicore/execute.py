"""Discrete-event execution of multi-core schedules.

Each core's schedule runs on the ordinary single-core engine
(:func:`repro.engine.run_schedule`) — its own clock, its own EPR pool,
its own stall attribution. The interconnect then runs the inter-core
epochs against per-link EPR pools (:class:`repro.engine.state.
InterconnectState`), stalling whenever a link's pair generation lags
its load.

The invariant, one level up from the engine's:

    realized == analytic makespan + attributed stalls

holds **exactly**, with the stall breakdown split as

* ``intra`` — the slowest core's realized runtime minus the slowest
  core's analytic runtime (non-negative: ``max(a_c + s_c) >=
  max(a_c)``);
* ``intercore`` — cycles spent waiting for interconnect link pools.

Under an ideal config both terms are zero and the realized runtime
equals :attr:`MulticoreSchedule.makespan` cycle for cycle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..arch.machine import GATE_CYCLES, TELEPORT_CYCLES
from ..engine.config import EngineConfig
from ..engine.executor import (
    EngineError,
    EngineResult,
    _coarse_trace,
    run_schedule,
)
from ..engine.faults import FaultLog
from ..engine.state import InterconnectState
from ..engine.trace import EventTrace, build_payload
from ..instrument import span
from ..sched.coarse import CoarseResult, schedule_coarse
from .toolflow import MulticoreCompileResult
from .makespan import MulticoreSchedule

__all__ = [
    "MulticoreStalls",
    "MulticoreEngineResult",
    "MulticoreExecution",
    "run_multicore_schedule",
    "execute_multicore_result",
]


@dataclass
class MulticoreStalls:
    """Added cycles by cause, one level above the engine's breakdown.

    Attributes:
        intra: slowest-core realized minus slowest-core analytic (the
            share of per-core engine stalls that lands on the
            makespan-critical core).
        intercore: waiting for interconnect link EPR generation.
    """

    intra: int = 0
    intercore: int = 0

    @property
    def total(self) -> int:
        return self.intra + self.intercore

    def merge(self, other: "MulticoreStalls") -> None:
        self.intra += other.intra
        self.intercore += other.intercore

    def to_dict(self) -> Dict[str, int]:
        return {
            "intra": self.intra,
            "intercore": self.intercore,
            "total": self.total,
        }


@dataclass
class MulticoreEngineResult:
    """Outcome of executing one leaf's multi-core schedule.

    Attributes:
        module: scope label.
        cores: core count of the interconnect.
        realized_runtime: realized makespan (slowest core + realized
            interconnect phase).
        analytic_runtime: :attr:`MulticoreSchedule.makespan`.
        intra_realized / intra_analytic: the per-core phase, realized
            and analytic (max over cores).
        intercore_cycles: analytic interconnect cycles.
        stalls: ``realized == analytic + stalls.total`` exactly.
        core_results: per-core single-core engine results.
        link_pairs: interconnect EPR pairs consumed per link.
        interconnect_trace: inter-core epoch/stall events (``None``
            when trace collection is off).
        fault_log: merged over the per-core runs.
    """

    module: str
    cores: int
    realized_runtime: int
    analytic_runtime: int
    intra_realized: int
    intra_analytic: int
    intercore_cycles: int
    stalls: MulticoreStalls
    core_results: Dict[int, EngineResult]
    link_pairs: Dict[str, int]
    interconnect_trace: Optional[EventTrace] = None
    fault_log: FaultLog = field(default_factory=FaultLog)

    @property
    def decomposition_ok(self) -> bool:
        """The load-bearing invariant, checked."""
        return (
            self.realized_runtime
            == self.analytic_runtime + self.stalls.total
        )

    @property
    def intercore_pairs(self) -> int:
        return sum(self.link_pairs.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "module": self.module,
            "cores": self.cores,
            "realized_runtime": self.realized_runtime,
            "analytic_runtime": self.analytic_runtime,
            "intra_realized": self.intra_realized,
            "intra_analytic": self.intra_analytic,
            "intercore_cycles": self.intercore_cycles,
            "stalls": self.stalls.to_dict(),
            "decomposition_ok": self.decomposition_ok,
            "intercore_pairs": self.intercore_pairs,
            "link_pairs": self.link_pairs,
            "core_results": {
                str(c): r.to_dict()
                for c, r in sorted(self.core_results.items())
            },
            "faults": self.fault_log.to_dict(),
        }


def run_multicore_schedule(
    msched: MulticoreSchedule,
    config: Optional[EngineConfig] = None,
    link_epr_rate: float = math.inf,
    scope: str = "",
    preflight: bool = True,
) -> MulticoreEngineResult:
    """Execute one leaf's multi-core schedule.

    Args:
        msched: the schedule
            (:func:`repro.multicore.makespan.schedule_multicore`).
        config: engine knobs, applied to every core's run.
        link_epr_rate: interconnect pair generation rate per link.
        scope: label for traces / fault streams.
        preflight: replay-validate each core schedule first.

    Raises:
        PreflightError: a core schedule failed preflight replay.
    """
    config = config or EngineConfig()
    scope = scope or "multicore"
    stalls = MulticoreStalls()
    fault_log = FaultLog(seed=config.seed, scope=scope)
    core_results: Dict[int, EngineResult] = {}

    with span("multicore:execute"):
        intra_realized = 0
        intra_analytic = 0
        for core in msched.occupied_cores:
            run = run_schedule(
                msched.core_schedules[core],
                msched.core_machine,
                config=config,
                scope=f"{scope}@core{core}",
                preflight=preflight,
            )
            if run.trace is not None:
                run.trace.core = core
            core_results[core] = run
            fault_log.merge(run.fault_log)
            intra_realized = max(intra_realized, run.realized_runtime)
            intra_analytic = max(intra_analytic, run.analytic_runtime)
        stalls.intra = intra_realized - intra_analytic

        # The interconnect phase: epochs run serially after the cores
        # finish (the same serialization the analytic makespan bills),
        # each waiting for its slowest link's pool.
        interconnect = InterconnectState(
            ((a, b) for a, b, _ in msched.graph.edges),
            epr_rate=link_epr_rate,
        )
        trace = (
            EventTrace(f"{scope}:interconnect")
            if config.collect_trace
            else None
        )
        clock = intra_realized
        for epoch in msched.epochs:
            wait = interconnect.stall_for(epoch.link_loads, clock)
            if wait:
                stalls.intercore += wait
                if trace is not None:
                    trace.emit(
                        "intercore-epr-stall", "stall", clock, wait,
                        "interconnect",
                        pairs=sum(epoch.link_loads.values()),
                    )
                clock += wait
            if trace is not None:
                trace.emit(
                    "intercore-epoch", "move", clock, epoch.cycles,
                    "interconnect",
                    node=epoch.node,
                    dst_core=epoch.core,
                    transfers=len(epoch.transfers),
                    rounds=epoch.rounds,
                )
            interconnect.consume(epoch.link_loads)
            clock += epoch.cycles

    return MulticoreEngineResult(
        module=scope,
        cores=msched.graph.cores,
        realized_runtime=clock,
        analytic_runtime=msched.makespan,
        intra_realized=intra_realized,
        intra_analytic=intra_analytic,
        intercore_cycles=msched.intercore_cycles,
        stalls=stalls,
        core_results=core_results,
        link_pairs=interconnect.link_pairs_labels(),
        interconnect_trace=trace,
        fault_log=fault_log,
    )


@dataclass
class MulticoreExecution:
    """Hierarchical execution of a whole multi-core compile result.

    Mirrors :class:`repro.engine.ProgramExecution`: leaves run on the
    multi-core engine, realized leaf makespans replace the analytic
    width-``k`` blackbox dimensions, and non-leaf modules are
    re-coarse-scheduled bottom-up.
    """

    entry: str
    cores: int
    realized_runtime: int
    analytic_runtime: int
    leaves: Dict[str, MulticoreEngineResult]
    coarse: Dict[str, CoarseResult]
    coarse_traces: Dict[str, EventTrace]
    realized: Dict[str, int]
    stalls: MulticoreStalls
    fault_log: FaultLog
    config: EngineConfig
    result: MulticoreCompileResult

    @property
    def ideal_match(self) -> bool:
        """Whether realized == analytic (expected under ideal config
        and infinite link rate)."""
        return self.realized_runtime == self.analytic_runtime

    @property
    def decomposition_ok(self) -> bool:
        """Every leaf satisfies realized == analytic + stalls."""
        return all(
            r.decomposition_ok for r in self.leaves.values()
        )

    def metrics(self) -> Dict[str, Any]:
        """Flat engine columns for sweep rows / CLI JSON output.

        Reuses the single-core ``engine_*`` names where the meaning
        carries over; the multi-core split is reported as
        ``engine_stall_intra`` / ``engine_stall_intercore``
        (``engine_stall_cycles`` is their sum). The inter-core stall
        is EPR-driven, so it doubles as ``engine_stall_epr``.
        """
        per_core = list(
            r
            for leaf in self.leaves.values()
            for r in leaf.core_results.values()
        )
        return {
            "engine_runtime": self.realized_runtime,
            "engine_analytic_runtime": self.analytic_runtime,
            "engine_stall_cycles": self.stalls.total,
            "engine_stall_epr": self.stalls.intercore,
            "engine_stall_bandwidth": 0,
            "engine_stall_fault": sum(
                r.stalls.fault for r in per_core
            ),
            "engine_utilization": round(self.utilization, 6),
            "engine_teleport_rounds": sum(
                r.teleport_rounds for r in per_core
            ),
            "engine_faults": self.fault_log.total_events,
            "engine_stall_intra": self.stalls.intra,
            "engine_stall_intercore": self.stalls.intercore,
            "engine_decomposition_ok": int(self.decomposition_ok),
        }

    @property
    def utilization(self) -> float:
        busy = 0.0
        capacity = 0.0
        for leaf in self.leaves.values():
            for r in leaf.core_results.values():
                busy += sum(r.utilization.values()) * r.realized_runtime
                capacity += r.k * r.realized_runtime
        return busy / capacity if capacity else 0.0

    def to_trace_payload(self) -> Dict[str, Any]:
        """The merged ``repro.trace/1`` document (one lane per core in
        the Chrome export)."""
        sections: List[Tuple[str, EventTrace]] = []
        for name in sorted(self.leaves):
            leaf = self.leaves[name]
            for core in sorted(leaf.core_results):
                run = leaf.core_results[core]
                if run.trace is not None:
                    sections.append((name, run.trace))
            if leaf.interconnect_trace is not None:
                sections.append((name, leaf.interconnect_trace))
        for name in sorted(self.coarse_traces):
            sections.append((name, self.coarse_traces[name]))
        runtime = max(
            [self.realized_runtime]
            + [r.realized_runtime for r in self.leaves.values()]
            + [c.total_length for c in self.coarse.values()]
        )
        machine = self.result.core_machine
        return build_payload(
            sections,
            runtime=runtime,
            machine={
                "k": machine.k,
                "d": machine.d,
                "local_memory": machine.local_memory,
                "cores": self.cores,
                "topology": self.result.graph.name,
            },
            stats={
                "entry": self.entry,
                "realized_runtime": self.realized_runtime,
                "analytic_runtime": self.analytic_runtime,
                "modules": len(self.leaves) + len(self.coarse),
                "engine_config": self.config.to_dict(),
                "faults": self.fault_log.total_events,
            },
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "entry": self.entry,
            "cores": self.cores,
            "topology": self.result.graph.to_dict(),
            "realized_runtime": self.realized_runtime,
            "analytic_runtime": self.analytic_runtime,
            "ideal_match": self.ideal_match,
            "decomposition_ok": self.decomposition_ok,
            "stalls": self.stalls.to_dict(),
            "utilization": round(self.utilization, 6),
            "engine_config": self.config.to_dict(),
            "modules": {
                name: self.leaves[name].to_dict()
                if name in self.leaves
                else {
                    "module": name,
                    "realized_runtime": self.realized[name],
                    "coarse": True,
                }
                for name in sorted(self.realized)
            },
            "faults": self.fault_log.to_dict(),
        }


def execute_multicore_result(
    result: MulticoreCompileResult,
    config: Optional[EngineConfig] = None,
    preflight: bool = True,
) -> MulticoreExecution:
    """Execute a whole multi-core compile result, hierarchically.

    Raises:
        EngineError: the result carries no leaf schedules.
        PreflightError: a core schedule failed preflight replay.
    """
    config = config or EngineConfig()
    program = result.program
    if not result.leaf_schedules:
        raise EngineError(
            "multicore compile result has no retained leaf schedules"
        )
    k = result.core_machine.k
    leaves: Dict[str, MulticoreEngineResult] = {}
    coarse: Dict[str, CoarseResult] = {}
    coarse_traces: Dict[str, EventTrace] = {}
    realized: Dict[str, int] = {}
    realized_dims: Dict[str, Dict[int, int]] = {}
    stalls = MulticoreStalls()
    fault_log = FaultLog(seed=config.seed, scope=program.entry)

    for name in program.topological_order():
        mod = program.module(name)
        profile = result.profiles[name]
        if mod.is_leaf:
            msched = result.leaf_schedules.get(name)
            if msched is None:
                raise EngineError(
                    f"no retained multicore schedule for leaf "
                    f"module {name!r}"
                )
            run = run_multicore_schedule(
                msched,
                config=config,
                link_epr_rate=result.config.link_epr_rate,
                scope=name,
                preflight=preflight,
            )
            leaves[name] = run
            stalls.merge(run.stalls)
            fault_log.merge(run.fault_log)
            realized[name] = max(run.realized_runtime, 1)
        else:
            callees = sorted(mod.callees())
            dims = {c: realized_dims[c] for c in callees}
            with span("multicore:coarse"):
                replay = schedule_coarse(
                    mod,
                    dims,
                    k=k,
                    gate_cost=GATE_CYCLES + TELEPORT_CYCLES,
                    call_overhead=TELEPORT_CYCLES,
                )
            coarse[name] = replay
            if config.collect_trace:
                coarse_traces[name] = _coarse_trace(mod, replay)
            realized[name] = max(replay.total_length, 1)
        dims_table = dict(profile.runtime)
        dims_table[k] = realized[name]
        realized_dims[name] = dims_table

    entry = program.entry
    return MulticoreExecution(
        entry=entry,
        cores=result.graph.cores,
        realized_runtime=realized[entry],
        analytic_runtime=result.profiles[entry].runtime[k],
        leaves=leaves,
        coarse=coarse,
        coarse_traces=coarse_traces,
        realized=realized,
        stalls=stalls,
        fault_log=fault_log,
        config=config,
        result=result,
    )
