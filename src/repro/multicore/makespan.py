"""Inter-core makespan scheduling layered on the leaf schedulers.

One leaf module, one partition, one core graph. Each core receives the
sub-list of statements homed on it (home core = majority vote of the
operand home cores, ties to the lowest index) **in original program
order**, is scheduled independently with the existing fine-grained
schedulers (sequential / RCP / LPFS), and billed the ordinary
single-core movement model. On top, qubits that interact across cores
are teleported over the interconnect: the statement stream is walked
in program order with a dynamic residency map, and every statement
whose operands are scattered triggers one *inter-core epoch* gathering
them at its home core.

Hop billing (Section 2.3's linear-in-distance teleport model, lifted
to the interconnect): a transfer crossing ``h`` links consumes one EPR
pair per link and needs ``h`` serial swap-teleport rounds; an epoch's
rounds are ``max(longest transfer's hops, busiest link's
ceil(load / bandwidth))`` and its cycles are ``TELEPORT_CYCLES *
rounds``.

The analytic makespan decomposes exactly:

    makespan == intra_runtime + intercore_cycles

where ``intra_runtime`` is the slowest core's communication-aware
runtime and ``intercore_cycles`` the summed inter-core epoch cost —
the same invariant discipline the engine applies to realized runtimes
(``realized == analytic + stalls``, see
:mod:`repro.multicore.execute`).

With one core (any topology) nothing crosses the interconnect: the
single core's schedule, movement, and runtime are bit-identical to
the single-core pipeline's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from ..arch.machine import TELEPORT_CYCLES, MultiSIMD
from ..core.dag import DependenceDAG
from ..core.operation import Operation, Statement
from ..core.qubits import Qubit
from ..instrument import span
from ..sched.comm import CommStats, derive_movement
from ..sched.types import Schedule
from .partition import PartitionReport
from .topology import CoreGraph, Link

__all__ = [
    "IntercoreTransfer",
    "IntercoreEpoch",
    "MulticoreSchedule",
    "statement_cores",
    "schedule_multicore",
]


@dataclass(frozen=True)
class IntercoreTransfer:
    """One qubit crossing the interconnect.

    Attributes:
        qubit: the qubit moved.
        src / dst: source and destination core.
        hops: links crossed (== EPR pairs consumed).
        route: the links, in traversal order.
    """

    qubit: Qubit
    src: int
    dst: int
    hops: int
    route: Tuple[Link, ...]


@dataclass(frozen=True)
class IntercoreEpoch:
    """One inter-core movement epoch (gathering one statement's
    operands at its home core).

    Attributes:
        node: index of the triggering statement.
        core: the statement's home core (transfer destination).
        transfers: the qubits moved.
        rounds: serial teleport rounds (hop depth vs. link congestion).
        cycles: ``TELEPORT_CYCLES * rounds``.
        link_loads: EPR pairs routed over each link this epoch.
    """

    node: int
    core: int
    transfers: Tuple[IntercoreTransfer, ...]
    rounds: int
    cycles: int
    link_loads: Dict[Link, int] = field(default_factory=dict)


def statement_cores(
    statements: Sequence[Statement],
    assignment: Dict[Qubit, int],
) -> List[int]:
    """Home core per statement: the majority core of its operands,
    ties broken toward the lowest core index. Operand-free statements
    (none exist today) default to core 0."""
    homes: List[int] = []
    for stmt in statements:
        operands = (
            stmt.qubits if isinstance(stmt, Operation) else stmt.args
        )
        votes: Dict[int, int] = {}
        for q in operands:
            core = assignment[q]
            votes[core] = votes.get(core, 0) + 1
        if not votes:
            homes.append(0)
            continue
        homes.append(
            min(votes, key=lambda c: (-votes[c], c))
        )
    return homes


@dataclass
class MulticoreSchedule:
    """A leaf module scheduled over several Multi-SIMD cores.

    Attributes:
        graph: the core interconnect.
        partition: the qubit-to-core partition used.
        core_machine: the per-core machine the schedules target.
        statement_core: home core per statement (program order).
        core_schedules: per-core fine schedules (cores with no
            statements are absent).
        core_comm: per-core intra-core movement stats.
        epochs: inter-core movement epochs, in program order.
        algorithm: the leaf scheduler used.
    """

    graph: CoreGraph
    partition: PartitionReport
    core_machine: MultiSIMD
    statement_core: List[int]
    core_schedules: Dict[int, Schedule]
    core_comm: Dict[int, CommStats]
    epochs: List[IntercoreEpoch]
    algorithm: str = ""

    # -- the makespan decomposition -----------------------------------

    @property
    def intra_runtime(self) -> int:
        """The slowest core's communication-aware runtime."""
        return max(
            (stats.runtime for stats in self.core_comm.values()),
            default=0,
        )

    @property
    def intercore_cycles(self) -> int:
        """Total attributed inter-core communication."""
        return sum(e.cycles for e in self.epochs)

    @property
    def makespan(self) -> int:
        """Analytic makespan: intra-core runtime + attributed
        inter-core communication (exact by construction)."""
        return self.intra_runtime + self.intercore_cycles

    @property
    def intra_length(self) -> int:
        """The slowest core's communication-free schedule length."""
        return max(
            (sched.length for sched in self.core_schedules.values()),
            default=0,
        )

    # -- movement aggregates ------------------------------------------

    @property
    def intercore_teleports(self) -> int:
        return sum(len(e.transfers) for e in self.epochs)

    @property
    def intercore_pairs(self) -> int:
        """EPR pairs consumed on the interconnect (one per hop)."""
        return sum(t.hops for e in self.epochs for t in e.transfers)

    @property
    def max_hops(self) -> int:
        return max(
            (t.hops for e in self.epochs for t in e.transfers),
            default=0,
        )

    @property
    def min_cut_hops(self) -> int:
        """Smallest hop distance any inter-core transfer crosses (1
        when nothing crosses — the single-core comm floor)."""
        hops = [t.hops for e in self.epochs for t in e.transfers]
        return min(hops) if hops else 1

    def link_pairs(self) -> Dict[Link, int]:
        """EPR pairs per link, summed over every epoch."""
        out: Dict[Link, int] = {}
        for e in self.epochs:
            for link, pairs in e.link_loads.items():
                out[link] = out.get(link, 0) + pairs
        return out

    @property
    def teleports(self) -> int:
        """All teleports: per-core intra moves plus interconnect
        transfers."""
        return (
            sum(s.teleports for s in self.core_comm.values())
            + self.intercore_teleports
        )

    @property
    def occupied_cores(self) -> List[int]:
        return sorted(self.core_schedules)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "topology": self.graph.to_dict(),
            "algorithm": self.algorithm,
            "makespan": self.makespan,
            "intra_runtime": self.intra_runtime,
            "intercore_cycles": self.intercore_cycles,
            "intra_length": self.intra_length,
            "intercore_teleports": self.intercore_teleports,
            "intercore_pairs": self.intercore_pairs,
            "max_hops": self.max_hops,
            "epochs": len(self.epochs),
            "cores": {
                str(core): {
                    "ops": self.core_schedules[core].op_count,
                    "length": self.core_schedules[core].length,
                    "runtime": self.core_comm[core].runtime,
                    "teleports": self.core_comm[core].teleports,
                    "local_moves": self.core_comm[core].local_moves,
                }
                for core in self.occupied_cores
            },
            "link_pairs": {
                f"{a}-{b}": pairs
                for (a, b), pairs in sorted(self.link_pairs().items())
            },
            "partition": self.partition.to_dict(),
        }


def _intercore_epochs(
    statements: Sequence[Statement],
    homes: Sequence[int],
    assignment: Dict[Qubit, int],
    graph: CoreGraph,
) -> List[IntercoreEpoch]:
    """Walk the statement stream deriving inter-core movement.

    Residency starts at the partition's homes and migrates with every
    transfer (qubits stay where they were gathered until a later
    statement pulls them elsewhere — the cheapest consistent policy
    under the no-cloning chain model).
    """
    location: Dict[Qubit, int] = dict(assignment)
    epochs: List[IntercoreEpoch] = []
    for node, stmt in enumerate(statements):
        operands = (
            stmt.qubits if isinstance(stmt, Operation) else stmt.args
        )
        core = homes[node]
        transfers: List[IntercoreTransfer] = []
        link_loads: Dict[Link, int] = {}
        for q in operands:
            src = location[q]
            if src == core:
                continue
            route = tuple(graph.shortest_path(src, core))
            transfers.append(
                IntercoreTransfer(
                    qubit=q,
                    src=src,
                    dst=core,
                    hops=len(route),
                    route=route,
                )
            )
            for link in route:
                link_loads[link] = link_loads.get(link, 0) + 1
            location[q] = core
        if not transfers:
            continue
        rounds = max(t.hops for t in transfers)
        for link, load in link_loads.items():
            bw = graph.bandwidth(*link)
            rounds = max(rounds, math.ceil(load / bw))
        epochs.append(
            IntercoreEpoch(
                node=node,
                core=core,
                transfers=tuple(transfers),
                rounds=rounds,
                cycles=TELEPORT_CYCLES * rounds,
                link_loads=link_loads,
            )
        )
    return epochs


def schedule_multicore(
    statements: Sequence[Statement],
    graph: CoreGraph,
    partition: PartitionReport,
    core_machine: MultiSIMD,
    scheduler: Any,
) -> MulticoreSchedule:
    """Schedule one leaf statement list over ``graph``'s cores.

    Args:
        statements: the leaf module body (operations only after
            flattening).
        graph: the core interconnect.
        partition: qubit-to-core assignment
            (:func:`repro.multicore.partition.partition_qubits`).
        core_machine: the per-core Multi-SIMD(k,d) machine; per-core
            schedules are built at its ``k`` and billed against it.
        scheduler: a :class:`repro.toolflow.SchedulerConfig` (typed as
            ``Any`` to keep this module importable below the toolflow).
    """
    with span("multicore:makespan"):
        homes = statement_cores(statements, partition.assignment)
        per_core: Dict[int, List[Statement]] = {}
        for stmt, core in zip(statements, homes):
            per_core.setdefault(core, []).append(stmt)

        core_schedules: Dict[int, Schedule] = {}
        core_comm: Dict[int, CommStats] = {}
        for core in sorted(per_core):
            dag = DependenceDAG(per_core[core])
            sched = scheduler.schedule(
                dag, k=core_machine.k, d=core_machine.d
            )
            core_schedules[core] = sched
            core_comm[core] = derive_movement(sched, core_machine)

        epochs = _intercore_epochs(
            statements, homes, partition.assignment, graph
        )
    return MulticoreSchedule(
        graph=graph,
        partition=partition,
        core_machine=core_machine,
        statement_core=homes,
        core_schedules=core_schedules,
        core_comm=core_comm,
        epochs=epochs,
        algorithm=getattr(scheduler, "algorithm", ""),
    )
