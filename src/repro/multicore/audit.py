"""Deep bounds auditing for multi-core schedules (``QL50x``).

Extends the single-core schedule sanitizer
(:func:`repro.analysis.resource_rules.audit_schedule_bounds`) across
the interconnect. Two layers:

* every per-core sub-schedule is audited against its own static
  bounds — width, serialization, and communication, exactly the
  single-core battery (each core is a complete Multi-SIMD machine);
* the whole leaf must pay the *topology-aware* communication floor:
  a teleport whose nearest route crosses ``h`` links costs ``h``
  link-level epochs, so a leaf whose partition cuts any interaction
  edge owes at least ``TELEPORT_CYCLES * min_cut_hops`` attributed
  inter-core cycles (``QL503``).
"""

from __future__ import annotations

from typing import Optional

from ..analysis.diagnostics import Diagnostic, DiagnosticSet, Severity
from ..analysis.resource_rules import audit_schedule_bounds
from ..arch.machine import TELEPORT_CYCLES
from .makespan import MulticoreSchedule

__all__ = ["audit_multicore_bounds"]


def audit_multicore_bounds(
    msched: MulticoreSchedule,
    module: Optional[str] = None,
) -> DiagnosticSet:
    """Sanitize one leaf's multi-core schedule against its bounds.

    Per-core findings are anchored to ``<module>@core<N>`` so an
    aggregated report stays attributable; the inter-core floor check
    is anchored to the leaf itself.

    Returns:
        a :class:`DiagnosticSet`; empty iff every per-core schedule
        respects the single-core bounds and the attributed inter-core
        communication meets the topology floor.
    """
    diags = DiagnosticSet()
    for core in sorted(msched.core_schedules):
        sched = msched.core_schedules[core]
        comm = msched.core_comm.get(core)
        anchor = f"{module}@core{core}" if module else f"core{core}"
        diags.extend(
            audit_schedule_bounds(sched, comm=comm, module=anchor)
        )
    if msched.intercore_teleports:
        floor = TELEPORT_CYCLES * msched.min_cut_hops
        if msched.intercore_cycles < floor:
            diags.add(
                Diagnostic(
                    code="QL503",
                    severity=Severity.ERROR,
                    message=(
                        f"inter-core schedule bills "
                        f"{msched.intercore_cycles} cycle(s) for "
                        f"{msched.intercore_teleports} cut "
                        f"teleport(s) whose nearest route crosses "
                        f"{msched.min_cut_hops} link(s): below the "
                        f"{floor}-cycle topology floor"
                    ),
                    module=module,
                    rule="multicore-bounds",
                )
            )
    return diags
