"""Qubit-to-core partitioning for multi-core Multi-SIMD machines.

Which qubits live on which core decides how much inter-core
teleportation a leaf schedule pays. The partitioner works on the
*interaction graph* of a statement list — nodes are qubits, an edge's
weight counts the multi-qubit operations touching both endpoints — and
assigns qubits to cores so that

* every qubit is assigned to exactly one core,
* no core exceeds its capacity ``k * d`` (unbounded when ``d`` is
  unbounded),
* the **weighted cut** (total edge weight crossing cores) is greedily
  minimized.

The objective is deliberately topology-independent: at a fixed core
count the assignment is identical for a line, a mesh, or an all-to-all
interconnect, so makespans are pointwise comparable across topologies
(hop distances only ever grow from the all-to-all baseline; see the
monotonicity test battery).

Two phases, both seeded and deterministic:

1. **greedy grower** — qubits in descending total interaction weight
   (ties: first-touch order) each join the core with the highest
   affinity (attraction to already-placed neighbors), ties broken by
   load then core index;
2. **local-search refinement** (optional) — bounded best-improvement
   sweeps over the qubits in a seed-shuffled order, relocating a qubit
   whenever that strictly reduces the weighted cut without violating
   capacity.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.operation import Operation, Statement
from ..core.qubits import Qubit
from ..instrument import span
from .topology import CoreGraph

__all__ = [
    "PartitionError",
    "PartitionReport",
    "interaction_graph",
    "partition_qubits",
]

#: Refinement sweeps over all qubits before the local search gives up.
_MAX_REFINE_SWEEPS = 4


class PartitionError(ValueError):
    """The statement list cannot be partitioned onto the cores."""


@dataclass(frozen=True)
class PartitionReport:
    """Outcome of one qubit-to-core partition.

    Attributes:
        cores: core count partitioned over.
        capacity: per-core qubit capacity (``inf`` = unbounded).
        assignment: qubit -> core index, every touched qubit present.
        cut_edges: interacting qubit pairs split across cores.
        cut_weight: total interaction weight crossing cores.
        total_weight: total interaction weight (cut + internal).
        occupancy: qubits per core, indexed by core.
        refined: whether the local-search pass ran.
        moves: relocations the refinement pass accepted.
        seed: the seed the partition was computed under.
    """

    cores: int
    capacity: float
    assignment: Dict[Qubit, int]
    cut_edges: int
    cut_weight: int
    total_weight: int
    occupancy: Tuple[int, ...]
    refined: bool
    moves: int
    seed: int

    @property
    def qubits(self) -> int:
        return len(self.assignment)

    @property
    def balance(self) -> float:
        """Max-to-mean occupancy ratio (1.0 = perfectly balanced)."""
        if not self.assignment or not any(self.occupancy):
            return 1.0
        mean = len(self.assignment) / self.cores
        return max(self.occupancy) / mean

    @property
    def cut_fraction(self) -> float:
        """Cut weight over total weight (0.0 when nothing interacts)."""
        if self.total_weight == 0:
            return 0.0
        return self.cut_weight / self.total_weight

    def core_of(self, qubit: Qubit) -> int:
        return self.assignment[qubit]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cores": self.cores,
            "capacity": (
                "inf" if math.isinf(self.capacity) else self.capacity
            ),
            "qubits": self.qubits,
            "cut_edges": self.cut_edges,
            "cut_weight": self.cut_weight,
            "total_weight": self.total_weight,
            "cut_fraction": round(self.cut_fraction, 6),
            "balance": round(self.balance, 6),
            "occupancy": list(self.occupancy),
            "refined": self.refined,
            "moves": self.moves,
            "seed": self.seed,
            "assignment": {
                repr(q): core
                for q, core in sorted(
                    self.assignment.items(), key=lambda item: item[0]
                )
            },
        }


def interaction_graph(
    statements: Sequence[Statement],
) -> Tuple[List[Qubit], Dict[Tuple[Qubit, Qubit], int]]:
    """The interaction graph of a statement list.

    Returns ``(qubits, weights)``: qubits in first-touch order, and a
    weight per normalized qubit pair counting the statements touching
    both (call sites count once per iteration — a loop body re-couples
    its operands every trip).
    """
    order: List[Qubit] = []
    seen = set()
    weights: Dict[Tuple[Qubit, Qubit], int] = {}
    for stmt in statements:
        if isinstance(stmt, Operation):
            operands: Tuple[Qubit, ...] = stmt.qubits
            repeat = 1
        else:
            operands = stmt.args
            repeat = stmt.iterations
        for q in operands:
            if q not in seen:
                seen.add(q)
                order.append(q)
        for i, qa in enumerate(operands):
            for qb in operands[i + 1:]:
                key = (qa, qb) if qa <= qb else (qb, qa)
                weights[key] = weights.get(key, 0) + repeat
    return order, weights


def partition_qubits(
    statements: Sequence[Statement],
    graph: CoreGraph,
    capacity: Optional[float] = None,
    seed: int = 0,
    refine: bool = True,
) -> PartitionReport:
    """Partition the qubits of ``statements`` over ``graph``'s cores.

    Args:
        statements: the leaf module body being scheduled.
        graph: the core interconnect (only its core count matters —
            the objective is topology-independent by design).
        capacity: per-core qubit capacity, normally the per-core
            machine's ``k * d`` (``None`` = unbounded).
        seed: determinism seed; the same seed always yields the same
            partition.
        refine: run the local-search refinement pass.

    Raises:
        PartitionError: more qubits than total capacity.
    """
    cap = math.inf if capacity is None else float(capacity)
    if cap <= 0:
        raise PartitionError(f"capacity must be positive, got {capacity}")
    with span("multicore:partition"):
        return _partition(statements, graph, cap, seed, refine)


def _partition(
    statements: Sequence[Statement],
    graph: CoreGraph,
    cap: float,
    seed: int,
    refine: bool,
) -> PartitionReport:
    order, weights = interaction_graph(statements)
    cores = graph.cores
    if len(order) > cap * cores:
        raise PartitionError(
            f"{len(order)} qubit(s) exceed total capacity "
            f"{cap:g} x {cores} core(s)"
        )
    total_weight = sum(weights.values())

    # Adjacency with per-qubit total interaction weight.
    adjacency: Dict[Qubit, Dict[Qubit, int]] = {q: {} for q in order}
    strength: Dict[Qubit, int] = {q: 0 for q in order}
    for (qa, qb), w in weights.items():
        adjacency[qa][qb] = adjacency[qa].get(qb, 0) + w
        adjacency[qb][qa] = adjacency[qb].get(qa, 0) + w
        strength[qa] += w
        strength[qb] += w

    serial = {q: i for i, q in enumerate(order)}
    assignment: Dict[Qubit, int] = {}
    load = [0] * cores

    if cores == 1:
        for q in order:
            assignment[q] = 0
        load[0] = len(order)
    else:
        # Greedy grower: heaviest qubits first, each to the core it is
        # most attracted to.
        ranked = sorted(order, key=lambda q: (-strength[q], serial[q]))
        for q in ranked:
            affinity = [0] * cores
            for nb, w in adjacency[q].items():
                home = assignment.get(nb)
                if home is not None:
                    affinity[home] += w
            best = min(
                (c for c in range(cores) if load[c] < cap),
                key=lambda c: (-affinity[c], load[c], c),
            )
            assignment[q] = best
            load[best] += 1

    moves = 0
    if refine and cores > 1 and order:
        rng = random.Random(seed)
        visit = list(order)
        for _ in range(_MAX_REFINE_SWEEPS):
            rng.shuffle(visit)
            improved = False
            for q in visit:
                here = assignment[q]
                gain_here = 0
                gain = [0] * cores
                for nb, w in adjacency[q].items():
                    home = assignment[nb]
                    if home == here:
                        gain_here += w
                    gain[home] += w
                best, best_gain = here, gain_here
                for c in range(cores):
                    if c == here or load[c] >= cap:
                        continue
                    if gain[c] > best_gain or (
                        gain[c] == best_gain
                        and best != here
                        and c < best
                    ):
                        best, best_gain = c, gain[c]
                if best != here and best_gain > gain_here:
                    assignment[q] = best
                    load[here] -= 1
                    load[best] += 1
                    moves += 1
                    improved = True
            if not improved:
                break

    cut_edges = 0
    cut_weight = 0
    for (qa, qb), w in weights.items():
        if assignment[qa] != assignment[qb]:
            cut_edges += 1
            cut_weight += w
    return PartitionReport(
        cores=cores,
        capacity=cap,
        assignment=assignment,
        cut_edges=cut_edges,
        cut_weight=cut_weight,
        total_weight=total_weight,
        occupancy=tuple(load),
        refined=bool(refine and cores > 1),
        moves=moves,
        seed=seed,
    )


def assignment_signature(
    assignment: Dict[Qubit, int],
) -> Tuple[Tuple[str, int, int], ...]:
    """A hashable, order-stable form of an assignment (test helper and
    determinism probe)."""
    return tuple(
        (q.register, q.index, core)
        for q, core in sorted(assignment.items())
    )
