"""Multi-core Multi-SIMD: topology, partitioning, makespan, execution.

The single-core toolchain models one Multi-SIMD(k,d) chip. This
package lifts it one level: several such cores joined by an EPR-pair
teleport interconnect (:mod:`~repro.multicore.topology`), a
qubit-to-core partitioner minimizing the weighted interaction cut
(:mod:`~repro.multicore.partition`), an inter-core makespan scheduler
layered on the existing leaf schedulers
(:mod:`~repro.multicore.makespan`), a toolflow driver mirroring
:func:`repro.toolflow.compile_and_schedule`
(:mod:`~repro.multicore.toolflow`), and a discrete-event executor
extending the engine's ``realized == analytic + stalls`` invariant
across the interconnect (:mod:`~repro.multicore.execute`).

With one core — any topology — the whole stack is bit-identical to the
single-core pipeline; it is a strict generalization, not a fork.
"""

from .audit import audit_multicore_bounds
from .execute import (
    MulticoreEngineResult,
    MulticoreExecution,
    MulticoreStalls,
    execute_multicore_result,
    run_multicore_schedule,
)
from .makespan import (
    IntercoreEpoch,
    IntercoreTransfer,
    MulticoreSchedule,
    schedule_multicore,
    statement_cores,
)
from .partition import (
    PartitionError,
    PartitionReport,
    interaction_graph,
    partition_qubits,
)
from .toolflow import (
    MulticoreCompileResult,
    MulticoreConfig,
    compile_and_schedule_multicore,
)
from .topology import (
    TOPOLOGIES,
    TOPOLOGY_SCHEMA,
    CoreGraph,
    TopologyError,
    parse_topology,
)

__all__ = [
    "TOPOLOGY_SCHEMA",
    "TOPOLOGIES",
    "TopologyError",
    "CoreGraph",
    "parse_topology",
    "PartitionError",
    "PartitionReport",
    "interaction_graph",
    "partition_qubits",
    "IntercoreTransfer",
    "IntercoreEpoch",
    "MulticoreSchedule",
    "statement_cores",
    "schedule_multicore",
    "MulticoreConfig",
    "MulticoreCompileResult",
    "compile_and_schedule_multicore",
    "MulticoreStalls",
    "MulticoreEngineResult",
    "MulticoreExecution",
    "run_multicore_schedule",
    "execute_multicore_result",
    "audit_multicore_bounds",
]
