"""End-to-end multi-core toolflow: partition, schedule, compose.

The multi-core driver mirrors :func:`repro.toolflow.compile_and_schedule`
stage for stage — same front-end pass pipeline, same candidate widths,
same coarse composition with the same cost constants — swapping only
the per-leaf scheduling step: each leaf is partitioned over the core
graph and scheduled by :func:`repro.multicore.makespan.schedule_multicore`,
so a leaf's blackbox *length* is the slowest core's schedule length
and its *runtime* is the analytic makespan (intra-core runtime +
attributed inter-core communication).

Guarantee (tested over the whole benchmark registry): with one core —
any topology — every per-leaf schedule, movement list, profile entry,
and the composed program runtime are **bit-identical** to the
single-core pipeline's. The multi-core model is a strict
generalization, not a fork.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..arch.machine import GATE_CYCLES, TELEPORT_CYCLES, MultiSIMD
from ..core.module import Program
from ..instrument import span
from ..passes.decompose import DecomposeConfig, decompose_program
from ..passes.flatten import DEFAULT_FTH, FlattenResult, flatten_program
from ..passes.manager import PassManager
from ..passes.optimize import optimize_program
from ..passes.resource import estimate_resources
from ..sched.coarse import best_dim, coarse_length_profile
from ..sched.comm import naive_runtime
from ..sched.metrics import (
    comm_speedup,
    hierarchical_critical_path,
    parallel_speedup,
)
from ..toolflow import ModuleProfile, SchedulerConfig, _candidate_widths
from .makespan import MulticoreSchedule, schedule_multicore
from .partition import PartitionReport, partition_qubits
from .topology import CoreGraph

__all__ = [
    "MulticoreConfig",
    "MulticoreCompileResult",
    "compile_and_schedule_multicore",
]


@dataclass(frozen=True)
class MulticoreConfig:
    """Multi-core compilation/execution knobs.

    Attributes:
        graph: the core interconnect.
        seed: partitioner determinism seed.
        refine: run the partitioner's local-search pass.
        link_epr_rate: interconnect EPR generation rate per link in
            pairs/cycle (``inf`` = just-in-time, never stalls) — used
            by the execution engine, not the static pipeline.
    """

    graph: CoreGraph
    seed: int = 0
    refine: bool = True
    link_epr_rate: float = math.inf

    def __post_init__(self) -> None:
        if self.link_epr_rate <= 0:
            raise ValueError(
                f"link_epr_rate must be positive, got {self.link_epr_rate}"
            )

    @property
    def cores(self) -> int:
        return self.graph.cores

    def to_dict(self) -> Dict[str, Any]:
        return {
            "graph": self.graph.to_dict(),
            "seed": self.seed,
            "refine": self.refine,
            "link_epr_rate": (
                "inf"
                if math.isinf(self.link_epr_rate)
                else self.link_epr_rate
            ),
        }


@dataclass
class MulticoreCompileResult:
    """Everything a multi-core evaluation reads.

    The shape deliberately parallels
    :class:`repro.toolflow.CompileResult`: ``profiles`` carries the
    same per-width blackbox dimensions (so the coarse composition and
    ``best_dim`` selection are shared code), while ``leaf_schedules``
    holds the full-width :class:`MulticoreSchedule` per leaf in place
    of the single-core ``schedules`` map.
    """

    program: Program
    core_machine: MultiSIMD
    config: MulticoreConfig
    scheduler: SchedulerConfig
    profiles: Dict[str, ModuleProfile]
    leaf_schedules: Dict[str, MulticoreSchedule]
    partitions: Dict[str, PartitionReport]
    total_gates: int
    critical_path: int
    flattened_percent: float

    @property
    def graph(self) -> CoreGraph:
        return self.config.graph

    @property
    def entry_profile(self) -> ModuleProfile:
        return self.profiles[self.program.entry]

    @property
    def schedule_length(self) -> int:
        """Whole-program schedule length at the per-core width."""
        _, cost = best_dim(self.entry_profile.length, self.core_machine.k)
        return cost

    @property
    def runtime(self) -> int:
        """Whole-program analytic makespan at the per-core width."""
        _, cost = best_dim(self.entry_profile.runtime, self.core_machine.k)
        return cost

    @property
    def makespan(self) -> int:
        """Alias of :attr:`runtime` under its multi-core name."""
        return self.runtime

    @property
    def intercore_cycles(self) -> int:
        """Attributed inter-core communication, summed over leaves."""
        return sum(
            s.intercore_cycles for s in self.leaf_schedules.values()
        )

    @property
    def intercore_teleports(self) -> int:
        return sum(
            s.intercore_teleports for s in self.leaf_schedules.values()
        )

    @property
    def intercore_pairs(self) -> int:
        return sum(
            s.intercore_pairs for s in self.leaf_schedules.values()
        )

    @property
    def cut_weight(self) -> int:
        return sum(p.cut_weight for p in self.partitions.values())

    @property
    def max_hops(self) -> int:
        return max(
            (s.max_hops for s in self.leaf_schedules.values()), default=0
        )

    # -- the paper's headline metrics, one level up -------------------

    @property
    def parallel_speedup(self) -> float:
        return parallel_speedup(self.total_gates, self.schedule_length)

    @property
    def cp_speedup(self) -> float:
        return parallel_speedup(self.total_gates, self.critical_path)

    @property
    def comm_aware_speedup(self) -> float:
        return comm_speedup(self.total_gates, self.runtime)

    @property
    def naive_runtime(self) -> int:
        return naive_runtime(self.total_gates)

    def metrics(self) -> Dict[str, Any]:
        """Flat multi-core columns for sweep rows / CLI JSON output."""
        return {
            "multicore_cores": self.graph.cores,
            "multicore_makespan": self.runtime,
            "multicore_intercore_cycles": self.intercore_cycles,
            "multicore_intercore_teleports": self.intercore_teleports,
            "multicore_intercore_pairs": self.intercore_pairs,
            "multicore_cut_weight": self.cut_weight,
            "multicore_max_hops": self.max_hops,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MulticoreCompileResult({self.program.entry!r}, "
            f"{self.scheduler.algorithm}, {self.graph}, "
            f"{self.core_machine}, gates={self.total_gates}, "
            f"makespan={self.runtime})"
        )


def compile_and_schedule_multicore(
    program: Program,
    core_machine: MultiSIMD,
    config: MulticoreConfig,
    scheduler: Optional[SchedulerConfig] = None,
    fth: int = DEFAULT_FTH,
    decompose: bool = True,
    decompose_config: Optional[DecomposeConfig] = None,
    optimize: bool = False,
) -> MulticoreCompileResult:
    """Run the multi-core toolflow on ``program``.

    Args:
        program: hierarchical input program.
        core_machine: the *per-core* Multi-SIMD(k,d) configuration —
            the machine has ``config.cores`` of these.
        config: core graph and partitioner knobs.
        scheduler: leaf scheduler selection (default LPFS, the paper's
            configuration).
        fth / decompose / decompose_config / optimize: identical to
            :func:`repro.toolflow.compile_and_schedule`.

    Raises:
        PartitionError: a leaf's qubits exceed the total capacity
            ``cores * k * d``.
    """
    scheduler = scheduler or SchedulerConfig()
    graph = config.graph

    flat_holder: Dict[str, FlattenResult] = {}

    def _flatten(prog: Program) -> Program:
        result = flatten_program(prog, fth=fth)
        flat_holder["result"] = result
        return result.program

    pipeline = PassManager()
    if optimize:
        pipeline.add("optimize", lambda prog: optimize_program(prog)[0])
    if decompose:
        pipeline.add(
            "decompose",
            lambda prog: decompose_program(prog, decompose_config),
        )
    pipeline.add("flatten", _flatten)
    program = pipeline.run(program)
    flat = flat_holder["result"]

    k, d = core_machine.k, core_machine.d
    capacity = None if d is None else k * d
    widths = _candidate_widths(k)
    profiles: Dict[str, ModuleProfile] = {}
    leaf_schedules: Dict[str, MulticoreSchedule] = {}
    partitions: Dict[str, PartitionReport] = {}

    with span("multicore:schedule"):
        for name in program.topological_order():
            mod = program.module(name)
            profile = ModuleProfile(name, mod.is_leaf)
            if mod.is_leaf:
                body = list(mod.body)
                part = partition_qubits(
                    body,
                    graph,
                    capacity=capacity,
                    seed=config.seed,
                    refine=config.refine,
                )
                partitions[name] = part
                for w in widths:
                    msched = schedule_multicore(
                        body,
                        graph,
                        part,
                        core_machine.with_k(w),
                        scheduler,
                    )
                    profile.length[w] = max(msched.intra_length, 1)
                    profile.runtime[w] = max(msched.makespan, 1)
                    if w == k:
                        leaf_schedules[name] = msched
            else:
                callees = sorted(mod.callees())
                length_dims = {c: profiles[c].length for c in callees}
                runtime_dims = {c: profiles[c].runtime for c in callees}
                lengths = coarse_length_profile(
                    mod, length_dims, widths, gate_cost=GATE_CYCLES,
                    call_overhead=0,
                )
                runtimes = coarse_length_profile(
                    mod,
                    runtime_dims,
                    widths,
                    gate_cost=GATE_CYCLES + TELEPORT_CYCLES,
                    call_overhead=TELEPORT_CYCLES,
                )
                for w in widths:
                    profile.length[w] = max(lengths[w], 1)
                    profile.runtime[w] = max(runtimes[w], 1)
            profiles[name] = profile

    with span("multicore:estimate"):
        resources = estimate_resources(program)
        cp = hierarchical_critical_path(program)
    return MulticoreCompileResult(
        program=program,
        core_machine=core_machine,
        config=config,
        scheduler=scheduler,
        profiles=profiles,
        leaf_schedules=leaf_schedules,
        partitions=partitions,
        total_gates=resources.total_gates,
        critical_path=max(cp[program.entry], 1),
        flattened_percent=flat.percent_flattened,
    )
