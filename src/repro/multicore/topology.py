"""Core interconnect topologies for multi-core Multi-SIMD machines.

The single-core pipeline models one Multi-SIMD(k,d) chip. The 2024-25
multi-core literature (TeleSABRE, arXiv 2505.08928; dependency-aware
multi-core scheduling, arXiv 2607.00469) studies the next level up:
several such cores joined by an EPR-pair teleport interconnect with a
*topology* and a per-link bandwidth. :class:`CoreGraph` is that
interconnect: an undirected connected graph over core indices whose
edges carry an EPR bandwidth (pairs deliverable per teleport round).

Distances are hop counts over unweighted BFS; inter-core teleports are
billed by hop count (a qubit crossing ``h`` links consumes ``h`` EPR
pairs — one per link — and needs ``h`` swap-teleport rounds unless
links pipeline, see :mod:`repro.multicore.makespan`).

The graph round-trips through a schema-versioned dict
(``repro.core-graph/1``) so sweeps and the daemon can carry it in
JSON documents.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "TOPOLOGY_SCHEMA",
    "TOPOLOGIES",
    "TopologyError",
    "CoreGraph",
    "parse_topology",
]

#: Version tag of the CoreGraph dict layout.
TOPOLOGY_SCHEMA = "repro.core-graph/1"

#: Named factory topologies accepted by the CLI / sweep / daemon.
TOPOLOGIES = ("line", "ring", "mesh", "all-to-all")


class TopologyError(ValueError):
    """An invalid core graph (bad edge, disconnected, bad name)."""


Link = Tuple[int, int]
Edge = Tuple[int, int, float]


@dataclass(frozen=True)
class CoreGraph:
    """An undirected, connected interconnect over ``cores`` cores.

    Attributes:
        cores: number of cores (>= 1).
        edges: normalized ``(a, b, bandwidth)`` triples with ``a < b``,
            sorted, no duplicates; bandwidth is EPR pairs per teleport
            round on that link.
        name: topology label for reports (``line``/``ring``/``mesh``/
            ``all-to-all``/``custom``).
    """

    cores: int
    edges: Tuple[Edge, ...]
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise TopologyError(f"cores must be >= 1, got {self.cores}")
        seen = set()
        for a, b, bw in self.edges:
            if not (0 <= a < b < self.cores):
                raise TopologyError(
                    f"bad edge ({a}, {b}) for {self.cores} core(s) "
                    "(need 0 <= a < b < cores)"
                )
            if (a, b) in seen:
                raise TopologyError(f"duplicate edge ({a}, {b})")
            if not bw > 0:
                raise TopologyError(
                    f"link ({a}, {b}) bandwidth must be positive, got {bw}"
                )
            seen.add((a, b))
        if list(self.edges) != sorted(self.edges):
            raise TopologyError("edges must be sorted (use from_edges)")
        hops = self.hop_matrix()
        if any(h < 0 for row in hops for h in row):
            raise TopologyError(
                f"core graph is disconnected ({self.cores} cores, "
                f"{len(self.edges)} links)"
            )

    # -- construction -------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        cores: int,
        edges: Iterable[Sequence[Any]],
        name: str = "custom",
    ) -> "CoreGraph":
        """Build from an explicit edge list, normalizing orientation.

        Each entry is ``(a, b)`` or ``(a, b, bandwidth)``; bandwidth
        defaults to 1.0. Duplicate links (either orientation) are an
        error.
        """
        normalized: List[Edge] = []
        for edge in edges:
            if len(edge) == 2:
                a, b = edge
                bw = 1.0
            elif len(edge) == 3:
                a, b, bw = edge
            else:
                raise TopologyError(f"bad edge entry {edge!r}")
            a, b = int(a), int(b)
            if a == b:
                raise TopologyError(f"self-loop on core {a}")
            if a > b:
                a, b = b, a
            normalized.append((a, b, float(bw)))
        return cls(cores=cores, edges=tuple(sorted(normalized)), name=name)

    @classmethod
    def line(cls, cores: int, bandwidth: float = 1.0) -> "CoreGraph":
        """Cores on a line: ``i -- i+1``."""
        return cls(
            cores=cores,
            edges=tuple(
                (i, i + 1, float(bandwidth)) for i in range(cores - 1)
            ),
            name="line",
        )

    @classmethod
    def ring(cls, cores: int, bandwidth: float = 1.0) -> "CoreGraph":
        """The line closed into a cycle (a 2-core ring is just a line:
        the wrap link would duplicate the only edge)."""
        if cores <= 2:
            line = cls.line(cores, bandwidth)
            return cls(cores=cores, edges=line.edges, name="ring")
        edges = [(i, i + 1, float(bandwidth)) for i in range(cores - 1)]
        edges.append((0, cores - 1, float(bandwidth)))
        return cls(cores=cores, edges=tuple(sorted(edges)), name="ring")

    @classmethod
    def mesh(cls, cores: int, bandwidth: float = 1.0) -> "CoreGraph":
        """A near-square 2D grid: ``rows`` is the largest divisor of
        ``cores`` not exceeding ``sqrt(cores)`` (4 -> 2x2, 6 -> 2x3,
        prime counts degenerate to a line)."""
        rows = 1
        r = 1
        while r * r <= cores:
            if cores % r == 0:
                rows = r
            r += 1
        cols = cores // rows
        edges: List[Edge] = []
        for i in range(rows):
            for j in range(cols):
                node = i * cols + j
                if j + 1 < cols:
                    edges.append((node, node + 1, float(bandwidth)))
                if i + 1 < rows:
                    edges.append((node, node + cols, float(bandwidth)))
        return cls(cores=cores, edges=tuple(sorted(edges)), name="mesh")

    @classmethod
    def all_to_all(cls, cores: int, bandwidth: float = 1.0) -> "CoreGraph":
        """Every core directly linked to every other (hop distance 1)."""
        return cls(
            cores=cores,
            edges=tuple(
                (a, b, float(bandwidth))
                for a in range(cores)
                for b in range(a + 1, cores)
            ),
            name="all-to-all",
        )

    # -- shape --------------------------------------------------------

    def neighbors(self, core: int) -> List[int]:
        """Adjacent cores, ascending (the BFS tie-break order)."""
        out = [b for a, b, _ in self.edges if a == core]
        out += [a for a, b, _ in self.edges if b == core]
        return sorted(out)

    def bandwidth(self, a: int, b: int) -> float:
        """Bandwidth of the direct link ``a -- b``."""
        if a > b:
            a, b = b, a
        for x, y, bw in self.edges:
            if (x, y) == (a, b):
                return bw
        raise TopologyError(f"no link between cores {a} and {b}")

    def hop_matrix(self) -> Tuple[Tuple[int, ...], ...]:
        """All-pairs hop distances via BFS (-1 = unreachable)."""
        return _hop_matrix(self)

    def hops(self, a: int, b: int) -> int:
        return self.hop_matrix()[a][b]

    @property
    def diameter(self) -> int:
        """Largest hop distance between any two cores."""
        return max((h for row in self.hop_matrix() for h in row), default=0)

    def shortest_path(self, a: int, b: int) -> List[Link]:
        """The links of one shortest ``a -> b`` route, as normalized
        ``(lo, hi)`` pairs in traversal order. Deterministic: BFS visits
        neighbors ascending, so the route is the lexicographically
        smallest shortest path."""
        return list(_shortest_path(self, a, b))

    # -- serialization ------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": TOPOLOGY_SCHEMA,
            "name": self.name,
            "cores": self.cores,
            "edges": [[a, b, bw] for a, b, bw in self.edges],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CoreGraph":
        if not isinstance(data, dict):
            raise TopologyError("core graph document must be an object")
        schema = data.get("schema")
        if schema != TOPOLOGY_SCHEMA:
            raise TopologyError(
                f"unsupported core-graph schema {schema!r} "
                f"(expected {TOPOLOGY_SCHEMA!r})"
            )
        return cls.from_edges(
            cores=int(data["cores"]),
            edges=data.get("edges", ()),
            name=str(data.get("name", "custom")),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}({self.cores})"


@lru_cache(maxsize=256)
def _hop_matrix(graph: CoreGraph) -> Tuple[Tuple[int, ...], ...]:
    adjacency = {c: graph.neighbors(c) for c in range(graph.cores)}
    rows: List[Tuple[int, ...]] = []
    for start in range(graph.cores):
        dist = [-1] * graph.cores
        dist[start] = 0
        frontier = [start]
        while frontier:
            nxt: List[int] = []
            for node in frontier:
                for nb in adjacency[node]:
                    if dist[nb] < 0:
                        dist[nb] = dist[node] + 1
                        nxt.append(nb)
            frontier = nxt
        rows.append(tuple(dist))
    return tuple(rows)


@lru_cache(maxsize=4096)
def _shortest_path(graph: CoreGraph, a: int, b: int) -> Tuple[Link, ...]:
    if not (0 <= a < graph.cores and 0 <= b < graph.cores):
        raise TopologyError(f"no such cores ({a}, {b})")
    if a == b:
        return ()
    adjacency = {c: graph.neighbors(c) for c in range(graph.cores)}
    parent: Dict[int, int] = {a: a}
    frontier = [a]
    while frontier and b not in parent:
        nxt: List[int] = []
        for node in frontier:
            for nb in adjacency[node]:
                if nb not in parent:
                    parent[nb] = node
                    nxt.append(nb)
        frontier = nxt
    if b not in parent:
        raise TopologyError(f"cores {a} and {b} are not connected")
    route: List[int] = [b]
    while route[-1] != a:
        route.append(parent[route[-1]])
    route.reverse()
    return tuple(
        (min(u, v), max(u, v)) for u, v in zip(route, route[1:])
    )


def parse_topology(
    name: str, cores: int, link_bw: float = 1.0
) -> CoreGraph:
    """Build a named topology from CLI/sweep/daemon spellings.

    Accepts the names in :data:`TOPOLOGIES` (``all_to_all`` is
    tolerated as an alias of ``all-to-all``).

    Raises:
        TopologyError: unknown name, bad core count, or bad bandwidth.
    """
    key = name.strip().lower().replace("_", "-")
    if key == "line":
        return CoreGraph.line(cores, link_bw)
    if key == "ring":
        return CoreGraph.ring(cores, link_bw)
    if key == "mesh":
        return CoreGraph.mesh(cores, link_bw)
    if key == "all-to-all":
        return CoreGraph.all_to_all(cores, link_bw)
    raise TopologyError(
        f"unknown topology {name!r} (have {', '.join(TOPOLOGIES)})"
    )
