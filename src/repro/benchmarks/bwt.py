"""Binary Welded Tree (BWT) — quantum random walk from entry to exit of
two welded binary trees (Childs et al., STOC'03).

Structure follows the Scaffold benchmark: the walker's position is a
node label of ``n + 2`` qubits; for each of the four edge colors there
is an *oracle* module that computes the colored neighbour of the
current node into a scratch register (reversible CTQG-style arithmetic:
XOR masks plus a ripple add), and a *walk* module applies the
Hamiltonian step for that color (a controlled exchange between node and
neighbour registers conjugated by rotations). ``main`` iterates the
four-color step ``s`` times (a compile-time loop on the call site).

Parameters: ``n`` — tree height; ``s`` — number of walk steps (the
paper runs n=300, s=3000).
"""

from __future__ import annotations

import math

from ..core.builder import ProgramBuilder
from ..core.module import Program
from ..core.qubits import AncillaAllocator
from ..passes import ctqg
from .common import hadamard_all

__all__ = ["build_bwt"]

#: XOR masks defining the four edge colorings (arbitrary fixed
#: constants, as in the benchmark's welding function).
_COLOR_MASKS = (0b0101, 0b0110, 0b1001, 0b1111)


def build_bwt(n: int = 8, s: int = 16) -> Program:
    """Build the BWT quantum-walk benchmark.

    Args:
        n: tree height; node labels use ``n + 2`` qubits.
        s: walk steps (each step applies all four edge colors).
    """
    if n < 2:
        raise ValueError(f"BWT needs n >= 2, got {n}")
    if s < 1:
        raise ValueError(f"BWT needs s >= 1, got {s}")
    width = n + 2

    pb = ProgramBuilder()

    # --- per-color neighbour oracles ------------------------------------
    for c, mask in enumerate(_COLOR_MASKS):
        oracle = pb.module(f"oracle_color{c}")
        node = oracle.param_register("node", width)
        nbr = oracle.param_register("nbr", width)
        valid = oracle.param_register("valid", 1)[0]
        alloc = AncillaAllocator(prefix=f"oa{c}")
        # neighbour = node XOR color-dependent welding mask, then a
        # ripple add of a color offset (keeps the arithmetic profile of
        # the CTQG-generated oracle).
        for op in ctqg.xor_into(list(node), list(nbr)):
            oracle.emit(op)
        wide_mask = mask * (2 ** (width - 4) + 1) if width >= 4 else mask
        for op in ctqg.load_const(wide_mask % (2 ** width), list(nbr)):
            oracle.emit(op)
        for op in ctqg.add_const(c + 1, list(nbr), alloc):
            oracle.emit(op)
        # validity flag: neighbour != 0 (edge exists), approximated by
        # comparing against 1.
        for op in ctqg.compare_lt_const(list(nbr), 1, valid, alloc):
            oracle.emit(op)
        oracle.x(valid)

    # --- walk step for one color ------------------------------------------
    for c in range(len(_COLOR_MASKS)):
        walk = pb.module(f"walk_color{c}")
        node = walk.param_register("node", width)
        nbr = walk.param_register("nbr", width)
        valid = walk.param_register("valid", 1)[0]
        walk.call(f"oracle_color{c}", list(node) + list(nbr) + [valid])
        # Controlled exchange of node/neighbour amplitude: a Fredkin per
        # bit pair under the validity flag, conjugated by rotations
        # (the e^{-iHt} step for this color's subgraph).
        theta = math.pi / (2 * (c + 2))
        walk.rx(valid, theta)
        for b in range(width):
            walk.fredkin(valid, node[b], nbr[b])
        walk.rx(valid, -theta)
        # Uncompute the oracle so the scratch register is reusable.
        walk.x(valid)
        walk.call(f"oracle_color{c}", list(node) + list(nbr) + [valid])

    # --- one full step over all four colors -------------------------------
    step = pb.module("walk_step")
    node = step.param_register("node", width)
    nbr = step.param_register("nbr", width)
    valid = step.param_register("valid", 1)[0]
    for c in range(len(_COLOR_MASKS)):
        step.call(f"walk_color{c}", list(node) + list(nbr) + [valid])

    # --- main ---------------------------------------------------------------
    main = pb.module("main")
    node = main.register("node", width)
    nbr = main.register("nbr", width)
    valid = main.register("valid", 1)[0]
    # Start at the entry node (label 1).
    main.x(node[0])
    for op in hadamard_all(list(nbr)):
        main.emit(op)
    main.call(
        "walk_step", list(node) + list(nbr) + [valid], iterations=s
    )
    for q in node:
        main.meas_z(q)
    return pb.build("main")
