"""Class Number (CN) — computing the class group of a real quadratic
number field (Hallgren, STOC'05).

Structure follows the Scaffold benchmark: a period-finding core over a
function computed with *fixed-point arithmetic on ideals* — reduce /
compose operations built from multiplies, modular additions and
comparisons of ``p``-digit fixed-point registers. All of that
arithmetic is CTQG-generated reversible logic, which makes CN (like BF
and SHA-1) dominated by locally-serialized adder chains (Section 5.2).

Parameters: ``p`` — fixed-point digits after the radix point (the paper
runs p=6); registers are ``4 * p`` bits wide (integer + fraction).
"""

from __future__ import annotations


from ..core.builder import ProgramBuilder
from ..core.module import Program
from ..core.qubits import AncillaAllocator
from ..passes import ctqg
from .common import hadamard_all, inverse_qft_ops

__all__ = ["build_class_number"]


def build_class_number(
    p: int = 3, control_bits: int = None, steps: int = None
) -> Program:
    """Build the CN benchmark.

    Args:
        p: fixed-point precision digits; register width is ``4 * p``.
        control_bits: width of the period-finding control register
            (default ``2 * p``).
        steps: ideal-reduction steps per controlled evaluation
            (default ``p``), iterated via the call site.
    """
    if p < 1:
        raise ValueError(f"CN needs p >= 1, got {p}")
    width = 4 * p
    control_bits = control_bits or 2 * p
    steps = steps or p
    modulus = (1 << (width - 1)) - 1  # fits with headroom

    pb = ProgramBuilder()

    # --- ideal reduction: one fixed-point arithmetic round ----------------
    reduce_mod = pb.module("reduce_ideal")
    acoef = reduce_mod.param_register("a", width)
    bcoef = reduce_mod.param_register("b", width)
    alloc = AncillaAllocator(prefix="ra")
    scratch = reduce_mod.register("prod", width)
    flag = reduce_mod.register("rflag", 1)[0]
    # prod += a * b (truncated fixed-point multiply)
    for op in ctqg.multiply(list(acoef)[: width // 2], list(bcoef)[: width // 2], list(scratch), alloc):
        reduce_mod.emit(op)
    # b = (b + delta) mod M  — the reduction step's translation
    for op in ctqg.add_const_mod(3 * p + 1, list(bcoef), modulus, alloc):
        reduce_mod.emit(op)
    # flag ^= (a < b): decides the reduction direction
    carry = alloc.alloc_one()
    for op in ctqg.compare_lt(list(acoef), list(bcoef), flag, carry):
        reduce_mod.emit(op)
    alloc.free([carry])
    # conditional swap of the coefficient registers
    for qa, qb in zip(acoef, bcoef):
        reduce_mod.fredkin(flag, qa, qb)
    # uncompute the direction flag (same compare after the swap is the
    # complementary test)
    carry = alloc.alloc_one()
    for op in ctqg.compare_lt(list(bcoef), list(acoef), flag, carry):
        reduce_mod.emit(op)
    alloc.free([carry])
    # undo the product scratch
    for op in ctqg.multiply(list(acoef)[: width // 2], list(bcoef)[: width // 2], list(scratch), alloc):
        reduce_mod.emit(op)

    # --- controlled evaluation of the periodic function -------------------
    evaluate = pb.module("controlled_evaluate")
    ectl = evaluate.param_register("ctl", 1)[0]
    ea = evaluate.param_register("a", width)
    eb = evaluate.param_register("b", width)
    ealloc = AncillaAllocator(prefix="ca")
    # seed the ideal registers under control
    for op in ctqg.controlled_xor(ectl, [ea[i] for i in range(0, width, 2)], [eb[i] for i in range(0, width, 2)]):
        evaluate.emit(op)
    evaluate.call("reduce_ideal", list(ea) + list(eb), iterations=steps)

    # --- main: period finding ------------------------------------------------
    main = pb.module("main")
    control = main.register("control", control_bits)
    a = main.register("a", width)
    b = main.register("b", width)
    for op in hadamard_all(list(control)):
        main.emit(op)
    # initial ideal: unit ideal (1.0 in fixed point)
    main.x(a[p])
    main.x(b[0])
    for j in range(control_bits):
        main.call(
            "controlled_evaluate",
            [control[j]] + list(a) + list(b),
            iterations=2 ** j if j < 8 else 2 ** 8,
        )
    for op in inverse_qft_ops(list(control)):
        main.emit(op)
    for q in control:
        main.meas_z(q)
    return pb.build("main")
