"""SHA-1 (reverse hash) — the compression function as a Grover oracle.

Structure follows the Scaffold benchmark: the message is recovered by
running Grover's search with the SHA-1 compression function as the
oracle. The compression function (FIPS 180-4) is pure CTQG territory:
the message schedule expands via XORs and rotate-lefts (free
relabelings), and each of the 80 rounds applies a round function (Ch /
Parity / Maj by round quarter) plus ripple-carry additions into the
working state. The result is the longest, most serialized adder chains
in the suite — which is why SHA-1 shows the paper's largest
local-memory speedup (9.82x, Section 5.3).

Parameters: ``n`` — message bits (the paper runs n=448); ``word_bits``
scales the 32-bit words down for tractable reproduction runs;
``rounds`` scales the 80 rounds.
"""

from __future__ import annotations

from typing import List

from ..core.builder import ProgramBuilder
from ..core.module import Program
from ..core.qubits import AncillaAllocator, Qubit
from ..passes import ctqg
from .common import hadamard_all, mcz_ops

__all__ = ["build_sha1"]

#: FIPS 180-4 round constants (one per 20-round quarter).
_ROUND_K = (0x5A827999, 0x6ED9EBA1, 0x8F1BBCDC, 0xCA62C1D6)


def build_sha1(
    n: int = 128,
    word_bits: int = 32,
    rounds: int = 80,
    grover_iterations: int = None,
) -> Program:
    """Build the SHA-1 preimage benchmark.

    Args:
        n: message bits; the schedule register holds ``n / word_bits``
            words (min 16 words for full SHA-1 shape, fewer allowed for
            reduced runs).
        word_bits: word width (32 for faithful SHA-1; smaller for
            tractable fine scheduling).
        rounds: compression rounds (80 for faithful SHA-1).
        grover_iterations: outer Grover iterations (kept symbolic on the
            call site; defaults to ``2**(n//2)`` capped at ``2**40``).
    """
    if word_bits < 2:
        raise ValueError("word_bits must be >= 2")
    if rounds < 4:
        raise ValueError("need at least 4 rounds (one per quarter)")
    n_words = max(4, n // word_bits)
    if grover_iterations is None:
        grover_iterations = 2 ** min(n // 2, 40)

    pb = ProgramBuilder()
    w = word_bits

    # --- message schedule expansion: w[t] ^= rotl(w[t-3]^w[t-8]..., 1) --
    expand = pb.module("schedule_expand")
    words: List[List[Qubit]] = [
        list(expand.param_register(f"w{i}", w)) for i in range(n_words)
    ]
    target = list(expand.param_register("wt", w))
    taps = [3 % n_words, min(8, n_words - 1), min(14, n_words - 1)]
    for tap in taps:
        for op in ctqg.xor_into(ctqg.rotl(words[tap], 1), target):
            expand.emit(op)

    # --- round functions (Ch / Parity / Maj) into a temp register -------
    for name, fn in (
        ("f_ch", ctqg.ch_into),
        ("f_parity", ctqg.parity_into),
        ("f_maj", ctqg.maj_into),
    ):
        mod = pb.module(name)
        x = mod.param_register("x", w)
        y = mod.param_register("y", w)
        z = mod.param_register("z", w)
        out = mod.param_register("out", w)
        for op in fn(list(x), list(y), list(z), list(out)):
            mod.emit(op)

    # --- one compression round for each quarter --------------------------
    # temp = rotl(a,5) + f(b,c,d) + e + K + W[t]; then the register
    # rotation (b = rotl(b,30) etc.) is free relabeling handled by the
    # caller's argument order.
    quarter_f = ("f_ch", "f_parity", "f_maj", "f_parity")
    for quarter in range(4):
        rnd = pb.module(f"round_q{quarter}")
        a = list(rnd.param_register("a", w))
        b = list(rnd.param_register("b", w))
        c = list(rnd.param_register("c", w))
        d = list(rnd.param_register("d", w))
        e = list(rnd.param_register("e", w))
        wt = list(rnd.param_register("wt", w))
        ftmp = list(rnd.register("ftmp", w))
        alloc = AncillaAllocator(prefix=f"sa{quarter}")
        rnd.call(quarter_f[quarter], b + c + d + ftmp)
        carry = alloc.alloc_one()
        # e += rotl(a, 5)
        for op in ctqg.cuccaro_add(ctqg.rotl(a, 5), e, carry):
            rnd.emit(op)
        # e += f(b, c, d)
        for op in ctqg.cuccaro_add(ftmp, e, carry):
            rnd.emit(op)
        # e += K_quarter
        for op in ctqg.add_const(
            _ROUND_K[quarter] % (2 ** w), e, alloc
        ):
            rnd.emit(op)
        # e += W[t]
        for op in ctqg.cuccaro_add(wt, e, carry):
            rnd.emit(op)
        alloc.free([carry])
        # uncompute f into ftmp so the temp register is clean
        rnd.call(quarter_f[quarter], b + c + d + ftmp)
        # b = rotl(b, 30) is a relabeling: no gates (Section: rotl).

    # --- the full compression function -----------------------------------
    compress = pb.module("sha1_compress")
    state = [list(compress.param_register(f"h{i}", w)) for i in range(5)]
    msg = [
        list(compress.param_register(f"m{i}", w)) for i in range(n_words)
    ]
    wreg = list(compress.register("wexp", w))
    rounds_per_quarter = max(1, rounds // 4)
    for quarter in range(4):
        # message schedule expansion feeding this quarter
        compress.call(
            "schedule_expand",
            [q for word in msg for q in word] + wreg,
        )
        # the rounds of this quarter, with the working-state rotation
        # expressed by rotating the argument bindings each call
        order = [0, 1, 2, 3, 4]
        for r in range(rounds_per_quarter):
            args = (
                state[order[0]]
                + state[order[1]]
                + state[order[2]]
                + state[order[3]]
                + state[order[4]]
                + wreg
            )
            compress.call(f"round_q{quarter}", args)
            order = [order[4]] + order[:4]

    # --- Grover oracle wrapper --------------------------------------------
    oracle = pb.module("hash_oracle")
    ostate = [list(oracle.param_register(f"h{i}", w)) for i in range(5)]
    omsg = [
        list(oracle.param_register(f"m{i}", w)) for i in range(n_words)
    ]
    flat_state = [q for word in ostate for q in word]
    flat_msg = [q for word in omsg for q in word]
    oalloc = AncillaAllocator(prefix="ha")
    oracle.call("sha1_compress", flat_state + flat_msg)
    # phase-flip when the digest matches the target (all-ones pattern
    # stands in for the published digest)
    for op in mcz_ops(flat_state[: 2 * w], oalloc):
        oracle.emit(op)
    oracle.call("sha1_compress", flat_state + flat_msg)

    # --- main: Grover over the message ---------------------------------------
    main = pb.module("main")
    mstate = [list(main.register(f"h{i}", w)) for i in range(5)]
    mmsg = [list(main.register(f"m{i}", w)) for i in range(n_words)]
    flat_mmsg = [q for word in mmsg for q in word]
    flat_mstate = [q for word in mstate for q in word]
    for op in hadamard_all(flat_mmsg):
        main.emit(op)
    main.call(
        "hash_oracle",
        flat_mstate + flat_mmsg,
        iterations=grover_iterations,
    )
    for q in flat_mmsg:
        main.meas_z(q)
    return pb.build("main")
