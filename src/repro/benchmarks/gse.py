"""Ground State Estimation (GSE) — quantum phase estimation of a
molecular Hamiltonian's ground-state energy.

Structure follows the Scaffold benchmark (Whitfield-Biamonte-Aspuru-
Guzik second-quantised simulation): a precision register is put in
superposition; for each precision bit ``j``, a controlled Trotterised
time evolution ``U^(2^j)`` of the molecular Hamiltonian is applied to
the system register; an inverse QFT reads out the phase.

Each Trotter step is a ladder of single-Z rotations (one per orbital,
the ``h_pp`` terms) and CNOT-conjugated ZZ rotation pairs (the
``h_pqqp`` interaction terms) — exactly the "two key qubit registers ...
rarely moved out of a SIMD region once in place, with long sequences of
operations on the same qubits" profile that makes GSE the paper's
biggest communication-aware win (+308%, Section 5.2).

Parameters: ``m`` — molecular size; the system register holds ``m``
spin-orbital qubits (the paper's M=10 is a molecular-weight
parameterisation; we map it directly to orbital count).
"""

from __future__ import annotations


from ..core.builder import ProgramBuilder
from ..core.module import Program
from .common import hadamard_all, inverse_qft_ops

__all__ = ["build_gse"]


def build_gse(
    m: int = 10,
    precision_bits: int = 6,
    trotter_slices: int = 4,
) -> Program:
    """Build the GSE phase-estimation benchmark.

    Args:
        m: number of system (spin-orbital) qubits.
        precision_bits: width of the phase-readout register.
        trotter_slices: first-order Trotter slices per controlled
            evolution (each slice is one pass over all Hamiltonian
            terms).
    """
    if m < 2:
        raise ValueError(f"GSE needs m >= 2, got {m}")
    if precision_bits < 1:
        raise ValueError("need at least one precision bit")

    pb = ProgramBuilder()

    # --- one controlled Trotter slice -----------------------------------
    # Angles are deterministic pseudo-physical coefficients: h_pp and
    # h_pqqp magnitudes decay with orbital index, as in real molecular
    # integrals.
    slice_mod = pb.module("trotter_slice")
    ctrl = slice_mod.param_register("ctl", 1)[0]
    sys = slice_mod.param_register("sys", m)
    for p in range(m):
        theta = 0.35 / (1 + p)
        slice_mod.crz(ctrl, sys[p], theta)
    for p in range(m - 1):
        q = p + 1
        phi = 0.12 / (1 + p + q)
        slice_mod.cnot(sys[p], sys[q])
        slice_mod.crz(ctrl, sys[q], phi)
        slice_mod.cnot(sys[p], sys[q])

    # --- controlled evolution for one precision bit ---------------------
    # U^(2^j) is 2^j repetitions of the Trotterised step; the repetition
    # lives on the call site so large powers never unroll.
    evolutions = []
    for j in range(precision_bits):
        ev = pb.module(f"controlled_U_pow{j}")
        ectl = ev.param_register("ctl", 1)[0]
        esys = ev.param_register("sys", m)
        ev.call(
            "trotter_slice",
            [ectl] + list(esys),
            iterations=trotter_slices * (2 ** j),
        )
        evolutions.append(ev.name)

    # --- main: phase estimation -----------------------------------------
    main = pb.module("main")
    phase = main.register("phase", precision_bits)
    system = main.register("system", m)
    # Reference (Hartree-Fock-like) state preparation: occupy the lowest
    # m/2 orbitals.
    for p in range(m // 2):
        main.x(system[p])
    for op in hadamard_all(list(phase)):
        main.emit(op)
    for j, name in enumerate(evolutions):
        main.call(name, [phase[j]] + list(system))
    for op in inverse_qft_ops(list(phase)):
        main.emit(op)
    for q in phase:
        main.meas_z(q)
    return pb.build("main")
