"""Boolean Formula (BF) — a winning strategy for the game of Hex via
the AND-OR formula evaluation algorithm (Ambainis et al., FOCS'07).

Structure follows the Scaffold benchmark: the Hex position evaluation
is a balanced NAND tree over the ``x * y`` board cells; each NAND gate
is CTQG-generated reversible logic (Toffoli + X), the tree is evaluated
bottom-up into ancilla layers, phase-kicked, and uncomputed; a quantum
walk (Grover-like iteration) drives the evaluation. CTQG output is
"highly locally serialized" (Section 5.2), which BF inherits: each NAND
layer depends on the previous one.

Parameters: ``x``, ``y`` — Hex board dimensions (the paper runs 2x2).
"""

from __future__ import annotations

import math
from typing import List

from ..core.builder import ProgramBuilder
from ..core.module import Program
from ..core.qubits import Qubit
from .common import hadamard_all

__all__ = ["build_boolean_formula"]


def build_boolean_formula(
    x: int = 2, y: int = 2, walk_steps: int = None
) -> Program:
    """Build the BF (Hex) benchmark.

    Args:
        x, y: board dimensions; the formula has ``x * y`` leaves
            (rounded up to a power of two).
        walk_steps: quantum-walk iterations (default ``~ sqrt(N)`` for
            ``N`` leaves, the algorithm's query complexity).
    """
    if x < 1 or y < 1:
        raise ValueError("board dimensions must be positive")
    leaves = x * y
    depth = max(1, math.ceil(math.log2(leaves)))
    n_leaves = 2 ** depth
    if walk_steps is None:
        walk_steps = max(1, int(math.sqrt(n_leaves) * 2))

    pb = ProgramBuilder()

    # --- NAND gate (CTQG-style): out ^= NOT(a AND b) --------------------
    nand = pb.module("nand_gate")
    a = nand.param_register("a", 1)[0]
    b = nand.param_register("b", 1)[0]
    out = nand.param_register("out", 1)[0]
    nand.toffoli(a, b, out)
    nand.x(out)

    # --- formula evaluation: a balanced NAND tree ------------------------
    # Layer t has n_leaves / 2^t nodes; each consumes two values from
    # layer t-1. Ancilla layout: one register per layer.
    evaluate = pb.module("evaluate_formula")
    board = evaluate.param_register("board", n_leaves)
    result = evaluate.param_register("result", 1)[0]
    layer_regs: List[List[Qubit]] = [list(board)]
    for t in range(1, depth + 1):
        size = n_leaves >> t
        if size > 1:
            reg = evaluate.register(f"layer{t}", size)
            layer_regs.append(list(reg))
        else:
            layer_regs.append([result])
    compute_calls: List[tuple] = []
    for t in range(1, depth + 1):
        prev, cur = layer_regs[t - 1], layer_regs[t]
        for i, target in enumerate(cur):
            args = [prev[2 * i], prev[2 * i + 1], target]
            compute_calls.append(tuple(args))
            evaluate.call("nand_gate", args)

    # --- phase oracle: evaluate, kick phase, uncompute --------------------
    oracle = pb.module("formula_oracle")
    oboard = oracle.param_register("board", n_leaves)
    oresult = oracle.param_register("result", 1)[0]
    oracle.call("evaluate_formula", list(oboard) + [oresult])
    oracle.z(oresult)
    oracle.call("evaluate_formula", list(oboard) + [oresult])

    # --- walk step: oracle + board-register mixing -------------------------
    step = pb.module("walk_step")
    sboard = step.param_register("board", n_leaves)
    sresult = step.param_register("result", 1)[0]
    step.call("formula_oracle", list(sboard) + [sresult])
    for q in sboard:
        step.h(q)
    theta = math.pi / 8
    for q in sboard:
        step.rz(q, theta)
    for q in sboard:
        step.h(q)

    # --- main -----------------------------------------------------------------
    main = pb.module("main")
    mboard = main.register("board", n_leaves)
    mresult = main.register("result", 1)[0]
    for op in hadamard_all(list(mboard)):
        main.emit(op)
    main.call(
        "walk_step", list(mboard) + [mresult], iterations=walk_steps
    )
    main.meas_z(mresult)
    return pb.build("main")
