"""The benchmark suite registry.

Maps the paper's eight benchmarks (Section 3.3) to our structural
reimplementations, carrying both the *paper* parameterisation (used for
labels and for hierarchical resource estimation where tractable) and a
*reproduction* parameterisation small enough for fine-grained
scheduling on a laptop, plus the flattening threshold used in
reproduction experiments.

The paper's FTh of 2M ops (3M for SHA-1) is calibrated to benchmarks of
10^7..10^12 gates; our reduced instances are ~10^3..10^6 gates, so the
registry scales the threshold down proportionally, preserving the
property that most modules flatten while the biggest stay hierarchical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..core.module import Program
from .boolean_formula import build_boolean_formula
from .bwt import build_bwt
from .class_number import build_class_number
from .grovers import build_grovers
from .gse import build_gse
from .sha1 import build_sha1
from .shors import build_shors
from .tfp import build_tfp

__all__ = ["BenchmarkSpec", "BENCHMARKS", "benchmark", "benchmark_names"]


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark's metadata and builders.

    Attributes:
        key: short identifier used across figures ("GSE", "SHA-1", ...).
        title: the paper's label including its parameterisation.
        description: one-line algorithm summary.
        build_repro: zero-arg builder for the reduced-size instance used
            in scheduling experiments.
        repro_params: the reduced parameters, for reporting.
        paper_params: the paper's parameters, for reporting.
        fth: flattening threshold for reproduction experiments.
    """

    key: str
    title: str
    description: str
    build_repro: Callable[[], Program]
    repro_params: Dict[str, int]
    paper_params: Dict[str, int]
    fth: int = 4096

    def build(self) -> Program:
        """Build the reduced-size reproduction instance."""
        return self.build_repro()


BENCHMARKS: Dict[str, BenchmarkSpec] = {
    spec.key: spec
    for spec in [
        BenchmarkSpec(
            key="BF",
            title="BF x=2, y=2",
            description=(
                "Boolean Formula: winning strategy for Hex via AND-OR "
                "(NAND-tree) formula evaluation"
            ),
            build_repro=lambda: build_boolean_formula(x=2, y=2, walk_steps=4),
            repro_params={"x": 2, "y": 2, "walk_steps": 4},
            paper_params={"x": 2, "y": 2},
            fth=2048,
        ),
        BenchmarkSpec(
            key="BWT",
            title="BWT n=300, s=3000",
            description=(
                "Binary Welded Tree: quantum random walk from entry to "
                "exit node"
            ),
            build_repro=lambda: build_bwt(n=6, s=8),
            repro_params={"n": 6, "s": 8},
            paper_params={"n": 300, "s": 3000},
            fth=4096,
        ),
        BenchmarkSpec(
            key="CN",
            title="CN p=6",
            description=(
                "Class Number: class group of a real quadratic number "
                "field (fixed-point ideal arithmetic)"
            ),
            build_repro=lambda: build_class_number(p=2),
            repro_params={"p": 2},
            paper_params={"p": 6},
            fth=8192,
        ),
        BenchmarkSpec(
            key="Grovers",
            title="Grovers n=40",
            description="Grover's search over a database of 2^n elements",
            build_repro=lambda: build_grovers(n=8, iterations=12),
            repro_params={"n": 8, "iterations": 12},
            paper_params={"n": 40},
            fth=2048,
        ),
        BenchmarkSpec(
            key="GSE",
            title="GSE M=10",
            description=(
                "Ground State Estimation: phase estimation of a "
                "molecular Hamiltonian"
            ),
            build_repro=lambda: build_gse(m=8, precision_bits=5, trotter_slices=2),
            repro_params={"m": 8, "precision_bits": 5, "trotter_slices": 2},
            paper_params={"M": 10},
            fth=4096,
        ),
        BenchmarkSpec(
            key="SHA-1",
            title="SHA-1 n=128",
            description=(
                "Reverse SHA-1: Grover search with the SHA-1 "
                "compression function as oracle"
            ),
            build_repro=lambda: build_sha1(
                n=32, word_bits=8, rounds=8, grover_iterations=2 ** 16
            ),
            repro_params={"n": 32, "word_bits": 8, "rounds": 8},
            paper_params={"n": 448},
            # The paper needed FTh=3M (vs 2M elsewhere) to flatten
            # SHA-1; we keep it the largest threshold too.
            fth=16384,
        ),
        BenchmarkSpec(
            key="Shors",
            title="Shors n=512",
            description=(
                "Shor's factoring: order finding with QFT-space "
                "modular exponentiation"
            ),
            build_repro=lambda: build_shors(n=5),
            repro_params={"n": 5},
            paper_params={"n": 512},
            # Rotations stay un-inlined blackboxes (Section 5.4): use a
            # threshold below the decomposed-rotation module size.
            fth=64,
        ),
        BenchmarkSpec(
            key="TFP",
            title="TFP n=5",
            description=(
                "Triangle Finding Problem in a dense undirected graph"
            ),
            build_repro=lambda: build_tfp(n=5, iterations=6),
            repro_params={"n": 5, "iterations": 6},
            paper_params={"n": 5},
            fth=2048,
        ),
    ]
}


def benchmark(key: str) -> BenchmarkSpec:
    """Look up a benchmark by key (e.g. ``"GSE"``)."""
    try:
        return BENCHMARKS[key]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {key!r}; have {sorted(BENCHMARKS)}"
        ) from None


def benchmark_names() -> List[str]:
    """All benchmark keys in the paper's figure order."""
    return ["BF", "BWT", "CN", "Grovers", "GSE", "SHA-1", "Shors", "TFP"]
