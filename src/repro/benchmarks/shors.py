"""Shor's Factoring — order finding via the Quantum Fourier Transform.

Structure follows the Scaffold benchmark: a ``2n``-bit control register
in superposition, a controlled modular-exponentiation ladder (one
controlled modular multiply per control bit, built from Draper-style
QFT-space constant additions), and an inverse QFT readout.

Two structural features matter for the paper's results:

* the benchmark is saturated with *arbitrary-angle rotations*: the
  QFT-space adders are nothing but phase rotations, and — mirroring the
  paper, which left rotations un-inlined "to keep the size manageable"
  (Section 5.4) — every rotation here is emitted as a call to a small
  rotation module. After gate decomposition each such module is a long
  serial Clifford+T string (Table 2), so at the coarse level the
  rotations remain blackboxes that each demand their own SIMD region;
* each Draper constant addition applies its rotations to *distinct*
  target qubits — a bank of independent rotation blackboxes the coarse
  scheduler can spread across regions. This is exactly why Shor's
  speedup keeps growing with ``k`` (Figure 9) while the other
  benchmarks saturate at k=4.

Parameters: ``n`` — bits of the number to factor (the paper runs
n=512; reproduction runs use small n).
"""

from __future__ import annotations

import math
from typing import Dict, List

from ..core.builder import ProgramBuilder
from ..core.module import Program
from ..core.qubits import AncillaAllocator
from ..passes import ctqg
from .common import hadamard_all, inverse_qft_ops

__all__ = ["build_shors"]


def build_shors(
    n: int = 6, base: int = 7, adds_per_multiply: int = None
) -> Program:
    """Build Shor's order-finding circuit for an ``n``-bit modulus.

    Args:
        n: modulus width in bits; the control register is ``2n`` wide.
        base: the exponentiation base ``a`` (made coprime to the
            modulus if necessary).
        adds_per_multiply: Draper constant additions per controlled
            multiply (defaults to ``n``, the schoolbook count).
    """
    if n < 3:
        raise ValueError(f"Shor's needs n >= 3, got {n}")
    modulus = (1 << n) - 1
    if math.gcd(base, modulus) != 1:
        base += 1
    control_bits = 2 * n
    adds = adds_per_multiply or n

    pb = ProgramBuilder()

    # --- single-qubit rotation modules (stay blackboxes) ----------------
    # Draper addition of a constant c applies Rz(2*pi * (c mod 2^(i+1))
    # / 2^(i+1)) to target bit i. Angles are quantized to 8 fractional
    # bits so rotation modules can be shared across constants (the
    # paper's Scaffold code likewise reuses rotation procedures); almost
    # all quantized angles are *not* multiples of pi/4, so they
    # decompose to long Clifford+T strings (Table 2).
    quant = 256
    rot_modules: Dict[int, str] = {}

    def rot_module(angle_units: int) -> str:
        """Module computing Rz(2*pi * angle_units / quant), dedup'd."""
        angle_units %= quant
        name = rot_modules.get(angle_units)
        if name is None:
            name = f"phase_rot_{angle_units}"
            rot = pb.module(name)
            q = rot.param_register("q", 1)[0]
            rot.rz(q, 2.0 * math.pi * angle_units / quant)
            rot_modules[angle_units] = name
        return name

    # --- two-qubit controlled-rotation modules (QFT ladder steps) -------
    for j in range(1, n + 1):
        crot = pb.module(f"cphase{j}")
        c = crot.param_register("c", 1)[0]
        t = crot.param_register("t", 1)[0]
        crot.crz(c, t, math.pi / (2 ** j))

    # --- QFT / inverse QFT on the target, as rotation-module calls -------
    # The ladder's controlled rotations share qubits, so these stay
    # serial chains of blackboxes — matching the un-inlined structure.
    qft = pb.module("target_qft")
    tq = qft.param_register("t", n)
    for i in range(n - 1, -1, -1):
        qft.h(tq[i])
        for j in range(i - 1, -1, -1):
            qft.call(f"cphase{i - j}", [tq[j], tq[i]])
    # The inverse is the exact reversal of the forward ladder, which
    # keeps the pipeline wavefront schedulable.
    iqft = pb.module("target_iqft")
    tq = iqft.param_register("t", n)
    for i in range(n):
        for j in range(i):
            iqft.call(f"cphase{i - j}", [tq[j], tq[i]])
        iqft.h(tq[i])

    # --- Draper constant addition: a parallel bank of rotations ----------
    # One module per distinct constant; rotations land on *distinct*
    # qubits, so the calls are mutually independent blackboxes.
    def make_phi_add(name: str, constant: int) -> None:
        mod = pb.module(name)
        t = mod.param_register("t", n)
        for i in range(n):
            denom = 2 ** (i + 1)
            units = round(quant * ((constant % denom) / denom))
            mod.call(rot_module(units), [t[i]])

    # --- controlled modular multiply per control bit ------------------------
    multiply_names: List[str] = []
    for kbit in range(control_bits):
        const = pow(base, 2 ** kbit, modulus)
        name = f"cmult_pow{kbit}"
        cm = pb.module(name)
        ctl = cm.param_register("ctl", 1)[0]
        tgt = cm.param_register("tgt", n)
        alloc = AncillaAllocator(prefix=f"ma{kbit}")
        cm.call("target_qft", list(tgt))
        # the schoolbook ladder: one shifted-constant addition per
        # multiplier bit, each a parallel rotation bank, gated by a thin
        # controlled mixing layer that carries the data dependence.
        for step in range(adds):
            shifted = (const << step) % modulus
            add_name = f"phi_add_c{kbit}_{step}"
            make_phi_add(add_name, shifted)
            cm.cnot(ctl, tgt[step % n])
            cm.call(add_name, list(tgt))
        cm.call("target_iqft", list(tgt))
        # modular correction (Vedral-style CTQG arithmetic)
        for op in ctqg.add_const_mod(
            const % (modulus // 2 + 1), list(tgt), modulus // 2 + 1, alloc
        ):
            cm.emit(op)
        multiply_names.append(name)

    # --- main -----------------------------------------------------------------
    main = pb.module("main")
    control = main.register("ctl", control_bits)
    target = main.register("tgt", n)
    for op in hadamard_all(list(control)):
        main.emit(op)
    main.x(target[0])  # |1> seed for the exponentiation
    for kbit, name in enumerate(multiply_names):
        main.call(name, [control[kbit]] + list(target))
    for op in inverse_qft_ops(list(control)):
        main.emit(op)
    for q in control:
        main.meas_z(q)
    return pb.build("main")
