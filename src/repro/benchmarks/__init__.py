"""The paper's eight benchmarks (Section 3.3), reimplemented
structurally, plus shared circuit kernels."""

from .boolean_formula import build_boolean_formula
from .bwt import build_bwt
from .class_number import build_class_number
from .common import (
    controlled_phase_power,
    hadamard_all,
    inverse_qft_ops,
    mcx_ops,
    mcz_ops,
    qft_ops,
)
from .grovers import build_grovers, grover_iteration_count
from .gse import build_gse
from .registry import BENCHMARKS, BenchmarkSpec, benchmark, benchmark_names
from .scale import SCALE_KINDS, build_scale, scale_total_gates
from .sha1 import build_sha1
from .shors import build_shors
from .tfp import build_tfp

__all__ = [
    "BENCHMARKS",
    "SCALE_KINDS",
    "BenchmarkSpec",
    "benchmark",
    "benchmark_names",
    "build_boolean_formula",
    "build_bwt",
    "build_class_number",
    "build_grovers",
    "build_gse",
    "build_sha1",
    "build_shors",
    "build_scale",
    "build_tfp",
    "controlled_phase_power",
    "grover_iteration_count",
    "hadamard_all",
    "inverse_qft_ops",
    "mcx_ops",
    "mcz_ops",
    "qft_ops",
    "scale_total_gates",
]
