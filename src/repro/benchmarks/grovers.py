"""Grover's Search (GS) — amplitude amplification over 2^n elements.

Structure follows the Scaffold benchmark: a ``main`` that prepares the
uniform superposition and iterates a Grover step ``~ (pi/4) * 2^(n/2)``
times; each step is a phase *oracle* (a multi-controlled Z cascade
matching a marked element) followed by the *diffusion* operator (H / X
conjugated multi-controlled Z). The iteration count is encoded on the
call site (compile-time-known loop), so paper-scale instances never
unroll.

Parameters: ``n`` — the search register width (the paper runs n=40).
"""

from __future__ import annotations

import math
from typing import Optional

from ..core.builder import ProgramBuilder
from ..core.module import Program
from ..core.qubits import AncillaAllocator
from .common import hadamard_all, mcz_ops

__all__ = ["build_grovers", "grover_iteration_count"]


def grover_iteration_count(n: int) -> int:
    """The optimal iteration count ``floor((pi/4) * sqrt(2^n))``."""
    return max(1, int(math.floor(math.pi / 4 * math.sqrt(2.0 ** n))))


def build_grovers(
    n: int = 8,
    marked: Optional[int] = None,
    iterations: Optional[int] = None,
) -> Program:
    """Build Grover's search over ``2**n`` elements.

    Args:
        n: search register width in qubits.
        marked: the marked element (defaults to the all-ones string,
            matching the Scaffold benchmark's oracle).
        iterations: Grover iterations (defaults to the optimal count —
            exponential in n, encoded as a loop, never unrolled).
    """
    if n < 2:
        raise ValueError(f"Grover's needs n >= 2, got {n}")
    if marked is None:
        marked = 2 ** n - 1
    if not 0 <= marked < 2 ** n:
        raise ValueError(f"marked element {marked} out of range")
    iterations = iterations or grover_iteration_count(n)

    pb = ProgramBuilder()

    # --- oracle: phase-flip the marked element -------------------------
    oracle = pb.module("oracle")
    oq = oracle.param_register("q", n)
    alloc = AncillaAllocator(prefix="oanc")
    flips = [oq[i] for i in range(n) if not (marked >> i) & 1]
    for q in flips:
        oracle.x(q)
    for op in mcz_ops(list(oq), alloc):
        oracle.emit(op)
    for q in flips:
        oracle.x(q)

    # --- diffusion operator --------------------------------------------
    diffuse = pb.module("diffuse")
    dq = diffuse.param_register("q", n)
    for op in hadamard_all(list(dq)):
        diffuse.emit(op)
    for q in dq:
        diffuse.x(q)
    dalloc = AncillaAllocator(prefix="danc")
    for op in mcz_ops(list(dq), dalloc):
        diffuse.emit(op)
    for q in dq:
        diffuse.x(q)
    for op in hadamard_all(list(dq)):
        diffuse.emit(op)

    # --- one Grover step -------------------------------------------------
    step = pb.module("grover_step")
    sq = step.param_register("q", n)
    step.call("oracle", list(sq))
    step.call("diffuse", list(sq))

    # --- main ------------------------------------------------------------
    main = pb.module("main")
    mq = main.register("q", n)
    for op in hadamard_all(list(mq)):
        main.emit(op)
    main.call("grover_step", list(mq), iterations=iterations)
    for q in mq:
        main.meas_z(q)
    return pb.build("main")
