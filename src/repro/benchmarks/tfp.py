"""Triangle Finding Problem (TFP) — find a triangle in a dense graph
(Magniez-Santha-Szegedy).

Structure follows the Scaffold benchmark: a Grover-style search over
pairs/triples of vertex indices, with an *edge oracle* testing
adjacency-matrix bits (Toffoli cascades against a classical adjacency
constant) and a *triangle oracle* that ANDs three edge tests. The three
edge tests touch disjoint scratch registers, so the triangle oracle
exposes exactly the narrow-but-parallel blackbox structure that let RCP
beat LPFS on TFP in the paper (Section 5.1): the coarse scheduler can
run the three edge oracles side by side.

Parameters: ``n`` — number of graph nodes (the paper runs n=5); vertex
indices use ``ceil(log2 n)`` qubits.
"""

from __future__ import annotations

import math
from typing import List

from ..core.builder import ProgramBuilder
from ..core.module import Program
from ..core.qubits import AncillaAllocator, Qubit
from .common import hadamard_all, mcx_ops, mcz_ops

__all__ = ["build_tfp"]


def _edge_constant(n: int) -> int:
    """A fixed dense adjacency matrix, packed row-major into an int."""
    bits = 0
    idx = 0
    for i in range(n):
        for j in range(n):
            # Dense pseudo-random graph: edge unless (i+2j) % 3 == 0.
            if i != j and (i + 2 * j) % 3 != 0:
                bits |= 1 << idx
            idx += 1
    return bits


def build_tfp(n: int = 5, iterations: int = None) -> Program:
    """Build the TFP benchmark.

    Args:
        n: graph node count.
        iterations: Grover iterations over vertex triples (defaults to
            ``~ (pi/4) * n^1.5``, the quantum-walk query scaling).
    """
    if n < 3:
        raise ValueError(f"TFP needs n >= 3, got {n}")
    w = max(1, math.ceil(math.log2(n)))
    if iterations is None:
        iterations = max(1, int(math.pi / 4 * n ** 1.5))
    adjacency = _edge_constant(n)

    pb = ProgramBuilder()

    # --- edge oracle: flag ^= adjacency[u][v] ----------------------------
    # Tests each classical adjacency bit with a multi-controlled X
    # matching the (u, v) index pair.
    edge = pb.module("edge_oracle")
    u = edge.param_register("u", w)
    v = edge.param_register("v", w)
    flag = edge.param_register("flag", 1)[0]
    alloc = AncillaAllocator(prefix="ea")
    for i in range(n):
        for j in range(n):
            if not (adjacency >> (i * n + j)) & 1:
                continue
            pattern_flips: List[Qubit] = []
            for b in range(w):
                if not (i >> b) & 1:
                    pattern_flips.append(u[b])
                if not (j >> b) & 1:
                    pattern_flips.append(v[b])
            for q in pattern_flips:
                edge.x(q)
            for op in mcx_ops(list(u) + list(v), flag, alloc):
                edge.emit(op)
            for q in pattern_flips:
                edge.x(q)

    # --- triangle oracle ---------------------------------------------------
    # Three edge tests on disjoint flags (independent — schedulable in
    # parallel by the coarse scheduler), then a Toffoli-cascade AND into
    # the phase qubit, then uncompute.
    tri = pb.module("triangle_oracle")
    a = tri.param_register("a", w)
    b = tri.param_register("b", w)
    c = tri.param_register("c", w)
    flags = tri.param_register("ef", 3)
    phase = tri.param_register("phase", 1)[0]
    talloc = AncillaAllocator(prefix="ta")
    tri.call("edge_oracle", list(a) + list(b) + [flags[0]])
    tri.call("edge_oracle", list(b) + list(c) + [flags[1]])
    tri.call("edge_oracle", list(a) + list(c) + [flags[2]])
    tri.h(phase)
    for op in mcx_ops(list(flags), phase, talloc):
        tri.emit(op)
    tri.h(phase)
    tri.call("edge_oracle", list(a) + list(b) + [flags[0]])
    tri.call("edge_oracle", list(b) + list(c) + [flags[1]])
    tri.call("edge_oracle", list(a) + list(c) + [flags[2]])

    # --- diffusion over the vertex-triple register --------------------------
    diffuse = pb.module("diffuse")
    dq = diffuse.param_register("q", 3 * w)
    dalloc = AncillaAllocator(prefix="da")
    for op in hadamard_all(list(dq)):
        diffuse.emit(op)
    for q in dq:
        diffuse.x(q)
    for op in mcz_ops(list(dq), dalloc):
        diffuse.emit(op)
    for q in dq:
        diffuse.x(q)
    for op in hadamard_all(list(dq)):
        diffuse.emit(op)

    # --- one search step -----------------------------------------------------
    step = pb.module("search_step")
    sa = step.param_register("a", w)
    sb = step.param_register("b", w)
    sc = step.param_register("c", w)
    sflags = step.param_register("ef", 3)
    sphase = step.param_register("phase", 1)[0]
    step.call(
        "triangle_oracle",
        list(sa) + list(sb) + list(sc) + list(sflags) + [sphase],
    )
    step.call("diffuse", list(sa) + list(sb) + list(sc))

    # --- main -------------------------------------------------------------------
    main = pb.module("main")
    ma = main.register("a", w)
    mb = main.register("b", w)
    mc = main.register("c", w)
    mflags = main.register("ef", 3)
    mphase = main.register("phase", 1)[0]
    for op in hadamard_all(list(ma) + list(mb) + list(mc)):
        main.emit(op)
    main.call(
        "search_step",
        list(ma) + list(mb) + list(mc) + list(mflags) + [mphase],
        iterations=iterations,
    )
    for q in list(ma) + list(mb) + list(mc):
        main.meas_z(q)
    return pb.build("main")
