"""Shared circuit generators used across the benchmark suite.

These are the standard kernels the paper's Scaffold benchmarks lean on:
the quantum Fourier transform (and inverse), multi-controlled phase /
NOT cascades built from Toffolis with ancilla trees, and uniform
superposition preparation. Everything is emitted at the Scaffold gate
level and lowered later by the decompose pass.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from ..core.operation import Operation
from ..core.qubits import AncillaAllocator, Qubit

__all__ = [
    "qft_ops",
    "inverse_qft_ops",
    "hadamard_all",
    "mcz_ops",
    "mcx_ops",
    "controlled_phase_power",
]

Ops = List[Operation]


def hadamard_all(qubits: Sequence[Qubit]) -> Ops:
    """One Hadamard per qubit (uniform superposition prep)."""
    return [Operation("H", (q,)) for q in qubits]


def qft_ops(qubits: Sequence[Qubit]) -> Ops:
    """The textbook quantum Fourier transform on ``qubits``
    (little-endian), as H + controlled-Rz ladders.

    The controlled rotations ``CRz(pi / 2^j)`` are exactly the
    arbitrary-angle gates whose Clifford+T decomposition dominates
    Shor's runtime profile (Section 5.4, Table 2).
    """
    ops: Ops = []
    n = len(qubits)
    for i in range(n - 1, -1, -1):
        ops.append(Operation("H", (qubits[i],)))
        for j in range(i - 1, -1, -1):
            angle = math.pi / (2 ** (i - j))
            ops.append(Operation("CRz", (qubits[j], qubits[i]), angle))
    return ops


def inverse_qft_ops(qubits: Sequence[Qubit]) -> Ops:
    """Inverse QFT: the exact reversal of :func:`qft_ops` with negated
    angles (reversal preserves the ladder's pipeline parallelism — the
    wavefront a list scheduler can exploit)."""
    inverse: Ops = []
    for op in reversed(qft_ops(qubits)):
        if op.gate == "CRz":
            inverse.append(Operation("CRz", op.qubits, -op.angle))
        else:
            inverse.append(op)
    return inverse


def controlled_phase_power(
    control: Qubit, target: Qubit, power: int
) -> Operation:
    """``CRz(2*pi / 2^power)`` — the phase-kickback building block of
    Draper-style QFT arithmetic."""
    return Operation(
        "CRz", (control, target), 2.0 * math.pi / (2 ** power)
    )


def mcx_ops(
    controls: Sequence[Qubit],
    target: Qubit,
    alloc: AncillaAllocator,
) -> Ops:
    """Multi-controlled X via a Toffoli AND-tree.

    Computes the conjunction of the controls into an ancilla chain,
    CNOTs onto the target, then uncomputes — the standard cascade every
    Grover-style oracle bottoms out in.
    """
    controls = list(controls)
    if not controls:
        return [Operation("X", (target,))]
    if len(controls) == 1:
        return [Operation("CNOT", (controls[0], target))]
    if len(controls) == 2:
        return [Operation("Toffoli", (controls[0], controls[1], target))]
    anc = alloc.alloc(len(controls) - 1)
    compute: Ops = [
        Operation("Toffoli", (controls[0], controls[1], anc[0]))
    ]
    for i in range(2, len(controls)):
        compute.append(
            Operation("Toffoli", (controls[i], anc[i - 2], anc[i - 1]))
        )
    ops = list(compute)
    ops.append(Operation("CNOT", (anc[-1], target)))
    ops.extend(reversed(compute))
    alloc.free(anc)
    return ops


def mcz_ops(
    qubits: Sequence[Qubit],
    alloc: AncillaAllocator,
) -> Ops:
    """Multi-controlled Z over all ``qubits`` (phase flip on the
    all-ones state), via H-conjugated :func:`mcx_ops` on the last
    qubit."""
    qubits = list(qubits)
    if len(qubits) == 1:
        return [Operation("Z", (qubits[0],))]
    target = qubits[-1]
    ops: Ops = [Operation("H", (target,))]
    ops += mcx_ops(qubits[:-1], target, alloc)
    ops.append(Operation("H", (target,)))
    return ops
