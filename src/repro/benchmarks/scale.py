"""Synthetic paper-scale benchmarks (10^5..10^7+ gates).

The registry's eight reproductions are sized for laptop scheduling
(~10^3..10^6 gates). The paper's headline runs are 10^7..10^12; these
generators produce circuits in that regime with *tiny* hierarchical
source — a few modules and one ``iterations``-heavy call site — so the
unexpanded program costs nothing and the scale lives entirely in the
streamed leaf expansion:

* ``adder`` — a Cuccaro ripple-carry adder (MAJ/UMA chains of
  Toffoli+CNOT) applied ``iterations`` times: Toffoli-dominated,
  moderately parallel, the "arithmetic leaf" shape of SHA-1/Shor's;
* ``rotations`` — layers of arbitrary-angle Rz (each decomposing to a
  long serial Clifford+T string, Table 2) stitched by a CNOT ladder:
  the rotation-saturated, mostly-serial shape of GSE/CN.

``build_scale(kind, target_gates)`` solves for the iteration count that
lands the *post-decompose* total nearest ``target_gates`` (computed
hierarchically — nothing is expanded here). Scale runs schedule the
entry as one streamed leaf, so pick ``fth > total`` (the paper's 2M
threshold scaled to the benchmark, Section 5.2) when compiling.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.builder import ModuleBuilder, ProgramBuilder
from ..core.module import Program
from ..passes.stream import decomposed_gate_counts

__all__ = ["SCALE_KINDS", "build_scale", "scale_total_gates"]

SCALE_KINDS = ("adder", "rotations")


def _adder_program(width: int, iterations: int) -> Program:
    pb = ProgramBuilder()

    maj = pb.module("maj")
    mq = maj.param_register("m", 3)
    maj.cnot(mq[2], mq[1]).cnot(mq[2], mq[0]).toffoli(mq[0], mq[1], mq[2])

    uma = pb.module("uma")
    uq = uma.param_register("u", 3)
    uma.toffoli(uq[0], uq[1], uq[2]).cnot(uq[2], uq[0]).cnot(uq[0], uq[1])

    add = pb.module("add")
    a = add.param_register("a", width)
    b = add.param_register("b", width)
    carry = add.param_register("carry", 2)  # [cin, cout]
    add.call(maj, (carry[0], b[0], a[0]))
    for i in range(1, width):
        add.call(maj, (a[i - 1], b[i], a[i]))
    add.cnot(a[width - 1], carry[1])
    for i in range(width - 1, 0, -1):
        add.call(uma, (a[i - 1], b[i], a[i]))
    add.call(uma, (carry[0], b[0], a[0]))

    main = pb.module("main")
    ra = main.register("x", width)
    rb = main.register("y", width)
    rc = main.register("c", 2)
    for q in ra:
        main.h(q)
    main.call(add, tuple(ra) + tuple(rb) + tuple(rc), iterations=iterations)
    return pb.build("main")


def _rotations_program(qubits: int, iterations: int) -> Program:
    pb = ProgramBuilder()

    layer = pb.module("layer")
    q = layer.param_register("q", qubits)
    for i in range(qubits):
        # Deterministic angles that are not pi/4 multiples, so every
        # rotation lowers to a long approximation sequence (Table 2).
        layer.rz(q[i], 0.1 + 0.05 * i)
    for i in range(qubits - 1):
        layer.cnot(q[i], q[i + 1])

    main = pb.module("main")
    reg = main.register("q", qubits)
    for qb in reg:
        main.h(qb)
    main.call(layer, tuple(reg), iterations=iterations)
    return pb.build("main")


_BUILDERS = {
    "adder": (_adder_program, {"width": 16}),
    "rotations": (_rotations_program, {"qubits": 8}),
}


def build_scale(
    kind: str, target_gates: int, **params: int
) -> Tuple[Program, int]:
    """Build a scale benchmark whose post-decompose total is nearest
    ``target_gates``. Returns ``(program, exact_total)``.

    The iteration count is solved from a 1-iteration probe's
    hierarchical gate counts; no body is ever expanded.
    """
    if kind not in _BUILDERS:
        raise ValueError(
            f"unknown scale benchmark {kind!r}; choose from {SCALE_KINDS}"
        )
    if target_gates < 1:
        raise ValueError(f"target_gates must be >= 1, got {target_gates}")
    builder, defaults = _BUILDERS[kind]
    kwargs: Dict[str, int] = {**defaults, **params}
    probe = builder(iterations=1, **kwargs)
    totals = decomposed_gate_counts(probe)
    body_name = "add" if kind == "adder" else "layer"
    per_iter = totals[body_name]
    fixed = totals[probe.entry] - per_iter
    iterations = max(1, round((target_gates - fixed) / per_iter))
    program = builder(iterations=iterations, **kwargs)
    total = fixed + iterations * per_iter
    return program, total


def scale_total_gates(program: Program) -> int:
    """Exact post-decompose gate total of a scale program's entry."""
    return decomposed_gate_counts(program)[program.entry]
