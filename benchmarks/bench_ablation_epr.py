"""Ablation: EPR generation bandwidth and distributed global memory
(Section 2.3 + the paper's stated future work).

Two sweeps on a single benchmark's schedules:

* generation-rate sweep — how fast must the global memory mint EPR
  pairs for distribution to stay masked, and what do slower rates cost
  (``plan_epr_distribution``);
* bank-count sweep under a fixed per-channel bandwidth — distributing
  the global memory spreads channel load and removes serialization
  rounds (``numa_runtime``).
"""

from __future__ import annotations

import math

import pytest

from repro.arch.epr_schedule import plan_epr_distribution
from repro.arch.machine import MultiSIMD
from repro.arch.numa import NUMAConfig, numa_runtime
from repro.benchmarks import BENCHMARKS
from repro.core.dag import DependenceDAG
from repro.passes.decompose import decompose_program
from repro.passes.flatten import flatten_program
from repro.sched.comm import derive_movement
from repro.sched.lpfs import schedule_lpfs
from repro.sched.rcp import schedule_rcp
from repro.core.operation import Operation
from repro.core.qubits import Qubit

from figdata import print_table

KEY = "Grovers"
K = 4
RATES = (0.1, 0.25, 0.5, 1.0, math.inf)
BANKS = (1, 2, 4)
CHANNEL_BW = math.inf
BANK_EGRESS = 2.0


def _biggest_leaf_schedule():
    spec = BENCHMARKS[KEY]
    prog = flatten_program(
        decompose_program(spec.build()), fth=spec.fth
    ).program
    biggest = max(prog.leaf_modules(), key=lambda m: m.direct_gate_count)
    sched = schedule_lpfs(DependenceDAG(list(biggest.body)), k=K)
    derive_movement(sched, MultiSIMD(k=K))
    return sched


def _churn_schedule():
    """A spread-traffic workload (RCP across 4 regions): the case the
    paper's future-work NUMA memory is for. LPFS output concentrates
    traffic so thoroughly that a centralized memory stays competitive
    on it."""
    qs = [Qubit("w", i) for i in range(8)]
    ops = []
    for i in range(4):
        ops.append(
            Operation("CNOT", (qs[2 * (i % 2)], qs[2 * (i % 2) + 1]))
        )
        ops.append(Operation("H", (qs[4 + i % 4],)))
    sched = schedule_rcp(DependenceDAG(ops), k=K)
    derive_movement(sched, MultiSIMD(k=K))
    return sched


def _compute():
    sched = _biggest_leaf_schedule()
    rate_rows = []
    for rate in RATES:
        plan = plan_epr_distribution(sched, rate=rate)
        rate_rows.append(
            (
                "inf" if math.isinf(rate) else f"{rate:g}",
                plan.stall_cycles,
                plan.runtime,
                plan.peak_buffer,
            )
        )
    masking = plan_epr_distribution(sched).min_masking_rate
    churn = _churn_schedule()
    numa_rows = []
    for banks in BANKS:
        stats = numa_runtime(
            churn,
            NUMAConfig(
                banks=banks,
                channel_bandwidth=CHANNEL_BW,
                bank_egress=BANK_EGRESS,
            ),
        )
        numa_rows.append(
            (banks, stats.teleport_rounds, stats.runtime,
             f"{stats.peak_channel_load:g}")
        )
    return rate_rows, masking, numa_rows


@pytest.mark.benchmark(group="ablation-epr")
def test_ablation_epr_bandwidth(benchmark):
    rate_rows, masking, numa_rows = benchmark.pedantic(
        _compute, rounds=1, iterations=1
    )
    print_table(
        f"Ablation — EPR generation rate ({KEY} biggest leaf, k={K})",
        ["rate (pairs/cyc)", "stall cycles", "runtime", "peak buffer"],
        rate_rows,
        note=f"minimum masking rate: {masking:.3f} pairs/cycle",
    )
    print_table(
        f"Ablation — distributed global memory (bank egress = "
        f"{BANK_EGRESS:g} units/round, spread RCP traffic)",
        ["banks", "teleport rounds", "runtime", "peak channel load"],
        numa_rows,
        note=(
            "Splitting global memory into banks spreads EPR channel "
            "load (the paper's future-work NUMA direction)."
        ),
    )
    stalls = [r[1] for r in rate_rows]
    for a, b in zip(stalls, stalls[1:]):
        assert b <= a  # faster generation never stalls more
    assert stalls[-1] == 0
    loads = [float(r[3]) for r in numa_rows]
    assert loads[-1] <= loads[0]  # banks reduce peak channel load
    runtimes = [r[2] for r in numa_rows]
    assert runtimes[-1] <= runtimes[0]  # egress relief pays off
