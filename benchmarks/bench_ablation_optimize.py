"""Ablation: the peephole optimization pass (cancellation + rotation
merging) ahead of decomposition.

ScaffCC applies simple circuit simplifications before scheduling; this
bench quantifies what they buy on our benchmark suite: gates removed at
the Scaffold level, the (multiplied) gates avoided after rotation
synthesis, and the effect on the comm-aware speedup.
"""

from __future__ import annotations

import pytest

from repro.arch.machine import MultiSIMD
from repro.benchmarks import BENCHMARKS
from repro.passes.optimize import optimize_program
from repro.passes.resource import estimate_resources
from repro.toolflow import SchedulerConfig, compile_and_schedule

from figdata import print_table

KEYS = ("Grovers", "GSE", "BWT", "TFP")


def _compute():
    rows = []
    for key in KEYS:
        spec = BENCHMARKS[key]
        prog = spec.build()
        before = estimate_resources(prog).total_gates
        optimized, stats = optimize_program(prog)
        after = estimate_resources(optimized).total_gates
        r_base = compile_and_schedule(
            prog, MultiSIMD(k=4), SchedulerConfig("lpfs"), fth=spec.fth
        )
        r_opt = compile_and_schedule(
            prog, MultiSIMD(k=4), SchedulerConfig("lpfs"),
            fth=spec.fth, optimize=True,
        )
        rows.append(
            (
                key,
                before,
                after,
                stats.cancelled_pairs,
                stats.merged_rotations + stats.dropped_rotations,
                r_base.total_gates,
                r_opt.total_gates,
                round(r_base.comm_aware_speedup, 2),
                round(r_opt.comm_aware_speedup, 2),
            )
        )
    return rows


@pytest.mark.benchmark(group="ablation-optimize")
def test_ablation_optimize_pass(benchmark):
    rows = benchmark.pedantic(_compute, rounds=1, iterations=1)
    print_table(
        "Ablation — peephole optimization before decomposition "
        "(Multi-SIMD(4, inf), LPFS)",
        ["benchmark", "logical before", "logical after", "pairs",
         "rot rewrites", "primitive base", "primitive opt",
         "speedup base", "speedup opt"],
        rows,
        note=(
            "Logical counts are pre-decomposition; primitive counts "
            "include the ~100x rotation-synthesis multiplier, so every "
            "merged rotation saves a whole Clifford+T string."
        ),
    )
    for row in rows:
        key, before, after = row[0], row[1], row[2]
        primitive_base, primitive_opt = row[5], row[6]
        assert after <= before, key
        assert primitive_opt <= primitive_base, key
