"""Ablation: the Flattening Threshold (Section 3.1.1).

Larger FTh -> bigger leaves -> better fine-grained schedules but more
scheduling work; FTh = 0 keeps everything modular and serializes
blackboxes at call boundaries. The paper picked 2M ops (3M for SHA-1)
to flatten >= 80% of modules. We sweep FTh on two benchmarks and
report schedule quality against compile time.
"""

from __future__ import annotations

import time

import pytest

from repro.arch.machine import MultiSIMD
from repro.benchmarks import BENCHMARKS
from repro.toolflow import SchedulerConfig, compile_and_schedule

from figdata import print_table

FTH_VALUES = (0, 64, 512, 4096, 2 ** 22)
KEYS = ("GSE", "Grovers")


def _compute():
    data = {}
    for key in KEYS:
        prog = BENCHMARKS[key].build()
        for fth in FTH_VALUES:
            start = time.perf_counter()
            r = compile_and_schedule(
                prog,
                MultiSIMD(k=4),
                SchedulerConfig("lpfs"),
                fth=fth,
            )
            elapsed = time.perf_counter() - start
            data[(key, fth)] = (
                r.schedule_length,
                r.flattened_percent,
                elapsed,
            )
    return data


@pytest.mark.benchmark(group="ablation-fth")
def test_ablation_flattening_threshold(benchmark):
    data = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = []
    for key in KEYS:
        for fth in FTH_VALUES:
            length, pct, elapsed = data[(key, fth)]
            rows.append(
                [
                    key,
                    f"{fth:,}",
                    f"{length:,}",
                    f"{pct:.0f}%",
                    f"{elapsed * 1000:.0f} ms",
                ]
            )
    print_table(
        "Ablation — flattening threshold sweep (Multi-SIMD(4, inf), "
        "LPFS)",
        ["benchmark", "FTh", "sched length", "% leaves", "compile time"],
        rows,
        note=(
            "Paper (Sec 3.1.1): larger leaves schedule better but cost "
            "more analysis; FTh balances the two."
        ),
    )
    for key in KEYS:
        lengths = [data[(key, fth)][0] for fth in FTH_VALUES]
        # Quality is monotone (more flattening never lengthens).
        for a, b in zip(lengths, lengths[1:]):
            assert b <= a * 1.01, (key, lengths)
        # And flattening strictly helps somewhere in the sweep.
        assert lengths[-1] < lengths[0], key
