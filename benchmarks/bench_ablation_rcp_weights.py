"""Ablation: RCP's priority weights (Section 4.1).

RCP's priority mixes operation-type prevalence (w_op), operand
locality (w_dist) and slack (w_slack); the paper sets all three to 1.
This ablation zeroes each term in turn and measures schedule length
and — for the locality term — the teleport count it exists to reduce.
"""

from __future__ import annotations

import pytest

from repro.arch.machine import MultiSIMD
from repro.benchmarks import BENCHMARKS
from repro.core.dag import DependenceDAG
from repro.passes.decompose import decompose_program
from repro.passes.flatten import flatten_program
from repro.sched.comm import derive_movement
from repro.sched.rcp import RCPWeights, schedule_rcp

from figdata import print_table

CONFIGS = [
    ("all 1 (paper)", RCPWeights(1, 1, 1)),
    ("no type term", RCPWeights(0, 1, 1)),
    ("no locality", RCPWeights(1, 0, 1)),
    ("no slack", RCPWeights(1, 1, 0)),
    ("locality only", RCPWeights(0, 10, 0)),
]
KEY = "Grovers"
K = 4


def _dags():
    spec = BENCHMARKS[KEY]
    prog = flatten_program(
        decompose_program(spec.build()), fth=spec.fth
    ).program
    return [
        DependenceDAG(list(m.body))
        for m in prog.leaf_modules()
        if m.direct_gate_count > 50
    ]


def _compute():
    data = {}
    dags = _dags()
    for label, weights in CONFIGS:
        length = 0
        teleports = 0
        for dag in dags:
            sched = schedule_rcp(dag, k=K, weights=weights)
            sched.validate()
            stats = derive_movement(sched, MultiSIMD(k=K))
            length += sched.length
            teleports += stats.teleports
        data[label] = (length, teleports)
    return data


@pytest.mark.benchmark(group="ablation-rcp")
def test_ablation_rcp_weights(benchmark):
    data = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = [
        [label, f"{length:,}", f"{teleports:,}"]
        for label, (length, teleports) in data.items()
    ]
    print_table(
        f"Ablation — RCP weight terms on {KEY} leaf modules (k={K})",
        ["weights", "sched length", "teleports"],
        rows,
        note=(
            "w_dist exists to cut movement: dropping it should not "
            "reduce teleports; boosting it should not increase them."
        ),
    )
    paper_len, paper_tp = data["all 1 (paper)"]
    _, no_loc_tp = data["no locality"]
    _, loc_only_tp = data["locality only"]
    assert paper_tp <= no_loc_tp * 1.02
    assert loc_only_tp <= no_loc_tp * 1.02
    # Schedules stay valid and near each other in length.
    for label, (length, _) in data.items():
        assert length <= 1.5 * paper_len, label
