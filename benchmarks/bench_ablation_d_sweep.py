"""Ablation: sensitivity to the data-parallel width d (Section 5.4).

The paper: "even though we practically assumed infinite amount of
data-parallelism available in our SIMD regions, our other experiments
have shown that decreasing this to below 32 qubits only causes
marginal changes."

We sweep d over {4, 8, 16, 32, inf} on Multi-SIMD(4, d) and check the
claim: schedule lengths barely move once d >= 32 (and usually well
below).
"""

from __future__ import annotations

import pytest

from repro.arch.machine import MultiSIMD
from repro.benchmarks import BENCHMARKS
from repro.toolflow import SchedulerConfig, compile_and_schedule

from figdata import print_table

D_VALUES = (4, 8, 16, 32, None)
KEYS = ("Grovers", "GSE", "BWT", "TFP")


def _compute():
    data = {}
    for key in KEYS:
        spec = BENCHMARKS[key]
        prog = spec.build()
        for d in D_VALUES:
            r = compile_and_schedule(
                prog,
                MultiSIMD(k=4, d=d),
                SchedulerConfig("lpfs"),
                fth=spec.fth,
            )
            data[(key, d)] = r.schedule_length
    return data


@pytest.mark.benchmark(group="ablation-d")
def test_ablation_d_sweep(benchmark):
    data = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = []
    for key in KEYS:
        base = data[(key, None)]
        rows.append(
            [key]
            + [
                f"{data[(key, d)]:,} ({data[(key, d)] / base:.2f}x)"
                for d in D_VALUES[:-1]
            ]
            + [f"{base:,}"]
        )
    print_table(
        "Ablation — schedule length vs data-parallel width d "
        "(Multi-SIMD(4, d), LPFS)",
        ["benchmark", "d=4", "d=8", "d=16", "d=32", "d=inf"],
        rows,
        note=(
            "Paper (Sec 5.4): reducing d below 32 causes only marginal "
            "changes; SIMD batches in these benchmarks are narrow."
        ),
    )
    for key in KEYS:
        # d = 32 within 5% of unbounded.
        assert data[(key, 32)] <= 1.05 * data[(key, None)], key
        # even d = 8 stays within 25%.
        assert data[(key, 8)] <= 1.25 * data[(key, None)], key
