"""Figure 6: logical parallelism — speedup over sequential execution
with zero-cost communication, against the estimated critical path.

Paper's findings this bench checks for:
* all benchmarks except Shor's reach near-theoretical (critical-path)
  speedup by k = 4;
* RCP <= LPFS on most benchmarks, with TFP the counterexample.
"""

from __future__ import annotations

import pytest

from figdata import ALGORITHMS, benchmark_names, compile_benchmark, print_table


def _compute():
    data = {}
    for key in benchmark_names():
        for alg in ALGORITHMS:
            for k in (2, 4):
                r = compile_benchmark(key, alg, k=k)
                data[(key, alg, k)] = r.parallel_speedup
        data[(key, "cp")] = compile_benchmark(key, "lpfs", k=4).cp_speedup
    return data


@pytest.mark.benchmark(group="fig6")
def test_fig6_parallelism_speedup(benchmark):
    data = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = []
    for key in benchmark_names():
        rows.append(
            [
                key,
                f"{data[(key, 'rcp', 2)]:.2f}",
                f"{data[(key, 'rcp', 4)]:.2f}",
                f"{data[(key, 'lpfs', 2)]:.2f}",
                f"{data[(key, 'lpfs', 4)]:.2f}",
                f"{data[(key, 'cp')]:.2f}",
            ]
        )
    print_table(
        "Figure 6 — speedup over sequential execution (zero-cost comm)",
        ["benchmark", "rcp k=2", "rcp k=4", "lpfs k=2", "lpfs k=4",
         "critical path"],
        rows,
        note=(
            "Paper shape: near-CP speedup by k=4 for all benchmarks "
            "except Shor's; LPFS >= RCP except on TFP."
        ),
    )
    near_cp = 0
    for key in benchmark_names():
        best = max(
            data[(key, alg, 4)] for alg in ALGORITHMS
        )
        if best >= 0.9 * data[(key, "cp")]:
            near_cp += 1
    # Most benchmarks reach near-theoretical speedup at k = 4.
    assert near_cp >= 6, f"only {near_cp}/8 near critical path"
