"""Table 2: parallel rotations serialize once decomposed to primitives.

The paper's Table 2 illustrates that n logical rotations Rz(q_i,
theta_i) — nominally one data-parallel timestep — decompose into n
*distinct* Clifford+T strings that cannot share a SIMD region, so they
need n regions (or serialize).

We regenerate the effect: schedule a bank of n rotations on distinct
qubits before and after decomposition, sweeping k.
"""

from __future__ import annotations

import pytest

from repro.arch.machine import MultiSIMD
from repro.core import ProgramBuilder
from repro.toolflow import SchedulerConfig, compile_and_schedule

from figdata import print_table

N_ROTATIONS = 8


def _program():
    pb = ProgramBuilder()
    main = pb.module("main")
    q = main.register("q", N_ROTATIONS)
    for i in range(N_ROTATIONS):
        # Distinct generic angles -> distinct Clifford+T strings.
        main.rz(q[i], 0.1 + 0.05 * i)
    return pb.build("main")


def _compute():
    data = {}
    for decompose in (False, True):
        for k in (1, 2, 4, 8):
            r = compile_and_schedule(
                _program(),
                MultiSIMD(k=k),
                SchedulerConfig("rcp"),
                decompose=decompose,
                fth=2 ** 62,
            )
            data[(decompose, k)] = r.schedule_length
    return data


@pytest.mark.benchmark(group="table2")
def test_table2_rotation_serialization(benchmark):
    data = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = [
        ["logical Rz (1 op each)"]
        + [str(data[(False, k)]) for k in (1, 2, 4, 8)],
        ["decomposed Clifford+T"]
        + [str(data[(True, k)]) for k in (1, 2, 4, 8)],
    ]
    print_table(
        f"Table 2 — schedule length of {N_ROTATIONS} parallel rotations",
        ["representation", "k=1", "k=2", "k=4", "k=8"],
        rows,
        note=(
            "Paper: logical rotations look data-parallel, but their "
            "primitive approximations are distinct serial strings that "
            "demand one SIMD region each."
        ),
    )
    # Logical view: one timestep (one SIMD Rz batch).
    assert data[(False, 1)] == 1
    # Decomposed view at k=1: two orders of magnitude longer. (Distinct
    # strings only share a region when their next gates coincide by
    # chance, so the length is far above one string but below full
    # serialization.)
    single_string = data[(True, 8)]
    assert data[(True, 1)] > 100
    assert data[(True, 1)] > 2.5 * single_string
    # At k = 8 each rotation gets its own region: length ~ one string.
    assert single_string >= 100
    assert data[(True, 2)] > data[(True, 4)] > single_string
