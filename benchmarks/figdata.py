"""Shared infrastructure for the figure/table regeneration benches.

Each ``bench_*`` file regenerates one of the paper's tables or figures.
Compiles are cached here so that, e.g., Figure 6 and Figure 7 (which
read different metrics off the same schedules) don't pay twice.

Run the whole harness with::

    pytest benchmarks/ --benchmark-only -s

The printed tables are the deliverable; the pytest-benchmark timings
additionally record how long each figure's scheduling work takes.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Optional, Sequence

from repro.arch.machine import MultiSIMD
from repro.benchmarks import BENCHMARKS, benchmark_names
from repro.passes.qubit_count import minimum_qubits
from repro.service import CompileService, default_cache_dir
from repro.toolflow import CompileResult, SchedulerConfig

__all__ = [
    "ALGORITHMS",
    "SERVICE",
    "benchmark_names",
    "compile_benchmark",
    "min_qubits",
    "print_table",
]

ALGORITHMS = ("rcp", "lpfs")

#: One shared compile service: in-memory LRU within a bench run, the
#: on-disk artifact store across runs (set ``REPRO_CACHE_DIR`` to move
#: it off ``./.repro-cache``).
SERVICE = CompileService(cache_dir=default_cache_dir())


@lru_cache(maxsize=None)
def _build(key: str):
    return BENCHMARKS[key].build()


@lru_cache(maxsize=None)
def min_qubits(key: str) -> int:
    """Table 1's Q for one benchmark (reproduction parameters)."""
    return minimum_qubits(_build(key))


def compile_benchmark(
    key: str,
    algorithm: str = "lpfs",
    k: int = 4,
    local: Optional[float] = None,
) -> CompileResult:
    """Compile one benchmark through the full toolflow (cached).

    ``local`` is the scratchpad capacity (None disables; fractions of Q
    are passed as plain floats). Results come from the content-addressed
    :data:`SERVICE`, so repeated figure regenerations — and anything
    else sharing the artifact store, like ``python -m repro bench`` —
    pay for each configuration once.
    """
    spec = BENCHMARKS[key]
    return SERVICE.compile(
        _build(key),
        MultiSIMD(k=k, local_memory=local),
        SchedulerConfig(algorithm),
        fth=spec.fth,
    )


def print_table(
    title: str,
    header: Sequence[str],
    rows: Iterable[Sequence],
    note: str = "",
) -> None:
    """Print a paper-style results table."""
    rows = [list(map(str, r)) for r in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(header)
    ]
    print()
    print(f"=== {title} ===")
    if note:
        print(note)
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    print()
