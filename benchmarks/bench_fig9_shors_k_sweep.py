"""Figure 9: Shor's sensitivity to the number of SIMD regions k.

The paper sweeps k over 8, 16, 32, 128 on Shor's n=512 (with local
memories) and finds speedup keeps growing: decomposed rotations are
long serial blackboxes on distinct qubits, each demanding its own
region (Table 2's effect).

Our reproduction instance (n=16) has proportionally fewer concurrent
rotation blackboxes, so the growth saturates earlier; we sweep from
k=2 so the trend is visible, and include the paper's k values.
"""

from __future__ import annotations

import math

import pytest

from repro.arch.machine import MultiSIMD
from repro.benchmarks import BENCHMARKS
from repro.benchmarks.shors import build_shors
from repro.toolflow import SchedulerConfig, compile_and_schedule

from figdata import ALGORITHMS, print_table

K_VALUES = (2, 4, 8, 16, 32, 128)
N = 12  # reproduction modulus width (paper: 512)


def _compute():
    prog = build_shors(n=N)
    fth = BENCHMARKS["Shors"].fth
    data = {}
    for alg in ALGORITHMS:
        for k in K_VALUES:
            r = compile_and_schedule(
                prog,
                MultiSIMD(k=k, local_memory=math.inf),
                SchedulerConfig(alg),
                fth=fth,
            )
            data[(alg, k)] = r.comm_aware_speedup
    return data


@pytest.mark.benchmark(group="fig9")
def test_fig9_shors_k_sensitivity(benchmark):
    data = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = [
        [alg] + [f"{data[(alg, k)]:.2f}" for k in K_VALUES]
        for alg in ALGORITHMS
    ]
    print_table(
        f"Figure 9 — Shor's (n={N}) speedup vs naive movement, "
        "local memories, k swept",
        ["scheduler"] + [f"k={k}" for k in K_VALUES],
        rows,
        note=(
            "Paper shape (n=512, k=8..128): speedup keeps growing with "
            "k. Our smaller instance saturates once regions outnumber "
            "the concurrent rotation blackboxes, which happens earlier "
            "at n=12."
        ),
    )
    for alg in ALGORITHMS:
        series = [data[(alg, k)] for k in K_VALUES]
        # Monotone non-decreasing in k...
        for a, b in zip(series, series[1:]):
            assert b >= a - 0.05, (alg, series)
        # ...with substantial overall growth (the Figure 9 effect).
        assert series[-1] > 1.3 * series[0], (alg, series)
