"""Figure 8: local scratchpad memories on Multi-SIMD(4, inf).

For each benchmark, the scratchpad capacity is swept over none, Q/4,
Q/2 and infinite, where Q is Table 1's minimum qubit count.

Paper's findings this bench checks for:
* speedups grow monotonically with capacity;
* LPFS benefits at least as much as RCP on most benchmarks (local
  memories amplify the locality LPFS creates, Section 5.3).
"""

from __future__ import annotations

import math

import pytest

from figdata import (
    ALGORITHMS,
    benchmark_names,
    compile_benchmark,
    min_qubits,
    print_table,
)

CAPS = ("none", "Q/4", "Q/2", "inf")


def _capacity(label: str, q: int):
    return {"none": None, "Q/4": q / 4, "Q/2": q / 2, "inf": math.inf}[label]


def _compute():
    data = {}
    for key in benchmark_names():
        q = min_qubits(key)
        for alg in ALGORITHMS:
            for cap in CAPS:
                r = compile_benchmark(
                    key, alg, k=4, local=_capacity(cap, q)
                )
                data[(key, alg, cap)] = r.comm_aware_speedup
    return data


@pytest.mark.benchmark(group="fig8")
def test_fig8_local_memory_speedup(benchmark):
    data = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = []
    for key in benchmark_names():
        for alg in ALGORITHMS:
            rows.append(
                [key if alg == "rcp" else "", alg]
                + [f"{data[(key, alg, cap)]:.2f}" for cap in CAPS]
            )
    print_table(
        "Figure 8 — speedup vs naive movement, Multi-SIMD(4, inf), "
        "local memory swept",
        ["benchmark", "sched", "no local", "Q/4", "Q/2", "inf"],
        rows,
        note=(
            "Paper shape: monotone in capacity; LPFS benefits more "
            "than RCP; largest absolute speedup on SHA-1 (9.82x in the "
            "paper)."
        ),
    )
    # Monotonicity in capacity for every benchmark/scheduler.
    for key in benchmark_names():
        for alg in ALGORITHMS:
            series = [data[(key, alg, cap)] for cap in CAPS]
            for a, b in zip(series, series[1:]):
                assert b >= a - 0.15, (key, alg, series)
    # Local memory delivers real gains somewhere (paper: up to 64%).
    best_gain = max(
        data[(key, alg, "inf")] / data[(key, alg, "none")]
        for key in benchmark_names()
        for alg in ALGORITHMS
    )
    assert best_gain > 1.25
