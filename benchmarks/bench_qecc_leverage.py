"""QECC leverage: the paper's Section 7 claim, quantified per benchmark.

"Since quantum error correction can have overhead exponential in
program execution time, these speedups can be even more significant
than they appear, because they offer important leverage in allowing
complex QC programs to complete with manageable levels of QECC."

For every benchmark we provision a concatenated code for (a) the
sequential naive-movement execution and (b) the LPFS + local-memory
schedule, at the same success target, and report the *physical*
speedup — logical speedup amplified by any concatenation level the
faster schedule avoids.
"""

from __future__ import annotations

import math

import pytest

from repro.arch.qecc import speedup_leverage
from repro.benchmarks import BENCHMARKS

from figdata import benchmark_names, compile_benchmark, min_qubits, print_table


def _compute():
    rows = []
    for key in benchmark_names():
        r = compile_benchmark(key, "lpfs", k=4, local=math.inf)
        q = min_qubits(key)
        rep = speedup_leverage(
            baseline_runtime=r.naive_runtime,
            accelerated_runtime=r.runtime,
            logical_qubits=q,
            physical_error=1e-4,
            target_success=0.9,
        )
        rows.append(
            (
                key,
                f"{rep.logical_speedup:.2f}x",
                rep.baseline.level,
                rep.accelerated.level,
                f"{rep.physical_speedup:.2f}x",
                f"{rep.qubit_saving:.0f}x",
            )
        )
    return rows


@pytest.mark.benchmark(group="qecc")
def test_qecc_leverage(benchmark):
    rows = benchmark.pedantic(_compute, rounds=1, iterations=1)
    print_table(
        "QECC leverage — Steane concatenation provisioned for naive vs "
        "LPFS+local-memory execution (p=1e-4, 90% success)",
        ["benchmark", "logical speedup", "naive level", "sched level",
         "physical speedup", "qubit saving"],
        rows,
        note=(
            "Paper Sec 7: faster schedules need weaker error "
            "correction; crossing a concatenation level converts a "
            "constant-factor speedup into exponential physical savings."
        ),
    )
    # Physical speedup never understates the logical one.
    for row in rows:
        logical = float(row[1].rstrip("x"))
        physical = float(row[4].rstrip("x"))
        assert physical >= logical - 1e-9, row
