"""Figure 4: scheduling two dependent Toffoli operations.

The paper's example: on Multi-SIMD(2, inf), the two Toffolis scheduled
as modular blackboxes serialize (24 cycles), while conjoining and
fine-scheduling them exposes inter-blackbox parallelism (21 cycles).

We regenerate both schedules: the modular (FTh = 0) and flattened
(FTh = inf) compilations of the same program, under both schedulers.
"""

from __future__ import annotations

import pytest

from repro.arch.machine import MultiSIMD
from repro.core import ProgramBuilder
from repro.toolflow import SchedulerConfig, compile_and_schedule

from figdata import print_table


def _program():
    pb = ProgramBuilder()
    tof = pb.module("toffoli_box")
    p = tof.param_register("p", 3)
    tof.toffoli(p[0], p[1], p[2])
    main = pb.module("main")
    q = main.register("q", 5)
    main.call("toffoli_box", [q[0], q[1], q[2]])
    main.call("toffoli_box", [q[0], q[3], q[4]])
    return pb.build("main")


def _compute():
    rows = []
    results = {}
    for alg in ("rcp", "lpfs"):
        for label, fth in (("modular", 0), ("flattened", 2 ** 62)):
            result = compile_and_schedule(
                _program(), MultiSIMD(k=2), SchedulerConfig(alg), fth=fth
            )
            rows.append((alg, label, result.schedule_length))
            results[(alg, label)] = result.schedule_length
    return rows, results


@pytest.mark.benchmark(group="fig4")
def test_fig4_two_toffoli_flattening(benchmark):
    rows, results = benchmark.pedantic(_compute, rounds=1, iterations=1)
    print_table(
        "Figure 4 — two dependent Toffolis on Multi-SIMD(2, inf)",
        ["scheduler", "modularity", "cycles"],
        rows,
        note=(
            "Paper: modular blackboxes = 24 cycles, conjoined "
            "fine-grained schedule = 21 cycles."
        ),
    )
    for alg in ("rcp", "lpfs"):
        flat = results[(alg, "flattened")]
        boxed = results[(alg, "modular")]
        # Shape: flattening exposes the inter-blackbox parallelism.
        assert flat < boxed, (alg, flat, boxed)
        assert flat <= 24
