"""Ablation: LPFS's l / SIMD / Refill options (Section 4.2).

The paper runs LPFS with l = 1 and both SIMD and Refill enabled. This
ablation quantifies what each option buys: SIMD fill recovers the
data parallelism a pinned region would otherwise waste, Refill keeps a
region busy after its path drains, and l > 1 dedicates more regions to
serial chains.
"""

from __future__ import annotations

import pytest

from repro.arch.machine import MultiSIMD
from repro.benchmarks import BENCHMARKS
from repro.core.dag import DependenceDAG
from repro.passes.decompose import decompose_program
from repro.passes.flatten import flatten_program
from repro.sched.comm import derive_movement
from repro.sched.lpfs import schedule_lpfs

from figdata import print_table

CONFIGS = [
    ("l=1 simd+refill (paper)", dict(l=1, simd=True, refill=True)),
    ("l=1 simd only", dict(l=1, simd=True, refill=False)),
    ("l=1 refill only", dict(l=1, simd=False, refill=True)),
    ("l=1 bare", dict(l=1, simd=False, refill=False)),
    ("l=2 simd+refill", dict(l=2, simd=True, refill=True)),
]
KEYS = ("Grovers", "GSE")
K = 4


def _leaf_dags(key):
    spec = BENCHMARKS[key]
    prog = flatten_program(
        decompose_program(spec.build()), fth=spec.fth
    ).program
    dags = []
    for mod in prog.leaf_modules():
        if mod.name in prog.reachable() and mod.direct_gate_count > 50:
            dags.append((mod.name, DependenceDAG(list(mod.body))))
    return dags


def _compute():
    data = {}
    for key in KEYS:
        for label, opts in CONFIGS:
            total_len = 0
            total_runtime = 0
            for _name, dag in _leaf_dags(key):
                sched = schedule_lpfs(dag, k=K, **opts)
                sched.validate()
                stats = derive_movement(sched, MultiSIMD(k=K))
                total_len += sched.length
                total_runtime += stats.runtime
            data[(key, label)] = (total_len, total_runtime)
    return data


@pytest.mark.benchmark(group="ablation-lpfs")
def test_ablation_lpfs_options(benchmark):
    data = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = []
    for key in KEYS:
        for label, _ in CONFIGS:
            length, runtime = data[(key, label)]
            rows.append([key, label, f"{length:,}", f"{runtime:,}"])
    print_table(
        "Ablation — LPFS options on the largest leaf modules (k=4, "
        "summed over leaves)",
        ["benchmark", "configuration", "sched length", "comm runtime"],
        rows,
        note=(
            "The paper's configuration (l=1, SIMD+Refill) should be at "
            "or near the best schedule length; disabling SIMD hurts "
            "most on data-parallel leaves."
        ),
    )
    for key in KEYS:
        paper_len = data[(key, CONFIGS[0][0])][0]
        bare_len = data[(key, "l=1 bare")][0]
        assert paper_len <= bare_len, key
