"""Table 1: the minimum number of qubits Q required by each benchmark,
computed with sequential execution and maximal ancilla reuse.

We print Q for the reproduction instances next to the paper's values
for its (much larger) parameterisations. Absolute values differ with
problem size; the shape checks are relative: SHA-1 and CN are the
qubit-hungriest (CTQG arithmetic registers), GSE is tiny.
"""

from __future__ import annotations

import pytest

from repro.benchmarks import BENCHMARKS

from figdata import benchmark_names, min_qubits, print_table

PAPER_Q = {
    "BF": 1895,
    "BWT": 2719,
    "CN": 60126,
    "Grovers": 120,
    "GSE": 13,
    "SHA-1": 472746,
    "Shors": 5634,
    "TFP": 176,
}


def _compute():
    return {key: min_qubits(key) for key in benchmark_names()}


@pytest.mark.benchmark(group="table1")
def test_table1_minimum_qubits(benchmark):
    ours = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = []
    for key in benchmark_names():
        spec = BENCHMARKS[key]
        rows.append(
            [
                spec.title,
                PAPER_Q[key],
                f"{ours[key]} ({_fmt(spec.repro_params)})",
            ]
        )
    print_table(
        "Table 1 — minimum qubits Q (sequential, max ancilla reuse)",
        ["benchmark (paper params)", "paper Q", "repro Q (repro params)"],
        rows,
        note=(
            "Absolute Q scales with problem size; the reproduction runs "
            "reduced instances. Shape: CTQG-arithmetic benchmarks "
            "(SHA-1, CN) need the most qubits; GSE the fewest."
        ),
    )
    assert all(q > 0 for q in ours.values())
    # Shape: SHA-1 tops the table, GSE is at the bottom.
    assert ours["SHA-1"] == max(ours.values())
    assert ours["GSE"] <= min(ours[k] for k in ("SHA-1", "CN", "BWT"))


def _fmt(params):
    return ", ".join(f"{k}={v}" for k, v in params.items())
