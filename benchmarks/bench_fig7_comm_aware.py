"""Figure 7: communication-aware scheduling — speedup over the
sequential naive-movement model (5 cycles per gate).

Paper's findings this bench checks for:
* every benchmark improves over the communication-unaware view
  (3%..308% in the paper);
* GSE shows by far the largest gain (its two key registers pin in
  place, Section 5.2).
"""

from __future__ import annotations

import pytest

from figdata import ALGORITHMS, benchmark_names, compile_benchmark, print_table


def _compute():
    data = {}
    for key in benchmark_names():
        for alg in ALGORITHMS:
            for k in (2, 4):
                r = compile_benchmark(key, alg, k=k)
                data[(key, alg, k)] = (
                    r.comm_aware_speedup,
                    r.parallel_speedup,
                )
    return data


@pytest.mark.benchmark(group="fig7")
def test_fig7_comm_aware_speedup(benchmark):
    data = benchmark.pedantic(_compute, rounds=1, iterations=1)
    rows = []
    gains = {}
    for key in benchmark_names():
        cs2, _ = data[(key, "rcp", 2)]
        cs4, _ = data[(key, "rcp", 4)]
        ls2, _ = data[(key, "lpfs", 2)]
        ls4, ps4 = data[(key, "lpfs", 4)]
        gains[key] = 100.0 * (ls4 / ps4 - 1.0)
        rows.append(
            [
                key,
                f"{cs2:.2f}", f"{cs4:.2f}",
                f"{ls2:.2f}", f"{ls4:.2f}",
                f"+{gains[key]:.0f}%",
            ]
        )
    print_table(
        "Figure 7 — speedup over sequential naive movement (5x model)",
        ["benchmark", "rcp k=2", "rcp k=4", "lpfs k=2", "lpfs k=4",
         "gain vs comm-unaware"],
        rows,
        note=(
            "Paper shape: all benchmarks gain from communication "
            "awareness (3%..308%); GSE gains most (+308%). 'gain' is "
            "lpfs k=4 comm-aware speedup relative to its Fig 6 value."
        ),
    )
    # Every benchmark at least matches its parallelism-only speedup.
    assert all(g >= -1e-6 for g in gains.values())
    # GSE is the outlier winner.
    assert gains["GSE"] == max(gains.values())
    assert gains["GSE"] > 100.0
