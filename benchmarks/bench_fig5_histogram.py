"""Figure 5: histogram of module gate counts per benchmark.

The paper buckets each benchmark's modules by expanded gate count and
reports the percentage of modules per range, concluding that a
flattening threshold of 2M ops flattens >= 80% of modules everywhere
except SHA-1 (which needs 3M).

We regenerate the histogram over the (reduced-size) reproduction
instances and additionally report the percentage of modules that fall
below each benchmark's reproduction FTh — the analogue of the paper's
>= 80% observation at reproduction scale.
"""

from __future__ import annotations

import pytest

from repro.benchmarks import BENCHMARKS
from repro.passes.resource import (
    GATE_COUNT_BINS,
    gate_count_histogram,
    total_gate_counts,
)

from figdata import benchmark_names, print_table


def _compute():
    histograms = {}
    below_fth = {}
    for key in benchmark_names():
        spec = BENCHMARKS[key]
        prog = spec.build()
        histograms[key] = gate_count_histogram(prog)
        totals = total_gate_counts(prog)
        below = sum(1 for c in totals.values() if c <= spec.fth)
        below_fth[key] = 100.0 * below / len(totals)
    return histograms, below_fth


@pytest.mark.benchmark(group="fig5")
def test_fig5_module_gate_count_histogram(benchmark):
    histograms, below_fth = benchmark.pedantic(
        _compute, rounds=1, iterations=1
    )
    labels = [label for label, _, _ in GATE_COUNT_BINS]
    rows = []
    for key in benchmark_names():
        hist = histograms[key]
        rows.append(
            [key]
            + [f"{hist[label]:.0f}%" if hist[label] else "-" for label in labels]
        )
    print_table(
        "Figure 5 — % of modules per gate-count range",
        ["benchmark"] + labels,
        rows,
        note=(
            "Paper (at 10^7..10^12-gate scale): FTh = 2M flattens >=80% "
            "of modules (SHA-1: 3M). Reproduction instances are smaller; "
            "the per-benchmark FTh in the registry is scaled to match."
        ),
    )
    fth_rows = [
        (key, BENCHMARKS[key].fth, f"{below_fth[key]:.0f}%")
        for key in benchmark_names()
    ]
    print_table(
        "Modules at or below the reproduction flattening threshold",
        ["benchmark", "FTh (ops)", "% modules <= FTh"],
        fth_rows,
    )
    # Shape: most modules flatten in most benchmarks, exactly as the
    # paper's FTh choice intends.
    flattenable = [v for v in below_fth.values()]
    assert sum(1 for v in flattenable if v >= 60.0) >= 6
